"""The Database: a catalog of tables plus durability and transactions.

In-memory by default; given a directory path it persists via a
checkpoint image (page file) plus a write-ahead log, and recovers on
open by loading the checkpoint and REDO-replaying the log.

Crash-safety protocol: checkpoints write a fresh generation-numbered
page file (``data.<gen>.mdm``), fsync it, then atomically replace
``roots.json`` — whose content names the generation file — as the
single commit point.  A crash anywhere in a checkpoint leaves either
the old roots (old image intact, log still replayable) or the new
roots (new image fully synced); never a mix.  Catalog and roots writes
go through write-to-temp + fsync + ``os.replace`` for the same reason.
"""

import json
import logging
import os
import struct

from repro.errors import (
    ReadOnlyError,
    RecoveryError,
    StorageError,
    TransactionError,
)

logger = logging.getLogger(__name__)
from repro.obs.metrics import MetricsRegistry
from repro.storage import wal as wal_module
from repro.storage.faults import fsync_file
from repro.storage.pager import Pager
from repro.storage.row import Row
from repro.storage.table import Column, Table, TableSchema
from repro.storage.transaction import TransactionManager
from repro.storage.values import Domain

_CATALOG_FILE = "catalog.json"
_DATA_FILE = "data.mdm"  # legacy fixed name; new checkpoints use data.<gen>.mdm
_LOG_FILE = "wal.log"
_ROOTMAP_FILE = "roots.json"
_TEXT_INDEX_FILE = "text_indexes.json"


class Database:
    """A named collection of tables with optional durability.

    ``Database()`` is purely in-memory (fast, for tests and scratch
    work).  ``Database(path)`` stores a checkpoint image and WAL under
    *path* and recovers committed state on reopen.  *opener* is an
    injectable binary-mode ``open`` substitute threaded through the WAL
    and pager (see :mod:`repro.storage.faults`); production code passes
    nothing.
    """

    def __init__(self, path=None, opener=None, metrics=None):
        self.path = path
        self._opener = opener if opener is not None else open
        self._tables = {}
        self._log = None
        self._degraded_reason = None
        # Bumped on any change to the queryable shape of the database --
        # table create/drop, new index, widened entity schema -- so
        # cached query plans (see repro.quel.cache) can detect staleness
        # with one integer compare.
        self.schema_epoch = 0
        # One registry per database; the WAL, pager, lock manager, and
        # QUEL executor above all record into it.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._degraded_entries = self.metrics.counter("db.degraded_entries")
        self._checkpoints = self.metrics.counter("db.checkpoints")
        if path is not None:
            os.makedirs(path, exist_ok=True)
            self._log = wal_module.WriteAheadLog(
                os.path.join(path, _LOG_FILE), opener=self._opener,
                metrics=self.metrics,
            )
        self.transactions = TransactionManager(self, self._log)
        if path is not None:
            self._recover()

    # -- table management ----------------------------------------------------

    def create_table(self, name, columns):
        """Create a table; *columns* is a list of (name, domain) pairs."""
        if name in self._tables:
            raise StorageError("table %r already exists" % name)
        schema = TableSchema(name, [Column(n, d) for n, d in columns])
        table = Table(
            schema, journal=self._journal_for(name), guard=self._guard_for(name),
            metrics=self.metrics, on_schema_change=self.bump_schema_epoch,
            journal_batch=self._journal_batch_for(name),
            snapshot=self.transactions.current_snapshot,
            prune_horizon=self.transactions.prune_horizon,
        )
        self._tables[name] = table
        self.bump_schema_epoch()
        self._persist_catalog()
        return table

    def create_or_bind_table(self, name, columns):
        """Create *name*, or bind to it if it already exists (recovery).

        Binding requires the recovered table's columns to match the
        requested definition exactly, so a genuine name collision still
        fails loudly.
        """
        if name in self._tables:
            table = self._tables[name]
            expected = [column_name for column_name, _ in columns]
            if table.schema.column_names() != expected:
                raise StorageError(
                    "table %r exists with columns %s, not %s"
                    % (name, table.schema.column_names(), expected)
                )
            return table
        return self.create_table(name, columns)

    def drop_table(self, name):
        if name not in self._tables:
            raise StorageError("no table %r" % name)
        del self._tables[name]
        self.bump_schema_epoch()
        self._persist_catalog()

    def _persist_catalog(self):
        """Keep the on-disk table catalog current so log replay after a
        crash (no checkpoint yet) can rebuild every logged table."""
        if self.path is None or getattr(self, "_recovering", False):
            return
        catalog = {
            name: [[c.name, c.domain.value] for c in table.schema.columns]
            for name, table in self._tables.items()
        }
        self._write_json_atomic(_CATALOG_FILE, catalog)

    def bump_schema_epoch(self):
        """Invalidate cached query plans compiled under the old shape."""
        self.schema_epoch += 1

    # -- text (trigram) indexes ---------------------------------------------

    def create_text_index(self, table_name, column):
        """Create a durable trigram text index over ``table.column``.

        Self-committing DDL, mirroring ``bulk_ingest``'s transaction
        stance: the WAL record lands (flushed) before the in-memory
        create, and a ``text_indexes.json`` sidecar is rewritten after
        it, so a crash at any point recovers the index — sidecar and
        log replay are both idempotent.  Unlike equality indexes there
        is no adaptive auto-create: the planner only lowers text
        predicates onto indexes declared through here.
        """
        self.assert_writable()
        if self.transactions.current() is not None:
            raise TransactionError(
                "text-index DDL is self-committing and cannot run inside "
                "an explicit transaction"
            )
        table = self.table(table_name)
        existing = table.text_index_for(column)
        if existing is not None:
            return existing
        schema_column = table.schema.column(column)
        if schema_column.domain is not Domain.STRING:
            raise StorageError(
                "text index needs a string column; %r.%r is %s"
                % (table_name, column, schema_column.domain.value)
            )
        if self._log is not None:
            self._log.append(
                0, wal_module.TEXT_INDEX_CREATE,
                table=table_name + wal_module.TEXT_TARGET_SEP + column,
                flush=True,
            )
        index = table.create_text_index(column)
        self._persist_text_indexes()
        return index

    def drop_text_index(self, table_name, column):
        """Durably drop the trigram index over ``table.column``."""
        self.assert_writable()
        if self.transactions.current() is not None:
            raise TransactionError(
                "text-index DDL is self-committing and cannot run inside "
                "an explicit transaction"
            )
        table = self.table(table_name)
        if table.text_index_for(column) is None:
            raise StorageError(
                "no text index on %r.%r" % (table_name, column)
            )
        if self._log is not None:
            self._log.append(
                0, wal_module.TEXT_INDEX_DROP,
                table=table_name + wal_module.TEXT_TARGET_SEP + column,
                flush=True,
            )
        table.drop_text_index(column)
        self._persist_text_indexes()

    def text_index_catalog(self):
        """``{table: [column, ...]}`` for every table with text indexes."""
        return {
            name: table.text_index_columns()
            for name, table in sorted(self._tables.items())
            if table.text_index_columns()
        }

    def _persist_text_indexes(self):
        if self.path is None or getattr(self, "_recovering", False):
            return
        self._write_json_atomic(_TEXT_INDEX_FILE, self.text_index_catalog())

    def table(self, name):
        try:
            return self._tables[name]
        except KeyError:
            raise StorageError("no table %r" % name)

    def has_table(self, name):
        return name in self._tables

    def table_names(self):
        return sorted(self._tables)

    def column_orders(self):
        """Map table -> column order, for WAL row (de)serialization."""
        return {
            name: table.schema.column_names() for name, table in self._tables.items()
        }

    def _journal_for(self, table_name):
        def journal(action, name, new_row, old_row):
            self.transactions.journal(action, name, new_row, old_row)
        return journal

    def _journal_batch_for(self, table_name):
        def journal_batch(name, rows):
            self.transactions.journal_insert_batch(name, rows)
        return journal_batch

    def _guard_for(self, table_name):
        """Pre-mutation hook: runs BEFORE a row changes, so a refusal
        (degraded mode) or a wait-die abort leaves the table untouched
        and a retrying session never double-applies."""
        def guard():
            self.transactions.assert_no_snapshot()
            self.assert_writable()
            self.transactions.lock_for_write(table_name)
        return guard

    # -- degraded mode ---------------------------------------------------------------

    @property
    def degraded(self):
        """True once a storage I/O failure flipped the database read-only."""
        return self._degraded_reason is not None

    @property
    def degraded_reason(self):
        return self._degraded_reason

    def enter_degraded(self, reason):
        """Flip to read-only degraded mode (first reason wins).

        Reads keep serving from the consistent in-memory state; writes
        fail fast with :class:`ReadOnlyError` instead of piling more
        work onto a storage stack that just failed.
        """
        if self._degraded_reason is None:
            self._degraded_reason = reason
            self._degraded_entries.inc()
            logger.warning(
                "database %s entering read-only degraded mode: %s",
                self.path or "<memory>", reason,
            )

    def exit_degraded(self):
        """Manually leave degraded mode (operator action after repair)."""
        self._degraded_reason = None

    def assert_writable(self):
        if self._degraded_reason is not None:
            raise ReadOnlyError(
                "database is read-only (degraded after storage failure: %s)"
                % (self._degraded_reason,)
            )

    # -- transactions --------------------------------------------------------------

    def begin(self):
        return self.transactions.begin()

    def bulk_ingest(self, table_name, rows, batch_rows=1000):
        """COPY-style bulk load: insert *rows* (dicts) into *table_name*.

        Chunks the input into batches of *batch_rows*; each batch takes
        the table X lock once, installs its rows with index builds
        deferred to the end of the batch, and journals one BATCH_INSERT
        frame whose group-commit flush acknowledges the whole chunk.
        Batches commit as they complete: a failure mid-load leaves the
        already-committed prefix durable (the partially applied batch
        itself is rolled back), which is why running one inside an
        explicit transaction is refused rather than silently breaking
        its atomicity.  Returns the list of inserted Rows.
        """
        if self.transactions.current() is not None:
            raise TransactionError(
                "bulk_ingest commits per batch and cannot run inside an "
                "explicit transaction; use table.insert_many instead"
            )
        self.assert_writable()
        table = self.table(table_name)
        rows = list(rows)
        out = []
        for start in range(0, len(rows), batch_rows):
            chunk = rows[start:start + batch_rows]
            owner, ephemeral = self.transactions.begin_statement()
            try:
                out.extend(table.insert_many(chunk))
            finally:
                if ephemeral:
                    self.transactions.end_statement(owner)
        return out

    # -- locked access helpers (used by the QUEL executor) ---------------------------

    def read_table(self, name):
        # A thread reading through a pinned snapshot is lock-free:
        # visibility comes from the version chains, not from excluding
        # writers, so the lock manager is never touched.
        if self.transactions.current_snapshot() is None:
            self.transactions.lock_for_read(name)
        return self.table(name)

    def write_table(self, name):
        self.transactions.assert_no_snapshot()
        self.assert_writable()
        self.transactions.lock_for_write(name)
        return self.table(name)

    # -- snapshots (MVCC) -------------------------------------------------------------

    def snapshot(self):
        """Context manager pinning a consistent lock-free read view::

            with db.snapshot() as snap:
                ...  # every table read on this thread sees LSN snap.lsn

        Mutating the database while the snapshot is pinned raises
        :class:`ReadOnlyError`.
        """
        return _SnapshotContext(self.transactions)

    # -- durable metadata files ---------------------------------------------------

    def _write_json_atomic(self, filename, obj):
        """Durably publish *obj* as *filename* via temp + fsync + rename."""
        path = os.path.join(self.path, filename)
        tmp = path + ".tmp"
        handle = self._opener(tmp, "wb")
        try:
            handle.write(json.dumps(obj, indent=2, sort_keys=True).encode("utf-8"))
            fsync_file(handle)
        finally:
            handle.close()
        os.replace(tmp, path)

    def _read_json(self, filename):
        path = os.path.join(self.path, filename)
        with self._opener(path, "rb") as handle:
            raw = handle.read()
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise RecoveryError("corrupt %s in %r: %s" % (filename, self.path, exc))

    # -- durability -------------------------------------------------------------------

    @staticmethod
    def _parse_roots(doc):
        """Roots document -> (data file name, {table: head page}).

        New format: ``{"file": "data.<gen>.mdm", "roots": {...}}``;
        legacy format was the bare roots mapping over a fixed file name.
        """
        if isinstance(doc, dict) and "file" in doc and "roots" in doc:
            return doc["file"], doc["roots"]
        return _DATA_FILE, doc

    def _next_data_file(self):
        roots_path = os.path.join(self.path, _ROOTMAP_FILE)
        gen = 0
        if os.path.exists(roots_path):
            current, _ = self._parse_roots(self._read_json(_ROOTMAP_FILE))
            parts = current.split(".")
            if len(parts) == 3 and parts[1].isdigit():
                gen = int(parts[1])
        return "data.%d.mdm" % (gen + 1)

    def checkpoint(self):
        """Write a full image of every table and truncate the log."""
        if self.path is None:
            raise StorageError("in-memory database cannot checkpoint")
        self.assert_writable()
        catalog = {
            name: [[c.name, c.domain.value] for c in table.schema.columns]
            for name, table in self._tables.items()
        }
        self._write_json_atomic(_CATALOG_FILE, catalog)
        self._persist_text_indexes()
        data_name = self._next_data_file()
        data_path = os.path.join(self.path, data_name)
        if os.path.exists(data_path):
            os.remove(data_path)  # residue of a checkpoint that crashed mid-image
        roots = {}
        with Pager(data_path, opener=self._opener, metrics=self.metrics) as pager:
            for name, table in sorted(self._tables.items()):
                order = table.schema.column_names()
                chunks = [struct.pack("<I", len(table))]
                for row in table:
                    chunks.append(row.serialize(order))
                roots[name] = pager.write_stream(b"".join(chunks))
            pager.flush()
        # Commit point: after this rename, recovery reads the new image.
        self._write_json_atomic(_ROOTMAP_FILE, {"file": data_name, "roots": roots})
        for name in os.listdir(self.path):
            if name.startswith("data.") and name.endswith(".mdm") and name != data_name:
                os.remove(os.path.join(self.path, name))
        self._log.truncate()
        if self.transactions.current() is None:
            self._log.append(0, wal_module.CHECKPOINT, flush=True)
        # Reclaim version chains: every version superseded below the
        # horizon (bounded by the oldest pinned snapshot) is unreachable
        # by any current or future reader.
        horizon = self.transactions.prune_horizon()
        for table in self._tables.values():
            table.prune_versions(horizon)
        self._checkpoints.inc()

    def _recover(self):
        self._recovering = True
        try:
            return self._recover_inner()
        finally:
            self._recovering = False

    def _recover_inner(self):
        catalog_path = os.path.join(self.path, _CATALOG_FILE)
        roots_path = os.path.join(self.path, _ROOTMAP_FILE)
        if os.path.exists(catalog_path):
            catalog = self._read_json(_CATALOG_FILE)
            for name, columns in sorted(catalog.items()):
                if not self.has_table(name):
                    self.create_table(name, [(c, d) for c, d in columns])
            # Register text indexes EMPTY before any rows load: the
            # image loader and WAL replay then maintain their postings
            # incrementally through load_row/remove_row, exactly the
            # path the crash battery cross-checks against a
            # rebuild-from-rows oracle.
            if os.path.exists(os.path.join(self.path, _TEXT_INDEX_FILE)):
                for name, columns in sorted(
                    self._read_json(_TEXT_INDEX_FILE).items()
                ):
                    if self.has_table(name):
                        for column in columns:
                            self._tables[name].create_text_index(column)
            if os.path.exists(roots_path):
                data_name, roots = self._parse_roots(self._read_json(_ROOTMAP_FILE))
                data_path = os.path.join(self.path, data_name)
                if roots and not os.path.exists(data_path):
                    raise RecoveryError("checkpoint image missing at %r" % data_path)
                if roots:
                    with Pager(
                        data_path, opener=self._opener, metrics=self.metrics
                    ) as pager:
                        for name, head in roots.items():
                            self._load_table_image(pager, name, head)
        # REDO-replay the log over the checkpoint image.
        replayed = wal_module.replay(
            self._log, self.column_orders(), self._apply_logged_change
        )
        return replayed

    def _load_table_image(self, pager, name, head_page_no):
        table = self.table(name)
        payload = pager.read_stream(head_page_no)
        (count,) = struct.unpack_from("<I", payload, 0)
        offset = 4
        order = table.schema.column_names()
        for _ in range(count):
            row, offset = Row.deserialize(payload, order, offset)
            table.load_row(row)

    def _apply_logged_change(self, kind, table_name, row, old_row):
        if kind in (wal_module.TEXT_INDEX_CREATE, wal_module.TEXT_INDEX_DROP):
            # ``table_name`` packs "table\x1fcolumn"; both directions
            # are idempotent (create returns an existing index, drop of
            # a missing one is a no-op), so sidecar state and log
            # replay can overlap freely.
            name, _, column = table_name.partition(wal_module.TEXT_TARGET_SEP)
            if self.has_table(name):
                if kind == wal_module.TEXT_INDEX_CREATE:
                    self._tables[name].create_text_index(column)
                else:
                    self._tables[name].drop_text_index(column)
            return
        table = self.table(table_name)
        if kind == wal_module.INSERT:
            table.load_row(row)
        elif kind == wal_module.UPDATE:
            table.remove_row(row.rowid)
            table.load_row(row)
        elif kind == wal_module.DELETE:
            table.remove_row(old_row.rowid)

    def close(self):
        if self._log is not None:
            self._log.close()
            self._log = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


class _SnapshotContext:
    """Pins a snapshot on enter, unpins on exit; ``lsn`` is the view."""

    def __init__(self, transactions):
        self._transactions = transactions
        self.lsn = None

    def __enter__(self):
        self.lsn = self._transactions.pin_snapshot()
        return self

    def __exit__(self, *exc_info):
        self._transactions.unpin_snapshot()
        return False
