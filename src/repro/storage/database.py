"""The Database: a catalog of tables plus durability and transactions.

In-memory by default; given a directory path it persists via a
checkpoint image (page file) plus a write-ahead log, and recovers on
open by loading the checkpoint and REDO-replaying the log.
"""

import json
import os
import struct

from repro.errors import RecoveryError, StorageError
from repro.storage import wal as wal_module
from repro.storage.pager import Pager
from repro.storage.row import Row
from repro.storage.table import Column, Table, TableSchema
from repro.storage.transaction import TransactionManager

_CATALOG_FILE = "catalog.json"
_DATA_FILE = "data.mdm"
_LOG_FILE = "wal.log"
_ROOTMAP_FILE = "roots.json"


class Database:
    """A named collection of tables with optional durability.

    ``Database()`` is purely in-memory (fast, for tests and scratch
    work).  ``Database(path)`` stores a checkpoint image and WAL under
    *path* and recovers committed state on reopen.
    """

    def __init__(self, path=None):
        self.path = path
        self._tables = {}
        self._log = None
        if path is not None:
            os.makedirs(path, exist_ok=True)
            self._log = wal_module.WriteAheadLog(os.path.join(path, _LOG_FILE))
        self.transactions = TransactionManager(self, self._log)
        if path is not None:
            self._recover()

    # -- table management ----------------------------------------------------

    def create_table(self, name, columns):
        """Create a table; *columns* is a list of (name, domain) pairs."""
        if name in self._tables:
            raise StorageError("table %r already exists" % name)
        schema = TableSchema(name, [Column(n, d) for n, d in columns])
        table = Table(schema, journal=self._journal_for(name))
        self._tables[name] = table
        self._persist_catalog()
        return table

    def create_or_bind_table(self, name, columns):
        """Create *name*, or bind to it if it already exists (recovery).

        Binding requires the recovered table's columns to match the
        requested definition exactly, so a genuine name collision still
        fails loudly.
        """
        if name in self._tables:
            table = self._tables[name]
            expected = [column_name for column_name, _ in columns]
            if table.schema.column_names() != expected:
                raise StorageError(
                    "table %r exists with columns %s, not %s"
                    % (name, table.schema.column_names(), expected)
                )
            return table
        return self.create_table(name, columns)

    def drop_table(self, name):
        if name not in self._tables:
            raise StorageError("no table %r" % name)
        del self._tables[name]
        self._persist_catalog()

    def _persist_catalog(self):
        """Keep the on-disk table catalog current so log replay after a
        crash (no checkpoint yet) can rebuild every logged table."""
        if self.path is None or getattr(self, "_recovering", False):
            return
        catalog = {
            name: [[c.name, c.domain.value] for c in table.schema.columns]
            for name, table in self._tables.items()
        }
        with open(os.path.join(self.path, _CATALOG_FILE), "w") as handle:
            json.dump(catalog, handle, indent=2, sort_keys=True)

    def table(self, name):
        try:
            return self._tables[name]
        except KeyError:
            raise StorageError("no table %r" % name)

    def has_table(self, name):
        return name in self._tables

    def table_names(self):
        return sorted(self._tables)

    def column_orders(self):
        """Map table -> column order, for WAL row (de)serialization."""
        return {
            name: table.schema.column_names() for name, table in self._tables.items()
        }

    def _journal_for(self, table_name):
        def journal(action, name, new_row, old_row):
            self.transactions.journal(action, name, new_row, old_row)
        return journal

    # -- transactions --------------------------------------------------------------

    def begin(self):
        return self.transactions.begin()

    # -- locked access helpers (used by the QUEL executor) ---------------------------

    def read_table(self, name):
        self.transactions.lock_for_read(name)
        return self.table(name)

    def write_table(self, name):
        self.transactions.lock_for_write(name)
        return self.table(name)

    # -- durability -------------------------------------------------------------------

    def checkpoint(self):
        """Write a full image of every table and truncate the log."""
        if self.path is None:
            raise StorageError("in-memory database cannot checkpoint")
        catalog = {
            name: [[c.name, c.domain.value] for c in table.schema.columns]
            for name, table in self._tables.items()
        }
        with open(os.path.join(self.path, _CATALOG_FILE), "w") as handle:
            json.dump(catalog, handle, indent=2, sort_keys=True)
        data_path = os.path.join(self.path, _DATA_FILE)
        if os.path.exists(data_path):
            os.remove(data_path)
        roots = {}
        with Pager(data_path) as pager:
            for name, table in sorted(self._tables.items()):
                order = table.schema.column_names()
                chunks = [struct.pack("<I", len(table))]
                for row in table:
                    chunks.append(row.serialize(order))
                roots[name] = pager.write_stream(b"".join(chunks))
            pager.flush()
        with open(os.path.join(self.path, _ROOTMAP_FILE), "w") as handle:
            json.dump(roots, handle, indent=2, sort_keys=True)
        self._log.truncate()
        if self.transactions.current() is None:
            self._log.append(0, wal_module.CHECKPOINT, flush=True)

    def _recover(self):
        self._recovering = True
        try:
            return self._recover_inner()
        finally:
            self._recovering = False

    def _recover_inner(self):
        catalog_path = os.path.join(self.path, _CATALOG_FILE)
        roots_path = os.path.join(self.path, _ROOTMAP_FILE)
        if os.path.exists(catalog_path):
            with open(catalog_path) as handle:
                catalog = json.load(handle)
            for name, columns in sorted(catalog.items()):
                if not self.has_table(name):
                    self.create_table(name, [(c, d) for c, d in columns])
            if os.path.exists(roots_path):
                with open(roots_path) as handle:
                    roots = json.load(handle)
                data_path = os.path.join(self.path, _DATA_FILE)
                if roots and not os.path.exists(data_path):
                    raise RecoveryError("checkpoint image missing at %r" % data_path)
                if roots:
                    with Pager(data_path) as pager:
                        for name, head in roots.items():
                            self._load_table_image(pager, name, head)
        # REDO-replay the log over the checkpoint image.
        replayed = wal_module.replay(
            self._log, self.column_orders(), self._apply_logged_change
        )
        return replayed

    def _load_table_image(self, pager, name, head_page_no):
        table = self.table(name)
        payload = pager.read_stream(head_page_no)
        (count,) = struct.unpack_from("<I", payload, 0)
        offset = 4
        order = table.schema.column_names()
        for _ in range(count):
            row, offset = Row.deserialize(payload, order, offset)
            table.load_row(row)

    def _apply_logged_change(self, kind, table_name, row, old_row):
        table = self.table(table_name)
        if kind == wal_module.INSERT:
            table.load_row(row)
        elif kind == wal_module.UPDATE:
            table.remove_row(row.rowid)
            table.load_row(row)
        elif kind == wal_module.DELETE:
            table.remove_row(old_row.rowid)

    def close(self):
        if self._log is not None:
            self._log.close()
            self._log = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False
