"""Row representation and a compact binary serialization.

Rows are immutable mappings from column name to value.  The binary form
is used by the pager (fixed-size pages) and by the write-ahead log.
"""

import struct
from fractions import Fraction

from repro.errors import StorageError

# Serialization tags, one byte each.
_TAG_NULL = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_STR = 3
_TAG_BOOL = 4
_TAG_RATIONAL = 5
_TAG_BLOB = 6


def _pack_value(value, out):
    if value is None:
        out.append(struct.pack("<B", _TAG_NULL))
    elif isinstance(value, bool):
        out.append(struct.pack("<BB", _TAG_BOOL, 1 if value else 0))
    elif isinstance(value, int):
        out.append(struct.pack("<Bq", _TAG_INT, value))
    elif isinstance(value, float):
        out.append(struct.pack("<Bd", _TAG_FLOAT, value))
    elif isinstance(value, Fraction):
        out.append(struct.pack("<Bqq", _TAG_RATIONAL, value.numerator, value.denominator))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(struct.pack("<BI", _TAG_STR, len(data)))
        out.append(data)
    elif isinstance(value, (bytes, bytearray)):
        out.append(struct.pack("<BI", _TAG_BLOB, len(value)))
        out.append(bytes(value))
    else:
        raise StorageError("unserializable value %r" % (value,))


def _unpack_value(buf, offset):
    (tag,) = struct.unpack_from("<B", buf, offset)
    offset += 1
    if tag == _TAG_NULL:
        return None, offset
    if tag == _TAG_BOOL:
        (raw,) = struct.unpack_from("<B", buf, offset)
        return bool(raw), offset + 1
    if tag == _TAG_INT:
        (raw,) = struct.unpack_from("<q", buf, offset)
        return raw, offset + 8
    if tag == _TAG_FLOAT:
        (raw,) = struct.unpack_from("<d", buf, offset)
        return raw, offset + 8
    if tag == _TAG_RATIONAL:
        num, den = struct.unpack_from("<qq", buf, offset)
        return Fraction(num, den), offset + 16
    if tag == _TAG_STR:
        (length,) = struct.unpack_from("<I", buf, offset)
        offset += 4
        raw = bytes(buf[offset:offset + length])
        return raw.decode("utf-8"), offset + length
    if tag == _TAG_BLOB:
        (length,) = struct.unpack_from("<I", buf, offset)
        offset += 4
        return bytes(buf[offset:offset + length]), offset + length
    raise StorageError("corrupt row: unknown tag %d" % tag)


class Row:
    """An immutable named tuple of column values with a stable identity.

    ``rowid`` is assigned by the owning table and is the physical handle
    used by indexes, the log, and entity surrogates.
    """

    __slots__ = ("rowid", "_values")

    def __init__(self, rowid, values):
        self.rowid = rowid
        self._values = dict(values)

    def __getitem__(self, column):
        return self._values[column]

    def get(self, column, default=None):
        return self._values.get(column, default)

    def __contains__(self, column):
        return column in self._values

    def columns(self):
        return list(self._values.keys())

    def as_dict(self):
        """Return a mutable copy of the column -> value mapping."""
        return dict(self._values)

    def replaced(self, updates):
        """Return a new Row with *updates* applied (same rowid)."""
        merged = dict(self._values)
        merged.update(updates)
        return Row(self.rowid, merged)

    def __eq__(self, other):
        if not isinstance(other, Row):
            return NotImplemented
        return self.rowid == other.rowid and self._values == other._values

    def __hash__(self):
        return hash(self.rowid)

    def __repr__(self):
        inner = ", ".join("%s=%r" % kv for kv in self._values.items())
        return "Row(#%d, %s)" % (self.rowid, inner)

    def serialize(self, column_order):
        """Serialize to bytes using *column_order* for field positions."""
        out = [struct.pack("<qH", self.rowid, len(column_order))]
        for column in column_order:
            _pack_value(self._values.get(column), out)
        return b"".join(out)

    @classmethod
    def deserialize(cls, buf, column_order, offset=0):
        """Inverse of :meth:`serialize`; returns ``(row, next_offset)``."""
        rowid, count = struct.unpack_from("<qH", buf, offset)
        offset += 10
        if count != len(column_order):
            raise StorageError(
                "row has %d fields but schema expects %d" % (count, len(column_order))
            )
        values = {}
        for column in column_order:
            value, offset = _unpack_value(buf, offset)
            values[column] = value
        return cls(rowid, values), offset
