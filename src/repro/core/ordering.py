"""Hierarchical ordering: the paper's extension to the ER model.

An :class:`Ordering` realizes one ``define ordering`` statement: a set
of child entity types whose instances form ordered sets under parent
instances.  The membership table holds one row per P-edge; S-edges are
implied by relative key order.

Supported forms (section 5.5): multiple levels of hierarchy, multiple
orderings under a parent, inhomogeneous child types, multiple parents
(one per ordering), and recursive orderings -- with the well-formedness
restrictions that P-edges and S-edges of a given ordering are acyclic.

Physical encoding
-----------------
Sibling order is stored as a *gap-based order key*, not a dense 1-based
integer.  Appends extend the key range by a fixed gap; inserts take the
midpoint of their neighbors' keys; only when a midpoint gap is exhausted
does a rebalance rewrite one parent's sibling keys.  Insert, move,
remove and reparent are therefore single-row writes instead of O(n)
sibling shifts.  An ordered composite index over ``(parent, order_key)``
answers ordinal and neighbor queries by bisect + slot arithmetic, and a
per-ordering position cache (invalidated by the table's mutation
version, so transaction undo and recovery invalidate it too) keeps
``position_of`` O(1) amortized.  The public API is unchanged: positions
remain contiguous, 1-based logical ordinals.
"""

from repro.errors import (
    IntegrityError,
    OrderingCycleError,
    OrderingMembershipError,
    SchemaError,
)
from repro.core.entity import EntityInstance
from repro.storage.values import Domain

#: Spacing between appended order keys; also the post-rebalance stride.
_GAP = 1 << 16

#: Keys are kept well inside float-exact integer range (sort keys pass
#: through ``float``), forcing a rebalance long before precision loss.
_KEY_LIMIT = 1 << 52


def default_ordering_name(child_types, parent_type):
    """The generated name for a ``define ordering`` with no order_name."""
    return "%s_under_%s" % ("_".join(child_types), parent_type)


class Ordering:
    """One hierarchical ordering (one edge of the HO graph)."""

    def __init__(self, schema, name, child_types, parent_type):
        if not child_types:
            raise SchemaError("ordering %r needs at least one child type" % name)
        if len(set(child_types)) != len(child_types):
            raise SchemaError("duplicate child type in ordering %r" % name)
        for type_name in list(child_types) + [parent_type]:
            if not schema.has_entity_type(type_name):
                raise SchemaError(
                    "ordering %r references unknown entity type %r" % (name, type_name)
                )
        self.schema = schema
        self.name = name
        self.child_types = list(child_types)
        self.parent_type = parent_type
        self.table = schema.database.create_or_bind_table(
            "ord:%s" % name,
            [
                ("parent", Domain.ENTITY),
                ("child", Domain.ENTITY),
                ("order_key", Domain.INTEGER),
            ],
        )
        self.table.create_index("parent")
        self.table.create_index("child")
        self._order_index = self.table.create_index(("parent", "order_key"))
        self._positions = {}
        self._positions_version = -1

    # -- classification --------------------------------------------------------

    @property
    def is_recursive(self):
        """True when the parent type is also a child type (section 5.5)."""
        return self.parent_type in self.child_types

    @property
    def is_inhomogeneous(self):
        """True when siblings may be of more than one type."""
        return len(self.child_types) > 1

    # -- validation helpers -------------------------------------------------------

    def _check_child(self, child):
        if not isinstance(child, EntityInstance):
            raise IntegrityError("ordering child must be an EntityInstance")
        if child.type.name not in self.child_types:
            raise IntegrityError(
                "ordering %r does not admit %s children (admits %s)"
                % (self.name, child.type.name, ", ".join(self.child_types))
            )

    def _check_parent(self, parent):
        if not isinstance(parent, EntityInstance):
            raise IntegrityError("ordering parent must be an EntityInstance")
        if parent.type.name != self.parent_type:
            raise IntegrityError(
                "ordering %r expects %s parents, got %s"
                % (self.name, self.parent_type, parent.type.name)
            )

    def _membership_row(self, child):
        rows = self.table.select_eq("child", child.surrogate)
        return rows[0] if rows else None

    def _assert_no_p_cycle(self, parent, child):
        """Reject P-edge cycles: *child* may not be an ancestor of *parent*.

        Only recursive orderings can produce such cycles, but the walk is
        cheap and correct in every case.
        """
        current = parent
        seen = set()
        while current is not None:
            if current.surrogate == child.surrogate:
                raise OrderingCycleError(
                    "placing %r under %r creates a P-edge cycle in ordering %r"
                    % (child, parent, self.name)
                )
            if current.surrogate in seen:
                raise OrderingCycleError(
                    "existing P-edge cycle detected at %r in ordering %r"
                    % (current, self.name)
                )
            seen.add(current.surrogate)
            if current.type.name in self.child_types:
                current = self.parent_of(current)
            else:
                current = None

    # -- order-key plumbing -----------------------------------------------------

    def _bounds(self, parent_surrogate):
        """Index slots [start, stop) holding this parent's siblings."""
        return self._order_index.prefix_bounds((parent_surrogate,))

    def _sibling_count(self, parent_surrogate):
        start, stop = self._bounds(parent_surrogate)
        return stop - start

    def _row_at_slot(self, slot):
        return self.table.get(self._order_index.rowids_at(slot)[0])

    def _key_at_slot(self, slot):
        return self._row_at_slot(slot)["order_key"]

    def _rank(self, row):
        """1-based logical position of a membership *row* among siblings."""
        start, _ = self._bounds(row["parent"])
        slot = self._order_index.rank((row["parent"], row["order_key"]))
        return slot - start + 1

    def _ordered_child_rows(self, parent_surrogate):
        start, stop = self._bounds(parent_surrogate)
        return self.table.get_many(self._order_index.rowids_slice(start, stop))

    # -- membership rows for query pushdown ------------------------------------
    #
    # The QUEL executor answers ``x under p`` / ``x before y`` conjuncts
    # with one side bound by range-scanning the (parent, order_key)
    # index instead of testing every candidate pair.  These helpers
    # expose membership rows (parent/child/order_key) in sibling order,
    # materialized in one batched pass.

    def member_row_of(self, child):
        """The membership row of *child*, or None."""
        return self._membership_row(child)

    def member_rows_under(self, parent_surrogate):
        """All membership rows under *parent_surrogate*, in order."""
        return self._ordered_child_rows(parent_surrogate)

    def member_rows_before(self, row):
        """Membership rows of siblings strictly before *row*, in order."""
        start, _stop = self._bounds(row["parent"])
        slot = self._order_index.rank((row["parent"], row["order_key"]))
        return self.table.get_many(self._order_index.rowids_slice(start, slot))

    def member_rows_after(self, row):
        """Membership rows of siblings strictly after *row*, in order."""
        _start, stop = self._bounds(row["parent"])
        slot = self._order_index.rank((row["parent"], row["order_key"]))
        return self.table.get_many(self._order_index.rowids_slice(slot + 1, stop))

    def _rebalance(self, parent_surrogate):
        """Rewrite one parent's sibling keys to evenly spaced multiples.

        This is the only O(n)-write operation left, and it runs only when
        midpoint insertion exhausts a gap (or keys approach the exact-
        float limit) -- amortized over the ~log2(_GAP) single-row inserts
        each gap admits.
        """
        rows = self._ordered_child_rows(parent_surrogate)
        for index, row in enumerate(rows):
            key = (index + 1) * _GAP
            if row["order_key"] != key:
                self.table.update(row.rowid, {"order_key": key})

    def _allocate_key(self, parent_surrogate, position):
        """An order key placing a new child at 1-based *position*.

        *position* must already be validated against the sibling count.
        May rebalance the parent's siblings once when gaps are exhausted.
        """
        for _ in range(2):
            start, stop = self._bounds(parent_surrogate)
            count = stop - start
            if count == 0:
                return 0
            if position == 1:
                key = self._key_at_slot(start) - _GAP
                if key > -_KEY_LIMIT:
                    return key
            elif position == count + 1:
                key = self._key_at_slot(stop - 1) + _GAP
                if key < _KEY_LIMIT:
                    return key
            else:
                low = self._key_at_slot(start + position - 2)
                high = self._key_at_slot(start + position - 1)
                if high - low >= 2:
                    return (low + high) // 2
            self._rebalance(parent_surrogate)
        raise IntegrityError(
            "ordering %r: could not allocate an order key under parent #%d"
            % (self.name, parent_surrogate)
        )

    # -- mutation --------------------------------------------------------------------

    def insert(self, parent, child, position=None):
        """Place *child* under *parent* at *position* (1-based; default end).

        Siblings at or after *position* shift right (logically -- their
        stored keys are untouched).  A child may appear at most once in a
        given ordering ("there is only one second object", section 5.5).
        """
        self._check_parent(parent)
        self._check_child(child)
        if self._membership_row(child) is not None:
            raise OrderingMembershipError(
                "%r is already a member of ordering %r" % (child, self.name)
            )
        self._assert_no_p_cycle(parent, child)
        count = self._sibling_count(parent.surrogate)
        if position is None:
            position = count + 1
        if position < 1 or position > count + 1:
            raise OrderingMembershipError(
                "position %d out of range 1..%d in ordering %r"
                % (position, count + 1, self.name)
            )
        key = self._allocate_key(parent.surrogate, position)
        self.table.insert(
            {"parent": parent.surrogate, "child": child.surrogate, "order_key": key}
        )
        return position

    def append(self, parent, child):
        """Place *child* last under *parent*."""
        return self.insert(parent, child)

    def extend(self, parent, children):
        """Append each of *children* under *parent*, preserving order.

        The bulk-load path: validates everything up front, then issues
        one insert per child with pre-spaced keys -- no per-child
        neighbor probing, no partial loads on a bad child.
        """
        children = list(children)
        if not children:
            return
        self._check_parent(parent)
        batch = set()
        for child in children:
            self._check_child(child)
            if child.surrogate in batch or self._membership_row(child) is not None:
                raise OrderingMembershipError(
                    "%r is already a member of ordering %r" % (child, self.name)
                )
            batch.add(child.surrogate)
            self._assert_no_p_cycle(parent, child)
        start, stop = self._bounds(parent.surrogate)
        key = self._key_at_slot(stop - 1) + _GAP if stop > start else 0
        for child in children:
            self.table.insert(
                {
                    "parent": parent.surrogate,
                    "child": child.surrogate,
                    "order_key": key,
                }
            )
            key += _GAP

    def remove(self, child):
        """Remove *child* from the ordering; later siblings shift left."""
        self._check_child(child)
        row = self._membership_row(child)
        if row is None:
            raise OrderingMembershipError(
                "%r is not a member of ordering %r" % (child, self.name)
            )
        self.table.delete(row.rowid)

    def move(self, child, new_position):
        """Move *child* to *new_position* among its current siblings.

        Validates before mutating and writes one row, so a bad position
        can no longer drop the child from the ordering.
        """
        row = self._membership_row(child)
        if row is None:
            raise OrderingMembershipError(
                "%r is not a member of ordering %r" % (child, self.name)
            )
        parent_surrogate = row["parent"]
        count = self._sibling_count(parent_surrogate)
        if new_position < 1 or new_position > count:
            raise OrderingMembershipError(
                "position %d out of range 1..%d in ordering %r"
                % (new_position, count, self.name)
            )
        for _ in range(2):
            start, _stop = self._bounds(parent_surrogate)
            rank = self._rank(row)
            if new_position == rank:
                return
            # Slots of the would-be neighbors in the full sibling list;
            # the child's own slot (rank - 1) never appears among them.
            if new_position < rank:
                left_slot = new_position - 2
                right_slot = new_position - 1
            else:
                left_slot = new_position - 1
                right_slot = new_position
            if new_position == 1:
                key = self._key_at_slot(start + right_slot) - _GAP
                if key > -_KEY_LIMIT:
                    self.table.update(row.rowid, {"order_key": key})
                    return
            elif new_position == count:
                key = self._key_at_slot(start + left_slot) + _GAP
                if key < _KEY_LIMIT:
                    self.table.update(row.rowid, {"order_key": key})
                    return
            else:
                low = self._key_at_slot(start + left_slot)
                high = self._key_at_slot(start + right_slot)
                if high - low >= 2:
                    self.table.update(row.rowid, {"order_key": (low + high) // 2})
                    return
            self._rebalance(parent_surrogate)
            row = self.table.get(row.rowid)
        raise IntegrityError(
            "ordering %r: could not allocate an order key under parent #%d"
            % (self.name, parent_surrogate)
        )

    def reparent(self, child, new_parent, position=None):
        """Move *child* under a different parent.

        All validation (membership, parent type, position range, P-edge
        cycles) happens before the single-row write, so a failing check
        no longer silently removes the child from the ordering.
        """
        self._check_child(child)
        row = self._membership_row(child)
        if row is None:
            raise OrderingMembershipError(
                "%r is not a member of ordering %r" % (child, self.name)
            )
        self._check_parent(new_parent)
        if row["parent"] == new_parent.surrogate:
            count = self._sibling_count(new_parent.surrogate)
            self.move(child, count if position is None else position)
            return
        self._assert_no_p_cycle(new_parent, child)
        count = self._sibling_count(new_parent.surrogate)
        if position is None:
            position = count + 1
        if position < 1 or position > count + 1:
            raise OrderingMembershipError(
                "position %d out of range 1..%d in ordering %r"
                % (position, count + 1, self.name)
            )
        key = self._allocate_key(new_parent.surrogate, position)
        self.table.update(
            row.rowid, {"parent": new_parent.surrogate, "order_key": key}
        )

    def clear(self, parent):
        """Remove every child of *parent*."""
        self._check_parent(parent)
        for row in self.table.select_eq("parent", parent.surrogate):
            self.table.delete(row.rowid)

    # -- queries (the section 5.6 operators' semantics) -------------------------------

    def children(self, parent):
        """The ordered children of *parent* ("x under p", all x)."""
        self._check_parent(parent)
        return [
            self.schema.instance(row["child"])
            for row in self._ordered_child_rows(parent.surrogate)
        ]

    def child_at(self, parent, position):
        """The child at ordinal *position* (1-based), or None.

        Supports queries like "the third note in chord x" (section 5.4).
        """
        self._check_parent(parent)
        start, stop = self._bounds(parent.surrogate)
        if position < 1 or position > stop - start:
            return None
        row = self._row_at_slot(start + position - 1)
        return self.schema.instance(row["child"])

    def parent_of(self, child):
        """The parent of *child* in this ordering, or None."""
        self._check_child(child)
        row = self._membership_row(child)
        if row is None:
            return None
        return self.schema.instance(row["parent"])

    def position_of(self, child):
        """The 1-based ordinal of *child* under its parent, or None.

        Memoized per table version: repeated ordinal queries between
        mutations are O(1), and any mutation (including transaction undo
        and recovery, which bypass this class) invalidates the cache.

        Under a pinned MVCC snapshot both the memo cache and the
        (parent, order_key) index mirror the *live* table, so the rank
        is computed instead by counting visible siblings that sort
        earlier -- O(members) per call, but lock-free and consistent.
        """
        self._check_child(child)
        if self.table.snapshot_active():
            row = self._membership_row(child)
            if row is None:
                return None
            siblings = self.table.select_eq("parent", row["parent"])
            return 1 + sum(
                1 for sibling in siblings
                if sibling["order_key"] < row["order_key"]
            )
        if self._positions_version != self.table.version:
            self._positions.clear()
            self._positions_version = self.table.version
        try:
            return self._positions[child.surrogate]
        except KeyError:
            pass
        row = self._membership_row(child)
        position = None if row is None else self._rank(row)
        self._positions[child.surrogate] = position
        return position

    def contains(self, child):
        if child.type.name not in self.child_types:
            return False
        return self._membership_row(child) is not None

    def before(self, a, b):
        """True iff a and b share a parent and a precedes b (section 5.6).

        Instances under different parents "are not comparable, and the
        before clause evaluates to false".
        """
        row_a = self._membership_row(a) if a.type.name in self.child_types else None
        row_b = self._membership_row(b) if b.type.name in self.child_types else None
        if row_a is None or row_b is None:
            return False
        if row_a["parent"] != row_b["parent"]:
            return False
        return row_a["order_key"] < row_b["order_key"]

    def after(self, a, b):
        """True iff a and b share a parent and a follows b."""
        return self.before(b, a)

    def under(self, child, parent):
        """True iff *child* lies (directly) under *parent*."""
        if child.type.name not in self.child_types:
            return False
        if parent.type.name != self.parent_type:
            return False
        row = self._membership_row(child)
        return row is not None and row["parent"] == parent.surrogate

    def next_sibling(self, child):
        """The S-edge successor of *child*, or None."""
        row = self._membership_row(child)
        if row is None:
            return None
        _start, stop = self._bounds(row["parent"])
        slot = self._order_index.rank((row["parent"], row["order_key"]))
        if slot + 1 >= stop:
            return None
        return self.schema.instance(self._row_at_slot(slot + 1)["child"])

    def previous_sibling(self, child):
        row = self._membership_row(child)
        if row is None:
            return None
        start, _stop = self._bounds(row["parent"])
        slot = self._order_index.rank((row["parent"], row["order_key"]))
        if slot <= start:
            return None
        return self.schema.instance(self._row_at_slot(slot - 1)["child"])

    def parents(self):
        """All parent instances that currently have children, in surrogate order."""
        seen = {}
        for row in self.table:
            seen.setdefault(row["parent"], None)
        return [self.schema.instance(s) for s in sorted(seen)]

    def roots(self):
        """Parents that are not themselves children (tops of the hierarchy).

        For non-recursive orderings this equals :meth:`parents`.
        """
        member_children = {row["child"] for row in self.table}
        return [p for p in self.parents() if p.surrogate not in member_children]

    def descendants(self, parent):
        """Pre-order walk of the subtree rooted at *parent* (recursive form)."""
        out = []
        for child in self.children(parent):
            out.append(child)
            if child.type.name == self.parent_type:
                out.extend(self.descendants(child))
        return out

    def depth_of(self, child):
        """Number of P-edges from *child* up to a root."""
        depth = 0
        current = self.parent_of(child)
        guard = 0
        while current is not None:
            depth += 1
            guard += 1
            if guard > self.table_size() + 1:
                raise OrderingCycleError(
                    "P-edge cycle detected while computing depth in %r" % self.name
                )
            if current.type.name in self.child_types:
                current = self.parent_of(current)
            else:
                current = None
        return depth

    def references(self, surrogate):
        """True if the ordering mentions the entity *surrogate*."""
        return bool(
            self.table.select_eq("child", surrogate)
            or self.table.select_eq("parent", surrogate)
        )

    def table_size(self):
        return len(self.table)

    def check_invariants(self):
        """Verify key distinctness, index consistency, and acyclicity.

        Logical positions are the ranks of distinct order keys, so the
        contiguous-1..n contract of the public API holds exactly when
        each parent's keys are distinct and the composite index agrees
        with the heap; both are checked here.  Used by tests and by the
        MDM's consistency checker.
        """
        by_parent = {}
        for row in self.table:
            key = row["order_key"]
            if not isinstance(key, int) or abs(key) > 2 * _KEY_LIMIT:
                raise IntegrityError(
                    "ordering %r: bad order key %r on row #%d"
                    % (self.name, key, row.rowid)
                )
            by_parent.setdefault(row["parent"], []).append(key)
            if row.rowid not in self._order_index.lookup((row["parent"], key)):
                raise IntegrityError(
                    "ordering %r: row #%d missing from the order index"
                    % (self.name, row.rowid)
                )
        for parent_surrogate, keys in by_parent.items():
            if len(set(keys)) != len(keys):
                raise IntegrityError(
                    "ordering %r: duplicate order keys under parent #%d: %r"
                    % (self.name, parent_surrogate, sorted(keys))
                )
            start, stop = self._bounds(parent_surrogate)
            if stop - start != len(keys):
                raise IntegrityError(
                    "ordering %r: order index out of sync under parent #%d"
                    % (self.name, parent_surrogate)
                )
        child_parent = {row["child"]: row["parent"] for row in self.table}
        if len(child_parent) != len(self.table):
            raise IntegrityError(
                "ordering %r: a child appears under two parents" % self.name
            )
        for start in child_parent:
            seen = set()
            current = start
            while current in child_parent:
                if current in seen:
                    raise OrderingCycleError(
                        "ordering %r: P-edge cycle through #%d" % (self.name, current)
                    )
                seen.add(current)
                current = child_parent[current]

    def ddl(self):
        """The ``define ordering`` statement for this ordering."""
        return "define ordering %s (%s) under %s" % (
            self.name,
            ", ".join(self.child_types),
            self.parent_type,
        )

    def __repr__(self):
        return "Ordering(%r: (%s) under %s)" % (
            self.name,
            ", ".join(self.child_types),
            self.parent_type,
        )
