"""Hierarchical ordering: the paper's extension to the ER model.

An :class:`Ordering` realizes one ``define ordering`` statement: a set
of child entity types whose instances form ordered sets under parent
instances.  The membership table holds one row per P-edge, carrying the
child's ordinal position; S-edges are implied by consecutive positions.

Supported forms (section 5.5): multiple levels of hierarchy, multiple
orderings under a parent, inhomogeneous child types, multiple parents
(one per ordering), and recursive orderings -- with the well-formedness
restrictions that P-edges and S-edges of a given ordering are acyclic.
"""

from repro.errors import (
    IntegrityError,
    OrderingCycleError,
    OrderingMembershipError,
    SchemaError,
)
from repro.core.entity import EntityInstance
from repro.storage.values import Domain


def default_ordering_name(child_types, parent_type):
    """The generated name for a ``define ordering`` with no order_name."""
    return "%s_under_%s" % ("_".join(child_types), parent_type)


class Ordering:
    """One hierarchical ordering (one edge of the HO graph)."""

    def __init__(self, schema, name, child_types, parent_type):
        if not child_types:
            raise SchemaError("ordering %r needs at least one child type" % name)
        if len(set(child_types)) != len(child_types):
            raise SchemaError("duplicate child type in ordering %r" % name)
        for type_name in list(child_types) + [parent_type]:
            if not schema.has_entity_type(type_name):
                raise SchemaError(
                    "ordering %r references unknown entity type %r" % (name, type_name)
                )
        self.schema = schema
        self.name = name
        self.child_types = list(child_types)
        self.parent_type = parent_type
        self.table = schema.database.create_or_bind_table(
            "ord:%s" % name,
            [
                ("parent", Domain.ENTITY),
                ("child", Domain.ENTITY),
                ("position", Domain.INTEGER),
            ],
        )
        self.table.create_index("parent")
        self.table.create_index("child")

    # -- classification --------------------------------------------------------

    @property
    def is_recursive(self):
        """True when the parent type is also a child type (section 5.5)."""
        return self.parent_type in self.child_types

    @property
    def is_inhomogeneous(self):
        """True when siblings may be of more than one type."""
        return len(self.child_types) > 1

    # -- validation helpers -------------------------------------------------------

    def _check_child(self, child):
        if not isinstance(child, EntityInstance):
            raise IntegrityError("ordering child must be an EntityInstance")
        if child.type.name not in self.child_types:
            raise IntegrityError(
                "ordering %r does not admit %s children (admits %s)"
                % (self.name, child.type.name, ", ".join(self.child_types))
            )

    def _check_parent(self, parent):
        if not isinstance(parent, EntityInstance):
            raise IntegrityError("ordering parent must be an EntityInstance")
        if parent.type.name != self.parent_type:
            raise IntegrityError(
                "ordering %r expects %s parents, got %s"
                % (self.name, self.parent_type, parent.type.name)
            )

    def _membership_row(self, child):
        rows = self.table.select_eq("child", child.surrogate)
        return rows[0] if rows else None

    def _child_rows(self, parent):
        rows = self.table.select_eq("parent", parent.surrogate)
        rows.sort(key=lambda row: row["position"])
        return rows

    def _assert_no_p_cycle(self, parent, child):
        """Reject P-edge cycles: *child* may not be an ancestor of *parent*.

        Only recursive orderings can produce such cycles, but the walk is
        cheap and correct in every case.
        """
        current = parent
        seen = set()
        while current is not None:
            if current.surrogate == child.surrogate:
                raise OrderingCycleError(
                    "placing %r under %r creates a P-edge cycle in ordering %r"
                    % (child, parent, self.name)
                )
            if current.surrogate in seen:
                raise OrderingCycleError(
                    "existing P-edge cycle detected at %r in ordering %r"
                    % (current, self.name)
                )
            seen.add(current.surrogate)
            if current.type.name in self.child_types:
                current = self.parent_of(current)
            else:
                current = None

    # -- mutation --------------------------------------------------------------------

    def insert(self, parent, child, position=None):
        """Place *child* under *parent* at *position* (1-based; default end).

        Siblings at or after *position* shift right.  A child may appear
        at most once in a given ordering ("there is only one second
        object", section 5.5).
        """
        self._check_parent(parent)
        self._check_child(child)
        if self._membership_row(child) is not None:
            raise OrderingMembershipError(
                "%r is already a member of ordering %r" % (child, self.name)
            )
        self._assert_no_p_cycle(parent, child)
        siblings = self._child_rows(parent)
        count = len(siblings)
        if position is None:
            position = count + 1
        if position < 1 or position > count + 1:
            raise OrderingMembershipError(
                "position %d out of range 1..%d in ordering %r"
                % (position, count + 1, self.name)
            )
        for row in siblings:
            if row["position"] >= position:
                self.table.update(row.rowid, {"position": row["position"] + 1})
        self.table.insert(
            {"parent": parent.surrogate, "child": child.surrogate, "position": position}
        )
        return position

    def append(self, parent, child):
        """Place *child* last under *parent*."""
        return self.insert(parent, child)

    def extend(self, parent, children):
        """Append each of *children* under *parent*, preserving order."""
        for child in children:
            self.append(parent, child)

    def remove(self, child):
        """Remove *child* from the ordering; later siblings shift left."""
        self._check_child(child)
        row = self._membership_row(child)
        if row is None:
            raise OrderingMembershipError(
                "%r is not a member of ordering %r" % (child, self.name)
            )
        parent_surrogate = row["parent"]
        position = row["position"]
        self.table.delete(row.rowid)
        for sibling in self.table.select_eq("parent", parent_surrogate):
            if sibling["position"] > position:
                self.table.update(sibling.rowid, {"position": sibling["position"] - 1})

    def move(self, child, new_position):
        """Move *child* to *new_position* among its current siblings."""
        row = self._membership_row(child)
        if row is None:
            raise OrderingMembershipError(
                "%r is not a member of ordering %r" % (child, self.name)
            )
        parent = self.schema.instance(row["parent"])
        self.remove(child)
        self.insert(parent, child, new_position)

    def reparent(self, child, new_parent, position=None):
        """Move *child* under a different parent."""
        self.remove(child)
        self.insert(new_parent, child, position)

    def clear(self, parent):
        """Remove every child of *parent*."""
        self._check_parent(parent)
        for row in self.table.select_eq("parent", parent.surrogate):
            self.table.delete(row.rowid)

    # -- queries (the section 5.6 operators' semantics) -------------------------------

    def children(self, parent):
        """The ordered children of *parent* ("x under p", all x)."""
        self._check_parent(parent)
        return [self.schema.instance(row["child"]) for row in self._child_rows(parent)]

    def child_at(self, parent, position):
        """The child at ordinal *position* (1-based), or None.

        Supports queries like "the third note in chord x" (section 5.4).
        """
        self._check_parent(parent)
        for row in self._child_rows(parent):
            if row["position"] == position:
                return self.schema.instance(row["child"])
        return None

    def parent_of(self, child):
        """The parent of *child* in this ordering, or None."""
        self._check_child(child)
        row = self._membership_row(child)
        if row is None:
            return None
        return self.schema.instance(row["parent"])

    def position_of(self, child):
        """The 1-based ordinal of *child* under its parent, or None."""
        self._check_child(child)
        row = self._membership_row(child)
        return None if row is None else row["position"]

    def contains(self, child):
        if child.type.name not in self.child_types:
            return False
        return self._membership_row(child) is not None

    def before(self, a, b):
        """True iff a and b share a parent and a precedes b (section 5.6).

        Instances under different parents "are not comparable, and the
        before clause evaluates to false".
        """
        row_a = self._membership_row(a) if a.type.name in self.child_types else None
        row_b = self._membership_row(b) if b.type.name in self.child_types else None
        if row_a is None or row_b is None:
            return False
        if row_a["parent"] != row_b["parent"]:
            return False
        return row_a["position"] < row_b["position"]

    def after(self, a, b):
        """True iff a and b share a parent and a follows b."""
        return self.before(b, a)

    def under(self, child, parent):
        """True iff *child* lies (directly) under *parent*."""
        if child.type.name not in self.child_types:
            return False
        if parent.type.name != self.parent_type:
            return False
        row = self._membership_row(child)
        return row is not None and row["parent"] == parent.surrogate

    def next_sibling(self, child):
        """The S-edge successor of *child*, or None."""
        row = self._membership_row(child)
        if row is None:
            return None
        for sibling in self.table.select_eq("parent", row["parent"]):
            if sibling["position"] == row["position"] + 1:
                return self.schema.instance(sibling["child"])
        return None

    def previous_sibling(self, child):
        row = self._membership_row(child)
        if row is None or row["position"] == 1:
            return None
        for sibling in self.table.select_eq("parent", row["parent"]):
            if sibling["position"] == row["position"] - 1:
                return self.schema.instance(sibling["child"])
        return None

    def parents(self):
        """All parent instances that currently have children, in surrogate order."""
        seen = {}
        for row in self.table:
            seen.setdefault(row["parent"], None)
        return [self.schema.instance(s) for s in sorted(seen)]

    def roots(self):
        """Parents that are not themselves children (tops of the hierarchy).

        For non-recursive orderings this equals :meth:`parents`.
        """
        member_children = {row["child"] for row in self.table}
        return [p for p in self.parents() if p.surrogate not in member_children]

    def descendants(self, parent):
        """Pre-order walk of the subtree rooted at *parent* (recursive form)."""
        out = []
        for child in self.children(parent):
            out.append(child)
            if child.type.name == self.parent_type:
                out.extend(self.descendants(child))
        return out

    def depth_of(self, child):
        """Number of P-edges from *child* up to a root."""
        depth = 0
        current = self.parent_of(child)
        guard = 0
        while current is not None:
            depth += 1
            guard += 1
            if guard > self.table_size() + 1:
                raise OrderingCycleError(
                    "P-edge cycle detected while computing depth in %r" % self.name
                )
            if current.type.name in self.child_types:
                current = self.parent_of(current)
            else:
                current = None
        return depth

    def references(self, surrogate):
        """True if the ordering mentions the entity *surrogate*."""
        return bool(
            self.table.select_eq("child", surrogate)
            or self.table.select_eq("parent", surrogate)
        )

    def table_size(self):
        return len(self.table)

    def check_invariants(self):
        """Verify positional contiguity and acyclicity; raise on violation.

        Used by tests and by the MDM's consistency checker.
        """
        by_parent = {}
        for row in self.table:
            by_parent.setdefault(row["parent"], []).append(row["position"])
        for parent_surrogate, positions in by_parent.items():
            if sorted(positions) != list(range(1, len(positions) + 1)):
                raise IntegrityError(
                    "ordering %r: positions under parent #%d are %r"
                    % (self.name, parent_surrogate, sorted(positions))
                )
        child_parent = {row["child"]: row["parent"] for row in self.table}
        if len(child_parent) != len(self.table):
            raise IntegrityError(
                "ordering %r: a child appears under two parents" % self.name
            )
        for start in child_parent:
            seen = set()
            current = start
            while current in child_parent:
                if current in seen:
                    raise OrderingCycleError(
                        "ordering %r: P-edge cycle through #%d" % (self.name, current)
                    )
                seen.add(current)
                current = child_parent[current]

    def ddl(self):
        """The ``define ordering`` statement for this ordering."""
        return "define ordering %s (%s) under %s" % (
            self.name,
            ", ".join(self.child_types),
            self.parent_type,
        )

    def __repr__(self):
        return "Ordering(%r: (%s) under %s)" % (
            self.name,
            ", ".join(self.child_types),
            self.parent_type,
        )
