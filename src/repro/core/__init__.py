"""The paper's primary contribution: the entity-relationship model
extended with *hierarchical ordering* (sections 5 and 6).

Public surface:

- :class:`Schema` -- define entity types, relationships, and orderings.
- :class:`EntityType` / :class:`EntityInstance` -- typed instances with
  surrogate identity, backed by relational storage.
- :class:`RelationshipType` -- m:n and 1:n relationships.
- :class:`Ordering` -- the hierarchical-ordering runtime (P-edges,
  S-edges, ordinal positions, before/after/under).
- :class:`InstanceGraph` / :class:`HOGraph` -- the paper's two graph
  formalisms, with deterministic renderings.
- :class:`MetaCatalog` -- section 6's schema-as-data meta-database.
"""

from repro.core.attributes import AttributeDef
from repro.core.entity import EntityInstance, EntityType
from repro.core.relationship import RelationshipType
from repro.core.ordering import Ordering
from repro.core.schema import Schema
from repro.core.instance_graph import InstanceGraph
from repro.core.hograph import HOGraph, OrderingForm
from repro.core.catalog import MetaCatalog

__all__ = [
    "AttributeDef",
    "EntityType",
    "EntityInstance",
    "RelationshipType",
    "Ordering",
    "Schema",
    "InstanceGraph",
    "HOGraph",
    "OrderingForm",
    "MetaCatalog",
]
