"""Relationship types: "m to n" and "1 to n" relationships (section 5.1).

A relationship type names a set of *roles*, each bound to an entity
type, optionally with additional value attributes.  Instances are rows
in a backing table holding the surrogates of the participants.

Cardinality: an ``m:n`` relationship (the default, like COMPOSER) allows
any number of instances per participant; a ``1:n`` relationship declares
one role as the "many" side, on which at most one instance may exist --
though the paper notes 1:n relationships are usually folded into an
entity-valued attribute instead.
"""

from repro.errors import IntegrityError, SchemaError, UnknownAttributeError
from repro.core.attributes import parse_attribute_spec
from repro.core.entity import EntityInstance
from repro.storage.values import Domain


class RelationshipType:
    """A named relationship among entity types."""

    def __init__(self, schema, name, role_specs, attribute_specs=(), many_role=None):
        self.schema = schema
        self.name = name
        self.roles = []  # (role_name, entity_type_name)
        for role_name, type_name in role_specs:
            if not schema.has_entity_type(type_name):
                raise SchemaError(
                    "relationship %r references unknown entity type %r"
                    % (name, type_name)
                )
            self.roles.append((role_name, type_name))
        if len(self.roles) < 2:
            raise SchemaError("relationship %r needs at least two roles" % name)
        role_names = [r for r, _ in self.roles]
        if len(set(role_names)) != len(role_names):
            raise SchemaError("duplicate role in relationship %r" % name)
        self.attributes = [parse_attribute_spec(s) for s in attribute_specs]
        if many_role is not None and many_role not in role_names:
            raise SchemaError(
                "relationship %r has no role %r to mark as the many-side"
                % (name, many_role)
            )
        self.many_role = many_role  # None => m:n
        columns = [(role, Domain.ENTITY) for role, _ in self.roles]
        columns.extend((a.name, a.domain) for a in self.attributes)
        self.table = schema.database.create_or_bind_table("rel:%s" % name, columns)
        for role, _ in self.roles:
            self.table.create_index(role)

    @property
    def cardinality(self):
        """``"m:n"`` or ``"1:n"`` per the paper's two relationship forms."""
        return "m:n" if self.many_role is None else "1:n"

    def role_type(self, role_name):
        for role, type_name in self.roles:
            if role == role_name:
                return type_name
        raise UnknownAttributeError(
            "relationship %r has no role %r" % (self.name, role_name)
        )

    # -- instances ---------------------------------------------------------------

    def _surrogate_for(self, role_name, participant):
        expected = self.role_type(role_name)
        if isinstance(participant, EntityInstance):
            if participant.type.name != expected:
                raise IntegrityError(
                    "role %s.%s expects a %s, got a %s"
                    % (self.name, role_name, expected, participant.type.name)
                )
            return participant.surrogate
        if isinstance(participant, int):
            return participant
        raise IntegrityError("bad participant %r for role %r" % (participant, role_name))

    def relate(self, _attributes=None, **participants):
        """Create a relationship instance.

        Role participants are passed as keyword arguments; extra value
        attributes via the *_attributes* dict.
        """
        values = {}
        for role, _ in self.roles:
            if role not in participants:
                raise IntegrityError(
                    "relationship %r requires role %r" % (self.name, role)
                )
            values[role] = self._surrogate_for(role, participants.pop(role))
        if participants:
            raise IntegrityError(
                "unknown role(s) %s for relationship %r"
                % (sorted(participants), self.name)
            )
        if self.many_role is not None:
            existing = self.table.select_eq(self.many_role, values[self.many_role])
            if existing:
                raise IntegrityError(
                    "1:n relationship %r already relates %s#%d"
                    % (self.name, self.role_type(self.many_role), values[self.many_role])
                )
        for attribute in self.attributes:
            values[attribute.name] = (_attributes or {}).get(attribute.name)
        row = self.table.insert(values)
        return row.rowid

    def unrelate(self, **participants):
        """Delete every instance matching the given role participants."""
        criteria = {
            role: self._surrogate_for(role, value)
            for role, value in participants.items()
        }
        removed = 0
        for row in list(self.table):
            if all(row[role] == surrogate for role, surrogate in criteria.items()):
                self.table.delete(row.rowid)
                removed += 1
        return removed

    def instances(self):
        """All relationship instances as role -> EntityInstance dicts."""
        out = []
        for row in self.table:
            out.append(self._materialize(row))
        return out

    def _materialize(self, row):
        record = {}
        for role, _ in self.roles:
            record[role] = self.schema.instance(row[role])
        for attribute in self.attributes:
            record[attribute.name] = row.get(attribute.name)
        return record

    def related(self, role_name, participant, fetch_role=None):
        """Instances related to *participant* through *role_name*.

        Returns the full role dicts, or just the *fetch_role* instances
        when given.
        """
        surrogate = self._surrogate_for(role_name, participant)
        out = []
        for row in self.table.select_eq(role_name, surrogate):
            record = self._materialize(row)
            out.append(record[fetch_role] if fetch_role else record)
        return out

    def references(self, surrogate):
        """True if any instance references the entity *surrogate*."""
        return any(
            self.table.select_eq(role, surrogate) for role, _ in self.roles
        )

    def count(self):
        return len(self.table)

    def __repr__(self):
        return "RelationshipType(%r, %s, roles=%r)" % (
            self.name,
            self.cardinality,
            [r for r, _ in self.roles],
        )
