"""Hierarchical ordering graphs: the schema-level formalism (section 5.5).

An HO graph has one node per entity type (grouped when an ordering is
inhomogeneous) and one edge per ``define ordering`` statement, from the
child types to the parent type.  The module also classifies each
ordering into the paper's five structural forms and renders the graph
as ASCII and DOT.
"""

import enum


class OrderingForm(enum.Enum):
    """The structural forms of hierarchical ordering named in section 5.5."""

    SIMPLE = "simple"
    MULTI_LEVEL = "multiple levels of hierarchy"
    MULTIPLE_ORDERINGS_UNDER_PARENT = "multiple orderings under a parent"
    INHOMOGENEOUS = "inhomogeneous ordering"
    MULTIPLE_PARENTS = "multiple parents"
    RECURSIVE = "recursive ordering"


class HOGraph:
    """The HO graph of a schema (or a subset of its orderings)."""

    def __init__(self, schema, ordering_names=None):
        self.schema = schema
        if ordering_names is None:
            ordering_names = sorted(schema.orderings)
        self.orderings = [schema.ordering(name) for name in ordering_names]

    # -- structure ---------------------------------------------------------------

    def entity_types(self):
        """Every entity type mentioned by the included orderings (sorted)."""
        names = set()
        for ordering in self.orderings:
            names.add(ordering.parent_type)
            names.update(ordering.child_types)
        return sorted(names)

    def edges(self):
        """(ordering_name, child_types, parent_type) per ordering."""
        return [
            (o.name, tuple(o.child_types), o.parent_type) for o in self.orderings
        ]

    def classify(self, ordering):
        """The set of section-5.5 forms the given ordering exhibits."""
        forms = set()
        if ordering.is_recursive:
            forms.add(OrderingForm.RECURSIVE)
        if ordering.is_inhomogeneous:
            forms.add(OrderingForm.INHOMOGENEOUS)
        parent_orderings = [
            o for o in self.orderings if o.parent_type == ordering.parent_type
        ]
        if len(parent_orderings) > 1:
            forms.add(OrderingForm.MULTIPLE_ORDERINGS_UNDER_PARENT)
        for child in ordering.child_types:
            child_orderings = [
                o for o in self.orderings if child in o.child_types
            ]
            if len(child_orderings) > 1:
                forms.add(OrderingForm.MULTIPLE_PARENTS)
            # A child that is a parent elsewhere => multiple levels.
            if any(
                o is not ordering and o.parent_type == child for o in self.orderings
            ):
                forms.add(OrderingForm.MULTI_LEVEL)
        if ordering.parent_type not in ordering.child_types and any(
            ordering.parent_type in o.child_types for o in self.orderings
        ):
            forms.add(OrderingForm.MULTI_LEVEL)
        if not forms:
            forms.add(OrderingForm.SIMPLE)
        return forms

    def classification(self):
        """ordering name -> sorted list of form values."""
        return {
            o.name: sorted(form.value for form in self.classify(o))
            for o in self.orderings
        }

    def validate(self):
        """Reject type-level P-cycles among *non-recursive* orderings.

        Recursive orderings legitimately point a type at itself; a cycle
        through two or more distinct types with no recursion declared is
        a modeling error worth flagging.
        """
        adjacency = {}
        for ordering in self.orderings:
            if ordering.is_recursive:
                continue
            for child in ordering.child_types:
                adjacency.setdefault(child, set()).add(ordering.parent_type)
        state = {}

        def visit(node, stack):
            state[node] = "grey"
            stack.append(node)
            for parent in sorted(adjacency.get(node, ())):
                if state.get(parent) == "grey":
                    cycle = stack[stack.index(parent):] + [parent]
                    return cycle
                if parent not in state:
                    found = visit(parent, stack)
                    if found:
                        return found
            stack.pop()
            state[node] = "black"
            return None

        for node in sorted(adjacency):
            if node not in state:
                cycle = visit(node, [])
                if cycle:
                    return cycle
        return None

    def topological_levels(self):
        """Entity types grouped by depth: roots (never children) first."""
        child_of = {}
        for ordering in self.orderings:
            for child in ordering.child_types:
                if child != ordering.parent_type:
                    child_of.setdefault(child, set()).add(ordering.parent_type)
        depth = {}

        def depth_of(name, trail):
            if name in depth:
                return depth[name]
            if name in trail:
                return 0  # cycle guard; validate() reports real errors
            parents = child_of.get(name)
            if not parents:
                depth[name] = 0
                return 0
            value = 1 + max(depth_of(p, trail | {name}) for p in parents)
            depth[name] = value
            return value

        for name in self.entity_types():
            depth_of(name, frozenset())
        levels = {}
        for name, level in depth.items():
            levels.setdefault(level, []).append(name)
        return [sorted(levels[level]) for level in sorted(levels)]

    # -- renderings -----------------------------------------------------------------

    def to_ascii(self):
        """Deterministic text form: one line per HO-graph edge."""
        lines = ["HO graph (%d orderings)" % len(self.orderings)]
        for name, children, parent in self.edges():
            child_box = " | ".join(children) if len(children) > 1 else children[0]
            marker = " (recursive)" if parent in children else ""
            lines.append("  [%s] ==%s==> [%s]%s" % (child_box, name, parent, marker))
        return "\n".join(lines)

    def to_dot(self, graph_name="ho_graph"):
        lines = ["digraph %s {" % graph_name, "  rankdir=BT;", "  node [shape=box];"]
        for name in self.entity_types():
            lines.append('  "%s";' % name)
        for name, children, parent in self.edges():
            for child in children:
                lines.append('  "%s" -> "%s" [label="%s"];' % (child, parent, name))
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self):
        return "HOGraph(%d types, %d orderings)" % (
            len(self.entity_types()),
            len(self.orderings),
        )
