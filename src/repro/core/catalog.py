"""Blurring the schema/data distinction (section 6).

The schema itself is stored as ordered entities in the database, using
the meta-schema of section 6.1:

    define entity ENTITY (entity_name = string)
    define entity RELATIONSHIP (relationship_name = string)
    define entity ATTRIBUTE (attribute_name = string, attribute_type = string)
    define entity ORDERING (order_name = string, order_parent = ENTITY)
    define ordering entity_attributes (ATTRIBUTE) under ENTITY
    define ordering relationship_attributes (ATTRIBUTE) under RELATIONSHIP
    define relationship order_child (child = ENTITY, ordering = ORDERING)

The catalog lives *inside the same schema it describes*, so the meta
types catalogue themselves -- the "blur" the paper's title for section 6
refers to.  :meth:`MetaCatalog.reconstruct` rebuilds a working Schema
from the stored representation, proving the representation is complete.
"""

from repro.errors import SchemaError

META_ENTITY = "ENTITY"
META_RELATIONSHIP = "RELATIONSHIP"
META_ATTRIBUTE = "ATTRIBUTE"
META_ORDERING = "ORDERING"
ENTITY_ATTRIBUTES = "entity_attributes"
RELATIONSHIP_ATTRIBUTES = "relationship_attributes"
ORDER_CHILD = "order_child"

_META_TYPE_NAMES = (META_ENTITY, META_RELATIONSHIP, META_ATTRIBUTE, META_ORDERING)


class MetaCatalog:
    """Schema-as-data catalog for one :class:`~repro.core.schema.Schema`."""

    def __init__(self, schema):
        self.schema = schema
        self._install_meta_schema()

    def _install_meta_schema(self):
        schema = self.schema
        if not schema.has_entity_type(META_ENTITY):
            schema.define_entity(META_ENTITY, [("entity_name", "string")])
        if not schema.has_entity_type(META_RELATIONSHIP):
            schema.define_entity(META_RELATIONSHIP, [("relationship_name", "string")])
        if not schema.has_entity_type(META_ATTRIBUTE):
            schema.define_entity(
                META_ATTRIBUTE,
                [("attribute_name", "string"), ("attribute_type", "string")],
            )
        if not schema.has_entity_type(META_ORDERING):
            schema.define_entity(
                META_ORDERING,
                [("order_name", "string"), ("order_parent", META_ENTITY)],
            )
        if ENTITY_ATTRIBUTES not in schema.orderings:
            schema.define_ordering(ENTITY_ATTRIBUTES, [META_ATTRIBUTE], under=META_ENTITY)
        if RELATIONSHIP_ATTRIBUTES not in schema.orderings:
            schema.define_ordering(
                RELATIONSHIP_ATTRIBUTES, [META_ATTRIBUTE], under=META_RELATIONSHIP
            )
        if ORDER_CHILD not in schema.relationships:
            schema.define_relationship(
                ORDER_CHILD,
                [("child", META_ENTITY), ("ordering", META_ORDERING)],
            )

    # -- convenience handles ---------------------------------------------------

    @property
    def entity_table(self):
        return self.schema.entity_type(META_ENTITY)

    @property
    def relationship_table(self):
        return self.schema.entity_type(META_RELATIONSHIP)

    @property
    def attribute_table(self):
        return self.schema.entity_type(META_ATTRIBUTE)

    @property
    def ordering_table(self):
        return self.schema.entity_type(META_ORDERING)

    @property
    def entity_attributes(self):
        return self.schema.ordering(ENTITY_ATTRIBUTES)

    @property
    def relationship_attributes(self):
        return self.schema.ordering(RELATIONSHIP_ATTRIBUTES)

    @property
    def order_child(self):
        return self.schema.relationship(ORDER_CHILD)

    # -- population --------------------------------------------------------------

    def sync(self):
        """(Re)populate the catalog from the live schema definitions.

        Each ``define entity`` generates one ENTITY instance and one
        ATTRIBUTE instance per attribute (ordered under it); likewise for
        relationships; each ``define ordering`` generates one ORDERING
        instance, its parent reference, and order_child relationships.
        """
        self._clear()
        entity_records = {}
        for name in sorted(self.schema.entity_types):
            record = self.entity_table.create(entity_name=name)
            entity_records[name] = record
            for attribute in self.schema.entity_types[name].attributes:
                attr_record = self.attribute_table.create(
                    attribute_name=attribute.name,
                    attribute_type=attribute.domain_name(),
                )
                self.entity_attributes.append(record, attr_record)
        for name in sorted(self.schema.relationships):
            relationship = self.schema.relationships[name]
            record = self.relationship_table.create(relationship_name=name)
            for role, type_name in relationship.roles:
                attr_record = self.attribute_table.create(
                    attribute_name=role, attribute_type=type_name
                )
                self.relationship_attributes.append(record, attr_record)
            for attribute in relationship.attributes:
                attr_record = self.attribute_table.create(
                    attribute_name=attribute.name,
                    attribute_type=attribute.domain_name(),
                )
                self.relationship_attributes.append(record, attr_record)
        for name in sorted(self.schema.orderings):
            ordering = self.schema.orderings[name]
            record = self.ordering_table.create(
                order_name=name,
                order_parent=entity_records[ordering.parent_type],
            )
            for child_type in ordering.child_types:
                self.order_child.relate(
                    child=entity_records[child_type], ordering=record
                )
        return self

    def _clear(self):
        # Truncate every relationship touching a meta type (order_child,
        # plus application layers like GDefUse/GParmUse) so no dangling
        # references survive the re-sync.
        for relationship in self.schema.relationships.values():
            if any(t in _META_TYPE_NAMES for _, t in relationship.roles):
                relationship.table.truncate()
        for ordering_name in (ENTITY_ATTRIBUTES, RELATIONSHIP_ATTRIBUTES):
            self.schema.ordering(ordering_name).table.truncate()
        for type_name in (META_ORDERING, META_ATTRIBUTE, META_RELATIONSHIP, META_ENTITY):
            entity_type = self.schema.entity_type(type_name)
            for instance in entity_type.instances():
                entity_type.table.delete(instance.rowid)
                self.schema.unregister_instance(instance.surrogate)

    # -- lookups (the "class variable" access pattern of section 6) ---------------

    def entity_record(self, entity_name):
        return self.entity_table.find_one(entity_name=entity_name)

    def relationship_record(self, relationship_name):
        return self.relationship_table.find_one(relationship_name=relationship_name)

    def ordering_record(self, order_name):
        return self.ordering_table.find_one(order_name=order_name)

    def attributes_of_entity(self, entity_name):
        """The ordered ATTRIBUTE instances catalogued under an entity."""
        record = self.entity_record(entity_name)
        return self.entity_attributes.children(record)

    def attributes_of_relationship(self, relationship_name):
        record = self.relationship_record(relationship_name)
        return self.relationship_attributes.children(record)

    def children_of_ordering(self, order_name):
        """ENTITY records for the child types of an ordering."""
        record = self.ordering_record(order_name)
        return self.order_child.related("ordering", record, fetch_role="child")

    def parent_of_ordering(self, order_name):
        record = self.ordering_record(order_name)
        return record.dereference("order_parent")

    def catalogued_entities(self):
        return [r["entity_name"] for r in self.entity_table.instances()]

    def catalogued_orderings(self):
        return [r["order_name"] for r in self.ordering_table.instances()]

    # -- round trip -----------------------------------------------------------------

    def reconstruct(self, name="reconstructed", database=None, include_meta=False):
        """Build a fresh Schema from the catalogued representation.

        Demonstrates the catalog is a complete schema description.  Meta
        types are skipped unless *include_meta*, since the new schema's
        own MetaCatalog would recreate them.
        """
        from repro.core.schema import Schema

        rebuilt = Schema(name, database=database)
        skip = set() if include_meta else set(_META_TYPE_NAMES)
        known_entities = set(self.catalogued_entities()) - skip
        for record in self.entity_table.instances():
            entity_name = record["entity_name"]
            if entity_name in skip:
                continue
            specs = []
            for attribute in self.entity_attributes.children(record):
                type_name = attribute["attribute_type"]
                specs.append((attribute["attribute_name"], type_name))
            rebuilt.define_entity(entity_name, specs)
        for record in self.relationship_table.instances():
            relationship_name = record["relationship_name"]
            if not include_meta and relationship_name == ORDER_CHILD:
                continue
            roles = []
            attrs = []
            for attribute in self.relationship_attributes.children(record):
                type_name = attribute["attribute_type"]
                if type_name in known_entities:
                    roles.append((attribute["attribute_name"], type_name))
                else:
                    attrs.append((attribute["attribute_name"], type_name))
            rebuilt.define_relationship(relationship_name, roles, attrs)
        for record in self.ordering_table.instances():
            order_name = record["order_name"]
            if not include_meta and order_name in (
                ENTITY_ATTRIBUTES,
                RELATIONSHIP_ATTRIBUTES,
            ):
                continue
            parent = record.dereference("order_parent")
            if parent is None:
                raise SchemaError("ordering %r has no catalogued parent" % order_name)
            children = [
                c["entity_name"]
                for c in self.order_child.related(
                    "ordering", record, fetch_role="child"
                )
            ]
            rebuilt.define_ordering(order_name, children, under=parent["entity_name"])
        return rebuilt
