"""The Schema: named collections of entity types, relationships, and
orderings, backed by one relational database.

This is the object a ``define entity`` / ``define relationship`` /
``define ordering`` program (section 5.4) compiles into, and the root of
the public data-model API.
"""

import itertools

from repro.errors import (
    IntegrityError,
    SchemaError,
    UnknownEntityTypeError,
    UnknownOrderingError,
    UnknownRelationshipError,
)
from repro.core.entity import EntityType
from repro.core.ordering import Ordering, default_ordering_name
from repro.core.relationship import RelationshipType
from repro.storage.database import Database
from repro.storage.values import Domain

#: System table mapping surrogate -> (entity type, rowid).
_INSTANCES_TABLE = "_instances"


class Schema:
    """A database schema in the paper's extended ER model."""

    def __init__(self, name="schema", database=None):
        self.name = name
        self.database = database if database is not None else Database()
        self.entity_types = {}
        self.relationships = {}
        self.orderings = {}
        if self.database.has_table(_INSTANCES_TABLE):
            self._instances = self.database.table(_INSTANCES_TABLE)
            top = 0
            for row in self._instances:
                top = max(top, row["surrogate"])
            self._surrogates = itertools.count(top + 1)
        else:
            self._instances = self.database.create_table(
                _INSTANCES_TABLE,
                [
                    ("surrogate", Domain.INTEGER),
                    ("entity_type", Domain.STRING),
                    ("rowid", Domain.INTEGER),
                ],
            )
            self._instances.create_index("surrogate")
            self._surrogates = itertools.count(1)

    # -- definition ------------------------------------------------------------

    def define_entity(self, name, attribute_specs=()):
        """``define entity NAME (attr = domain, ...)``"""
        if name in self.entity_types:
            raise SchemaError("entity type %r already defined" % name)
        entity_type = EntityType(self, name, attribute_specs)
        self.entity_types[name] = entity_type
        return entity_type

    def define_relationship(self, name, role_specs, attribute_specs=(), many_role=None):
        """``define relationship NAME (role = TYPE, ...)``"""
        if name in self.relationships:
            raise SchemaError("relationship %r already defined" % name)
        relationship = RelationshipType(
            self, name, role_specs, attribute_specs, many_role
        )
        self.relationships[name] = relationship
        return relationship

    def define_ordering(self, name, child_types, under):
        """``define ordering [NAME] (CHILD, ...) under PARENT``

        Passing ``name=None`` generates the default name, as the DDL
        allows the order_name to be omitted.
        """
        if name is None:
            name = default_ordering_name(child_types, under)
        if name in self.orderings:
            raise SchemaError("ordering %r already defined" % name)
        ordering = Ordering(self, name, child_types, under)
        self.orderings[name] = ordering
        return ordering

    # -- lookup ---------------------------------------------------------------

    def entity_type(self, name):
        try:
            return self.entity_types[name]
        except KeyError:
            raise UnknownEntityTypeError("no entity type %r in schema %r" % (name, self.name))

    def has_entity_type(self, name):
        return name in self.entity_types

    def relationship(self, name):
        try:
            return self.relationships[name]
        except KeyError:
            raise UnknownRelationshipError(
                "no relationship %r in schema %r" % (name, self.name)
            )

    def ordering(self, name):
        try:
            return self.orderings[name]
        except KeyError:
            raise UnknownOrderingError("no ordering %r in schema %r" % (name, self.name))

    def resolve_ordering(self, child_type=None, parent_type=None):
        """Find the unique ordering matching the given type constraints.

        This is how a ``before``/``after``/``under`` clause with no
        ``in order_name`` is resolved from its range-variable types.
        """
        candidates = []
        for ordering in self.orderings.values():
            if child_type is not None and child_type not in ordering.child_types:
                continue
            if parent_type is not None and ordering.parent_type != parent_type:
                continue
            candidates.append(ordering)
        if len(candidates) == 1:
            return candidates[0]
        if not candidates:
            raise UnknownOrderingError(
                "no ordering with child %r / parent %r" % (child_type, parent_type)
            )
        raise UnknownOrderingError(
            "ambiguous ordering (child %r / parent %r): %s"
            % (child_type, parent_type, ", ".join(sorted(o.name for o in candidates)))
        )

    def orderings_with_parent(self, parent_type):
        return [o for o in self.orderings.values() if o.parent_type == parent_type]

    def orderings_with_child(self, child_type):
        return [o for o in self.orderings.values() if child_type in o.child_types]

    # -- surrogate registry --------------------------------------------------------

    def next_surrogate(self):
        return next(self._surrogates)

    def register_instance(self, surrogate, type_name, rowid):
        self._instances.insert(
            {"surrogate": surrogate, "entity_type": type_name, "rowid": rowid}
        )

    def unregister_instance(self, surrogate):
        for row in self._instances.select_eq("surrogate", surrogate):
            self._instances.delete(row.rowid)

    def instance(self, surrogate):
        """Resolve a surrogate to an EntityInstance (any type)."""
        rows = self._instances.select_eq("surrogate", surrogate)
        if not rows:
            raise IntegrityError("no instance with surrogate %d" % surrogate)
        record = rows[0]
        entity_type = self.entity_type(record["entity_type"])
        from repro.core.entity import EntityInstance

        return EntityInstance(entity_type, surrogate, record["rowid"])

    def instance_count(self):
        return len(self._instances)

    def assert_unreferenced(self, instance):
        """Raise if *instance* still participates in orderings/relationships."""
        for ordering in self.orderings.values():
            if ordering.references(instance.surrogate):
                raise IntegrityError(
                    "%r still participates in ordering %r" % (instance, ordering.name)
                )
        for relationship in self.relationships.values():
            if relationship.references(instance.surrogate):
                raise IntegrityError(
                    "%r still participates in relationship %r"
                    % (instance, relationship.name)
                )

    # -- whole-schema operations ----------------------------------------------------

    def check_invariants(self):
        """Run every ordering's invariant check."""
        for ordering in self.orderings.values():
            ordering.check_invariants()

    def validate_references(self):
        """Dangling entity-valued attribute targets, as messages.

        Forward references are legal while a DDL program is being
        loaded; run this afterwards to confirm every target resolved.
        """
        problems = []
        for type_name in sorted(self.entity_types):
            for attribute in self.entity_types[type_name].attributes:
                if attribute.is_entity_valued and not self.has_entity_type(
                    attribute.target_type
                ):
                    problems.append(
                        "%s.%s references undefined entity type %s"
                        % (type_name, attribute.name, attribute.target_type)
                    )
        return problems

    def ddl(self):
        """Regenerate the DDL program defining this schema."""
        lines = []
        for name in sorted(self.entity_types):
            entity_type = self.entity_types[name]
            attrs = ", ".join(
                "%s = %s" % (a.name, a.domain_name()) for a in entity_type.attributes
            )
            lines.append("define entity %s (%s)" % (name, attrs))
        for name in sorted(self.relationships):
            relationship = self.relationships[name]
            roles = ", ".join("%s = %s" % (r, t) for r, t in relationship.roles)
            lines.append("define relationship %s (%s)" % (name, roles))
        for name in sorted(self.orderings):
            lines.append(self.orderings[name].ddl())
        return "\n".join(lines)

    def statistics(self):
        """Instance and membership counts, for reports and tests."""
        return {
            "entity_types": len(self.entity_types),
            "relationships": len(self.relationships),
            "orderings": len(self.orderings),
            "instances": self.instance_count(),
            "ordering_edges": sum(
                o.table_size() for o in self.orderings.values()
            ),
            "relationship_instances": sum(
                r.count() for r in self.relationships.values()
            ),
        }

    def __repr__(self):
        return "Schema(%r: %d entities, %d relationships, %d orderings)" % (
            self.name,
            len(self.entity_types),
            len(self.relationships),
            len(self.orderings),
        )
