"""Attribute definitions for entity and relationship types.

An attribute has a name and a domain.  Following the paper's DDL, the
domain may be a scalar (``integer``, ``string``, ...) or the name of an
entity type, in which case the attribute holds an entity reference --
this is how "1 to n" relationships are "represented implicitly as an
attribute" (section 5.1, the COMPOSITION_DATE example).
"""

from repro.errors import SchemaError
from repro.storage.values import Domain

_SCALAR_NAMES = {d.value for d in Domain if d is not Domain.ENTITY}


class AttributeDef:
    """One attribute of an entity or relationship type.

    *domain* is a :class:`~repro.storage.values.Domain`; when it is
    ``Domain.ENTITY``, *target_type* names the referenced entity type.
    """

    __slots__ = ("name", "domain", "target_type")

    def __init__(self, name, domain, target_type=None):
        if not name or not isinstance(name, str):
            raise SchemaError("attribute name must be a non-empty string")
        if isinstance(domain, str):
            lowered = domain.lower()
            if lowered in _SCALAR_NAMES:
                domain = Domain(lowered)
            elif domain == "entity":
                # The exact lowercase keyword: an explicit entity domain
                # with the target supplied separately.  (Upper-case
                # "ENTITY" remains an entity-type reference -- it names
                # the section 6 meta type.)
                domain = Domain.ENTITY
            else:
                # An unknown domain name is an entity-type reference.
                target_type = domain
                domain = Domain.ENTITY
        if domain is Domain.ENTITY and not target_type:
            raise SchemaError(
                "entity-valued attribute %r needs a target entity type" % name
            )
        if domain is not Domain.ENTITY and target_type is not None:
            raise SchemaError(
                "scalar attribute %r cannot have a target type" % name
            )
        self.name = name
        self.domain = domain
        self.target_type = target_type

    @property
    def is_entity_valued(self):
        return self.domain is Domain.ENTITY

    def domain_name(self):
        """The domain as written in DDL source."""
        if self.is_entity_valued:
            return self.target_type
        return self.domain.value

    def __repr__(self):
        return "AttributeDef(%r, %s)" % (self.name, self.domain_name())

    def __eq__(self, other):
        if not isinstance(other, AttributeDef):
            return NotImplemented
        return (
            self.name == other.name
            and self.domain is other.domain
            and self.target_type == other.target_type
        )

    def __hash__(self):
        return hash((self.name, self.domain, self.target_type))


def parse_attribute_spec(spec):
    """Normalize an attribute spec into an AttributeDef.

    Accepts an AttributeDef, a ``(name, domain)`` pair, or a
    ``(name, 'entity', target)`` triple.
    """
    if isinstance(spec, AttributeDef):
        return spec
    if isinstance(spec, (tuple, list)):
        if len(spec) == 2:
            return AttributeDef(spec[0], spec[1])
        if len(spec) == 3:
            return AttributeDef(spec[0], spec[1], spec[2])
    raise SchemaError("bad attribute spec %r" % (spec,))
