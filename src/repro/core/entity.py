"""Entity types and entity instances.

An :class:`EntityType` owns a relational table whose rows are its
instances.  Every instance carries a *surrogate*: an identity unique
across the whole schema (the RM/T-style surrogate the paper builds on),
which is what relationships, orderings, and entity-valued attributes
reference.
"""

from repro.errors import IntegrityError, SchemaError, UnknownAttributeError
from repro.core.attributes import parse_attribute_spec
from repro.storage.values import Domain

#: Reserved column carrying the schema-wide surrogate on every entity table.
SURROGATE_COLUMN = "_surrogate"


class EntityType:
    """A named entity type with typed attributes (section 5.1).

    Created through :meth:`repro.core.schema.Schema.define_entity`; not
    intended to be constructed directly.
    """

    def __init__(self, schema, name, attribute_specs):
        self.schema = schema
        self.name = name
        self.attributes = [parse_attribute_spec(s) for s in attribute_specs]
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate attribute in entity %r" % name)
        if SURROGATE_COLUMN in names:
            raise SchemaError("%r is a reserved attribute name" % SURROGATE_COLUMN)
        columns = [(SURROGATE_COLUMN, Domain.INTEGER)]
        columns.extend((a.name, a.domain) for a in self.attributes)
        # create_or_bind: re-declaring a type over a recovered database
        # attaches to the existing rows (the MDM reopen path).
        self.table = schema.database.create_or_bind_table(
            self._table_name(name), columns
        )
        self.table.create_index(SURROGATE_COLUMN)

    @staticmethod
    def _table_name(name):
        return "entity:%s" % name

    # -- introspection -------------------------------------------------------

    def attribute(self, name):
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        raise UnknownAttributeError(
            "entity %r has no attribute %r" % (self.name, name)
        )

    def has_attribute(self, name):
        return any(a.name == name for a in self.attributes)

    def attribute_names(self):
        return [a.name for a in self.attributes]

    def add_attribute(self, spec):
        """Extend the type with a new attribute (schema evolution).

        Existing instances read the new attribute as null.
        """
        attribute = parse_attribute_spec(spec)
        if self.has_attribute(attribute.name):
            raise SchemaError(
                "entity %r already has attribute %r" % (self.name, attribute.name)
            )
        self.attributes.append(attribute)
        # Widen the backing table schema in place; old rows lack the
        # column and report None via Row.get.
        from repro.storage.table import Column

        self.table.schema.columns.append(Column(attribute.name, attribute.domain))
        self.table.schema._by_name[attribute.name] = self.table.schema.columns[-1]
        # A widened schema changes what restrictions compile to: cached
        # plans treating the attribute as unknown are now stale.
        self.table.notify_schema_change()
        return attribute

    # -- instances -----------------------------------------------------------

    def create(self, **values):
        """Create an instance; returns an :class:`EntityInstance`."""
        coerced = self._coerce_values(values)
        surrogate = self.schema.next_surrogate()
        coerced[SURROGATE_COLUMN] = surrogate
        row = self.table.insert(coerced)
        self.schema.register_instance(surrogate, self.name, row.rowid)
        return EntityInstance(self, surrogate, row.rowid)

    def _coerce_values(self, values):
        coerced = {}
        for name, value in values.items():
            attribute = self.attribute(name)
            if attribute.is_entity_valued and isinstance(value, EntityInstance):
                expected = attribute.target_type
                if value.type.name != expected:
                    raise IntegrityError(
                        "attribute %s.%s expects a %s, got a %s"
                        % (self.name, name, expected, value.type.name)
                    )
                value = value.surrogate
            coerced[name] = value
        return coerced

    def instances(self):
        """All instances, in surrogate order."""
        rows = self.table.sorted_by(SURROGATE_COLUMN)
        return [EntityInstance(self, row[SURROGATE_COLUMN], row.rowid) for row in rows]

    def count(self):
        return len(self.table)

    def get(self, surrogate):
        """The instance with *surrogate*, or None."""
        rows = self.table.select_eq(SURROGATE_COLUMN, surrogate)
        if not rows:
            return None
        return EntityInstance(self, surrogate, rows[0].rowid)

    def find(self, **criteria):
        """Instances whose attributes equal all of *criteria*."""
        coerced = self._coerce_values(criteria)
        out = []
        for row in self.table:
            if all(row.get(k) == v for k, v in coerced.items()):
                out.append(EntityInstance(self, row[SURROGATE_COLUMN], row.rowid))
        out.sort(key=lambda inst: inst.surrogate)
        return out

    def find_one(self, **criteria):
        """The unique instance matching *criteria* (raises otherwise)."""
        matches = self.find(**criteria)
        if len(matches) != 1:
            raise IntegrityError(
                "%d instances of %r match %r" % (len(matches), self.name, criteria)
            )
        return matches[0]

    def __repr__(self):
        return "EntityType(%r, %d attributes)" % (self.name, len(self.attributes))


class EntityInstance:
    """A handle on one entity instance (type + surrogate + rowid).

    Attribute access reads through to the backing table, so handles are
    always current; two handles are equal iff their surrogates match.
    """

    __slots__ = ("type", "surrogate", "rowid")

    def __init__(self, entity_type, surrogate, rowid):
        self.type = entity_type
        self.surrogate = surrogate
        self.rowid = rowid

    def _row(self):
        row = self.type.table.get(self.rowid)
        if row is None:
            raise IntegrityError(
                "instance %s#%d has been deleted" % (self.type.name, self.surrogate)
            )
        return row

    def exists(self):
        return self.type.table.get(self.rowid) is not None

    def __getitem__(self, attribute_name):
        self.type.attribute(attribute_name)  # validates the name
        return self._row().get(attribute_name)

    def get(self, attribute_name, default=None):
        if not self.type.has_attribute(attribute_name):
            return default
        value = self._row().get(attribute_name)
        return default if value is None else value

    def dereference(self, attribute_name):
        """Follow an entity-valued attribute; returns an instance or None."""
        attribute = self.type.attribute(attribute_name)
        if not attribute.is_entity_valued:
            raise IntegrityError(
                "attribute %s.%s is not entity-valued" % (self.type.name, attribute_name)
            )
        surrogate = self._row().get(attribute_name)
        if surrogate is None:
            return None
        return self.type.schema.instance(surrogate)

    def set(self, **updates):
        """Update attribute values in place."""
        coerced = self.type._coerce_values(updates)
        self.type.table.update(self.rowid, coerced)
        return self

    def as_dict(self):
        """Attribute name -> value (excluding the surrogate column)."""
        row = self._row()
        return {name: row.get(name) for name in self.type.attribute_names()}

    def delete(self):
        """Delete the instance (orderings/relationships must drop it first)."""
        self.type.schema.assert_unreferenced(self)
        self.type.table.delete(self.rowid)
        self.type.schema.unregister_instance(self.surrogate)

    def __eq__(self, other):
        if not isinstance(other, EntityInstance):
            return NotImplemented
        return self.surrogate == other.surrogate

    def __hash__(self):
        return hash(self.surrogate)

    def __repr__(self):
        return "%s#%d" % (self.type.name, self.surrogate)
