"""Instance graphs: the paper's pictorial representation of
hierarchically ordered data (figures 6 and 8c).

An instance graph has one node per entity instance, P-edges from each
child to its parent, and S-edges from each child to its next sibling.
We build them from one or more orderings and render them as ASCII trees
and Graphviz DOT.
"""

from repro.errors import IntegrityError


class InstanceGraph:
    """A materialized instance graph over a set of orderings."""

    def __init__(self, schema):
        self.schema = schema
        self.nodes = []  # EntityInstance, insertion order
        self._node_keys = set()
        self.p_edges = []  # (child, parent, ordering_name, position)
        self.s_edges = []  # (sibling, next_sibling, ordering_name)
        self.labels = {}  # surrogate -> display label

    # -- construction --------------------------------------------------------

    @classmethod
    def from_ordering(cls, ordering, roots=None):
        """Build the graph of *ordering* below *roots* (default: all roots)."""
        graph = cls(ordering.schema)
        if roots is None:
            roots = ordering.roots()
        for root in roots:
            graph.add_subtree(ordering, root)
        return graph

    @classmethod
    def from_orderings(cls, orderings, roots):
        """Build a combined graph over several orderings from given roots."""
        if not orderings:
            raise IntegrityError("need at least one ordering")
        graph = cls(orderings[0].schema)
        for root in roots:
            for ordering in orderings:
                if root.type.name == ordering.parent_type:
                    graph.add_subtree(ordering, root)
        return graph

    def add_node(self, instance):
        if instance.surrogate not in self._node_keys:
            self._node_keys.add(instance.surrogate)
            self.nodes.append(instance)

    def add_subtree(self, ordering, parent):
        """Add *parent* and, recursively, its children in *ordering*."""
        self.add_node(parent)
        children = ordering.children(parent)
        for position, child in enumerate(children, start=1):
            self.add_node(child)
            self.p_edges.append((child, parent, ordering.name, position))
            if child.type.name == ordering.parent_type:
                self.add_subtree(ordering, child)
        for left, right in zip(children, children[1:]):
            self.s_edges.append((left, right, ordering.name))

    def label(self, instance, text):
        """Override the display label of *instance*."""
        self.labels[instance.surrogate] = text

    def _display(self, instance):
        return self.labels.get(
            instance.surrogate, "%s#%d" % (instance.type.name, instance.surrogate)
        )

    # -- queries ------------------------------------------------------------------

    def children_of(self, parent, ordering_name=None):
        edges = [
            (position, child)
            for child, p, name, position in self.p_edges
            if p == parent and (ordering_name is None or name == ordering_name)
        ]
        edges.sort(key=lambda pair: pair[0])
        return [child for _, child in edges]

    def roots(self):
        child_keys = {child.surrogate for child, _, _, _ in self.p_edges}
        return [node for node in self.nodes if node.surrogate not in child_keys]

    def node_count(self):
        return len(self.nodes)

    def edge_counts(self):
        return {"p_edges": len(self.p_edges), "s_edges": len(self.s_edges)}

    # -- renderings ------------------------------------------------------------------

    def to_ascii(self):
        """Deterministic ASCII tree with ordinal positions.

        Sibling order reads top to bottom; ``-P->`` direction is implied
        by indentation (each child's parent is the enclosing node).
        """
        lines = []

        def walk(node, prefix, is_last, ordinal, depth):
            connector = "" if depth == 0 else ("`-- " if is_last else "|-- ")
            ordinal_text = "" if ordinal is None else "[%d] " % ordinal
            lines.append(prefix + connector + ordinal_text + self._display(node))
            children = self.children_of(node)
            if depth == 0:
                child_prefix = prefix
            else:
                child_prefix = prefix + ("    " if is_last else "|   ")
            for index, child in enumerate(children, start=1):
                walk(child, child_prefix, index == len(children), index, depth + 1)

        for root in self.roots():
            walk(root, "", True, None, 0)
        return "\n".join(lines)

    def to_edge_list(self):
        """The explicit P-edge / S-edge listing used in tests and reports."""
        lines = []
        for child, parent, name, position in self.p_edges:
            lines.append(
                "P: %s -> %s (ordinal %d, ordering %s)"
                % (self._display(child), self._display(parent), position, name)
            )
        for left, right, name in self.s_edges:
            lines.append(
                "S: %s -> %s (ordering %s)" % (self._display(left), self._display(right), name)
            )
        return "\n".join(lines)

    def to_dot(self, graph_name="instance_graph"):
        """Graphviz DOT: solid P-edges, dashed S-edges."""
        lines = ["digraph %s {" % graph_name, "  rankdir=BT;"]
        for node in self.nodes:
            lines.append(
                '  n%d [label="%s"];' % (node.surrogate, self._display(node))
            )
        for child, parent, name, position in self.p_edges:
            lines.append(
                '  n%d -> n%d [label="P:%d"];'
                % (child.surrogate, parent.surrogate, position)
            )
        for left, right, name in self.s_edges:
            lines.append(
                '  n%d -> n%d [style=dashed, label="S"];'
                % (left.surrogate, right.surrogate)
            )
        lines.append("}")
        return "\n".join(lines)
