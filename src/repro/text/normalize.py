"""Text normalization for catalog search.

Catalog strings arrive messy: ``"Prélude — No. 1 (BWV 846)"`` and
``"prelude no 1 bwv 846"`` should be the same title.  Every string that
enters the trigram index — and every query that probes it — passes
through one canonical pipeline so that index maintenance and predicate
evaluation can never disagree:

1. Unicode NFKD decomposition, then combining marks are dropped
   (``é`` → ``e``, ``ü`` → ``u``); compatibility forms fold too
   (``ﬁ`` → ``fi``, fullwidth digits → ASCII).
2. ``str.casefold()`` (stronger than ``lower()``: ``ß`` → ``ss``).
3. Every non-alphanumeric character becomes a space (punctuation,
   dashes, apostrophes — ``"don't"`` → ``"don t"``).
4. Whitespace collapses to single spaces and is stripped at the ends.

The result is either the empty string (nothing searchable survived) or
a space-separated sequence of lowercase alphanumeric tokens.

``trigrams`` slices the normalized form into overlapping 3-grams
*without* padding.  Unpadded grams keep one invariant the `matches`
pushdown depends on: every trigram of a substring is a trigram of the
containing string, so posting-list intersection over the query's grams
can never drop a true containment match.
"""

import unicodedata

__all__ = ["grams_of", "normalize", "token_sort", "trigrams", "GRAM"]

GRAM = 3


def normalize(text):
    """Fold *text* to canonical lowercase-alphanumeric-and-spaces form.

    ``None`` folds to the empty string so callers can treat missing
    attributes uniformly ("no text, matches nothing").
    """
    if text is None:
        return ""
    decomposed = unicodedata.normalize("NFKD", str(text))
    out = []
    last_space = True
    for ch in decomposed:
        if unicodedata.combining(ch):
            continue
        ch = ch.casefold()
        # casefold can expand one char to several ("ß" -> "ss").
        for folded in ch:
            if folded.isalnum():
                out.append(folded)
                last_space = False
            elif not last_space:
                out.append(" ")
                last_space = True
    if out and out[-1] == " ":
        out.pop()
    return "".join(out)


def token_sort(text):
    """Normalize, then sort the tokens — word-order-insensitive form.

    ``"Goldberg Variations"`` and ``"Variations, Goldberg"`` token-sort
    to the same string; the similarity blend compares both raw and
    token-sorted forms and keeps the better score.
    """
    return " ".join(sorted(normalize(text).split()))


def trigrams(text):
    """Set of overlapping 3-grams of the *normalized* form of text.

    Strings whose normalized form is shorter than 3 characters have no
    trigrams (empty set); the planner falls back to a residual filter
    for such queries rather than pretending the index can help.
    """
    return grams_of(normalize(text))


def grams_of(folded):
    """Trigram set of an *already-normalized* string.

    Split out of :func:`trigrams` so callers that hold the normalized
    form (the constant-folded similarity scorer, which normalizes each
    row value exactly once) don't re-fold it per derived feature.
    """
    if len(folded) < GRAM:
        return set()
    return {folded[i : i + GRAM] for i in range(len(folded) - GRAM + 1)}
