"""Catalog text search: normalization, similarity, trigram indexing.

See DESIGN.md §4k-§4l for the index layout, WAL records, normalization
rules, the planner pushdown contract, and the streaming top-k path.
"""

from .index import TrigramIndex
from .normalize import GRAM, grams_of, normalize, token_sort, trigrams
from .similarity import (
    SimilarityScorer,
    contains_match,
    edit_ratio,
    is_similar,
    match_predicate,
    required_overlap,
    similar_predicate,
    similarity,
    trigram_jaccard,
)

__all__ = [
    "GRAM",
    "SimilarityScorer",
    "TrigramIndex",
    "contains_match",
    "edit_ratio",
    "grams_of",
    "is_similar",
    "match_predicate",
    "normalize",
    "required_overlap",
    "similar_predicate",
    "similarity",
    "token_sort",
    "trigram_jaccard",
    "trigrams",
]
