"""Catalog text search: normalization, similarity, trigram indexing.

See DESIGN.md §4k for the index layout, WAL records, normalization
rules, and the planner pushdown contract.
"""

from .index import TrigramIndex
from .normalize import GRAM, normalize, token_sort, trigrams
from .similarity import (
    contains_match,
    edit_ratio,
    is_similar,
    required_overlap,
    similarity,
    trigram_jaccard,
)

__all__ = [
    "GRAM",
    "TrigramIndex",
    "contains_match",
    "edit_ratio",
    "is_similar",
    "normalize",
    "required_overlap",
    "similarity",
    "token_sort",
    "trigram_jaccard",
    "trigrams",
]
