"""Trigram inverted index: posting lists of rowids per 3-gram.

Mirrors the maintenance surface of ``storage.index.HashIndex`` —
``insert(value, rowid)`` / ``insert_many(pairs)`` / ``delete(value,
rowid)`` — so ``Table`` can register it in the same ``_indexes`` map
and every mutation, undo, replication, and recovery path maintains it
for free, inside the same transaction as the row effect.

The index stores *normalized* trigrams only; nothing here persists.
Durability comes from the owning table's WAL: recovery re-registers an
empty ``TrigramIndex`` before the checkpoint image loads, then
``load_row``/``remove_row`` replay rebuilds the postings incrementally
— exactly the path the crash battery cross-checks against a
rebuild-from-rows oracle.

Candidate retrieval is deliberately approximate-but-sound:

* ``candidates_matching`` intersects the posting lists of every query
  trigram (containment implies every query gram appears in the value);
* ``candidates_similar`` counts posting hits per rowid and keeps rows
  with at least ``required_overlap`` shared grams (the Jaccard bound).

Both return supersets of the true matches; callers re-verify with the
exact predicate on the materialized rows.  Queries whose normalized
form has no trigrams return ``None`` — "cannot prune, go scan".
"""

from repro.errors import StorageError

from .normalize import trigrams
from .similarity import required_overlap

__all__ = ["TrigramIndex"]


class TrigramIndex:
    """In-memory trigram posting lists over one string column."""

    kind = "text"

    def __init__(self, metrics=None):
        self._postings = {}
        self._entries = 0
        if metrics is not None:
            self._inserts = metrics.counter("text.index.inserts")
            self._deletes = metrics.counter("text.index.deletes")
        else:
            self._inserts = self._deletes = None

    def __len__(self):
        """Number of rows currently indexed (including gram-less ones)."""
        return self._entries

    def gram_count(self):
        return len(self._postings)

    def insert(self, value, rowid):
        for gram in trigrams(value):
            self._postings.setdefault(gram, set()).add(rowid)
        self._entries += 1
        if self._inserts is not None:
            self._inserts.inc()

    def insert_many(self, pairs):
        for value, rowid in pairs:
            self.insert(value, rowid)

    def delete(self, value, rowid):
        for gram in trigrams(value):
            posting = self._postings.get(gram)
            if posting is None or rowid not in posting:
                raise StorageError(
                    "text index out of sync: rowid %r missing from "
                    "posting %r" % (rowid, gram)
                )
            posting.discard(rowid)
            if not posting:
                del self._postings[gram]
        self._entries -= 1
        if self._deletes is not None:
            self._deletes.inc()

    def candidates_matching(self, query):
        """Rowids whose value can contain *query*; None = cannot prune."""
        grams = trigrams(query)
        if not grams:
            return None
        postings = []
        for gram in grams:
            posting = self._postings.get(gram)
            if posting is None:
                return set()
            postings.append(posting)
        postings.sort(key=len)
        result = set(postings[0])
        for posting in postings[1:]:
            result &= posting
            if not result:
                break
        return result

    def candidates_similar(self, query, threshold):
        """Rowids that can reach Jaccard >= threshold; None = cannot prune."""
        grams = trigrams(query)
        required = required_overlap(len(grams), threshold)
        if not grams or required <= 0:
            return None
        counts = {}
        for gram in grams:
            for rowid in self._postings.get(gram, ()):
                counts[rowid] = counts.get(rowid, 0) + 1
        return {rowid for rowid, hits in counts.items() if hits >= required}
