"""Trigram inverted index: compact sorted posting arrays per 3-gram.

Mirrors the maintenance surface of ``storage.index.HashIndex`` —
``insert(value, rowid)`` / ``insert_many(pairs)`` / ``delete(value,
rowid)`` — so ``Table`` can register it in the same ``_indexes`` map
and every mutation, undo, replication, and recovery path maintains it
for free, inside the same transaction as the row effect.

The index stores *normalized* trigrams only; nothing here persists.
Durability comes from the owning table's WAL: recovery re-registers an
empty ``TrigramIndex`` before the checkpoint image loads, then
``load_row``/``remove_row`` replay rebuilds the postings incrementally
— exactly the path the crash battery cross-checks against a
rebuild-from-rows oracle.

Storage layout (the million-track change): each gram's posting is a
sorted ``array('I')`` of rowids — 4 bytes per entry against the ~32+
bytes a Python ``set`` slot costs — and postings are sharded by the
gram's first character so a catalog-scale gram space never funnels
through one resize-happy dict.  Rowids therefore must fit an unsigned
32-bit int, which ``itertools.count``-allocated table rowids do until
~4 billion rows.

Candidate retrieval is deliberately approximate-but-sound:

* ``candidates_matching`` intersects the posting lists of every query
  trigram (containment implies every query gram appears in the value)
  with a galloping merge driven by the shortest posting, so cost
  scales with the *rarest* gram, not the table;
* ``candidates_similar`` keeps rows with at least ``required_overlap``
  shared grams (the Jaccard bound) by counting only the ``k - r + 1``
  *essential* shortest postings — a qualifying row must appear in one
  of them — and probing the long postings per survivor by bisection,
  instead of touching every posting entry of every query gram.

Both return supersets of the true matches; callers re-verify with the
exact predicate on the materialized rows.  Queries whose normalized
form has no trigrams return ``None`` — "cannot prune, go scan".  The
streaming counterparts ``iter_matching`` / ``overlap_counts`` feed the
executor's top-k path, which wants candidates lazily (in rowid order)
or bucketed by gram overlap rather than materialized as a set.
"""

from array import array
from bisect import bisect_left, insort

from repro.errors import StorageError

from .normalize import trigrams
from .similarity import required_overlap

__all__ = ["TrigramIndex"]

#: Posting array typecode: unsigned 32-bit rowids, 4 bytes each.
_CODE = "I"
_ITEMSIZE = array(_CODE).itemsize

#: Rough CPython cost of one posting beyond its entries: the array
#: object header plus its dict slot in the shard.  Only used for the
#: footprint *estimate* (``\indexes``, ``text.index.bytes``); nothing
#: correctness-critical reads it.
_POSTING_OVERHEAD = 120

#: Rough CPython cost of one row's slot in the per-row gram-count map.
_ROW_OVERHEAD = 64

#: Below this many pairs, ``insert_many`` falls back to per-row
#: inserts; batching overhead would dominate (mirrors HashIndex).
_BULK_THRESHOLD = 16


def _gallop(posting, target, lo):
    """Insertion point of *target* in sorted *posting*, searching from
    *lo* by exponential steps then bisection.

    Caller guarantees ``posting[lo] < target`` (the probe advances
    monotonically), so consecutive probes near each other cost O(log
    gap) instead of O(log n).
    """
    n = len(posting)
    step = 1
    hi = lo + 1
    while hi < n and posting[hi] < target:
        lo = hi
        step <<= 1
        hi = lo + step
    return bisect_left(posting, target, lo + 1, min(hi, n))


class TrigramIndex:
    """In-memory sharded trigram posting arrays over one string column."""

    kind = "text"

    def __init__(self, metrics=None):
        # gram[0] -> {gram: sorted array('I') of rowids}
        self._shards = {}
        # rowid -> that row's gram-set size.  |row grams| turns a
        # candidate's posting overlap into an *exact* Jaccard (union =
        # |Q| + |R| - overlap), which is what makes the top-k score
        # bound tight enough to skip fetching most candidates.
        self._row_grams = {}
        self._posting_entries = 0
        self._gram_count = 0
        if metrics is not None:
            self._inserts = metrics.counter("text.index.inserts")
            self._deletes = metrics.counter("text.index.deletes")
            self._bytes_gauge = metrics.gauge("text.index.bytes")
        else:
            self._inserts = self._deletes = self._bytes_gauge = None

    def __len__(self):
        """Number of rows currently indexed (including gram-less ones)."""
        return len(self._row_grams)

    def gram_count(self):
        return self._gram_count

    def posting_entries(self):
        """Total posting slots across every gram (rows x grams-per-row)."""
        return self._posting_entries

    def row_gram_count(self, rowid):
        """Gram-set size of one indexed row (0 when unknown/gram-less)."""
        return self._row_grams.get(rowid, 0)

    def approx_bytes(self):
        """Estimated memory footprint of the index storage."""
        return (
            self._posting_entries * _ITEMSIZE
            + self._gram_count * _POSTING_OVERHEAD
            + len(self._row_grams) * _ROW_OVERHEAD
        )

    @property
    def _postings(self):
        """Flat ``{gram: posting array}`` view across every shard.

        Arrays compare element-wise and postings are kept sorted, so two
        indexes holding the same rows are equal through this view no
        matter what op order built them — the crash battery's
        rebuild-from-rows oracle compares exactly this.
        """
        out = {}
        for shard in self._shards.values():
            out.update(shard)
        return out

    def _posting(self, gram):
        shard = self._shards.get(gram[0])
        if shard is None:
            return None
        return shard.get(gram)

    def _account(self, entries_delta, grams_delta, rows_delta):
        self._posting_entries += entries_delta
        self._gram_count += grams_delta
        if self._bytes_gauge is not None and (
            entries_delta or grams_delta or rows_delta
        ):
            self._bytes_gauge.inc(
                entries_delta * _ITEMSIZE
                + grams_delta * _POSTING_OVERHEAD
                + rows_delta * _ROW_OVERHEAD
            )

    def detach(self):
        """Surrender this index's share of ``text.index.bytes``.

        Called when the owning table drops the index; the registry gauge
        aggregates every live text index, so a dropped one must give its
        bytes back before it is discarded.
        """
        if self._bytes_gauge is not None:
            self._bytes_gauge.dec(self.approx_bytes())
            self._bytes_gauge = None

    # -- maintenance (the nine row paths all funnel through these) ---------

    def insert(self, value, rowid):
        grams = trigrams(value)
        new_grams = 0
        for gram in grams:
            shard = self._shards.setdefault(gram[0], {})
            posting = shard.get(gram)
            if posting is None:
                shard[gram] = array(_CODE, (rowid,))
                new_grams += 1
            elif rowid > posting[-1]:
                # Fresh rowids are monotonic, so appends dominate.
                posting.append(rowid)
            else:
                insort(posting, rowid)
        self._row_grams[rowid] = len(grams)
        self._account(len(grams), new_grams, 1)
        if self._inserts is not None:
            self._inserts.inc()

    def insert_many(self, pairs):
        """Bulk insert: group rowids per gram, one sort/merge per gram.

        The per-row path pays an insort per (gram, row); a 1M-row
        backfill through it is quadratic in the hot postings.  Here each
        gram's new rowids are collected, sorted once (bulk loads arrive
        in ascending rowid order, so Timsort sees nearly-sorted input),
        and appended — or merged, when the batch interleaves an
        existing posting — in one pass.
        """
        pairs = list(pairs)
        if len(pairs) < _BULK_THRESHOLD:
            for value, rowid in pairs:
                self.insert(value, rowid)
            return
        fresh = {}
        for value, rowid in pairs:
            grams = trigrams(value)
            self._row_grams[rowid] = len(grams)
            for gram in grams:
                bucket = fresh.get(gram)
                if bucket is None:
                    fresh[gram] = [rowid]
                else:
                    bucket.append(rowid)
        new_entries = 0
        new_grams = 0
        for gram, rowids in fresh.items():
            rowids.sort()
            shard = self._shards.setdefault(gram[0], {})
            posting = shard.get(gram)
            if posting is None:
                shard[gram] = array(_CODE, rowids)
                new_grams += 1
            elif rowids[0] > posting[-1]:
                posting.extend(rowids)
            else:
                posting.extend(rowids)
                shard[gram] = array(_CODE, sorted(posting))
            new_entries += len(rowids)
        self._account(new_entries, new_grams, len(pairs))
        if self._inserts is not None:
            self._inserts.inc(len(pairs))

    def delete(self, value, rowid):
        grams = trigrams(value)
        dropped_grams = 0
        for gram in grams:
            shard = self._shards.get(gram[0])
            posting = shard.get(gram) if shard is not None else None
            if posting is not None:
                i = bisect_left(posting, rowid)
                if i == len(posting) or posting[i] != rowid:
                    posting = None
            if posting is None:
                raise StorageError(
                    "text index out of sync: rowid %r missing from "
                    "posting %r" % (rowid, gram)
                )
            posting.pop(i)
            if not posting:
                del shard[gram]
                dropped_grams += 1
                if not shard:
                    del self._shards[gram[0]]
        self._row_grams.pop(rowid, None)
        self._account(-len(grams), -dropped_grams, -1)
        if self._deletes is not None:
            self._deletes.inc()

    # -- candidate retrieval ------------------------------------------------

    def candidates_matching(self, query):
        """Rowids whose value can contain *query*; None = cannot prune."""
        postings = self._query_postings(query)
        if postings is None:
            return None
        if not postings:
            return set()
        if len(postings) == 1:
            return set(postings[0])
        return set(self._intersect(postings))

    def iter_matching(self, query):
        """Lazy ``candidates_matching``: yields rowids ascending.

        Returns None when the query has no trigrams (cannot prune).
        The executor's streaming top-k path consumes only as many
        candidates as the limit needs.
        """
        postings = self._query_postings(query)
        if postings is None:
            return None
        if not postings:
            return iter(())
        if len(postings) == 1:
            return iter(postings[0])
        return self._intersect(postings)

    def _query_postings(self, query):
        """The query grams' postings sorted shortest-first; None when the
        query has no grams, [] when some gram has no posting at all."""
        grams = trigrams(query)
        if not grams:
            return None
        postings = []
        for gram in grams:
            posting = self._posting(gram)
            if posting is None:
                return []
            postings.append(posting)
        postings.sort(key=len)
        return postings

    @staticmethod
    def _intersect(postings):
        """Galloping merge: rowids present in every posting, ascending.

        Drives with the shortest posting; each longer posting keeps a
        cursor that only moves forward, advanced by exponential search.
        Total cost is O(|shortest| · log(gap)) instead of building and
        intersecting full sets.
        """
        driver = postings[0]
        others = postings[1:]
        positions = [0] * len(others)
        for rowid in driver:
            hit = True
            for j, posting in enumerate(others):
                i = positions[j]
                if i < len(posting) and posting[i] < rowid:
                    i = _gallop(posting, rowid, i)
                    positions[j] = i
                if i == len(posting):
                    return  # posting exhausted: nothing larger can match
                if posting[i] != rowid:
                    hit = False
                    break
            if hit:
                yield rowid

    def candidates_similar(self, query, threshold):
        """Rowids that can reach Jaccard >= threshold; None = cannot prune."""
        counts = self.similar_overlaps(query, threshold)
        if counts is None:
            return None
        return set(counts)

    def similar_overlaps(self, query, threshold):
        """``{rowid: exact gram overlap}`` for rows that can pass the
        Jaccard bound; None when the index cannot prune.

        A row needs at least ``r = required_overlap(...)`` of the
        query's ``k`` gram postings.  Any such row appears in one of the
        ``k - r + 1`` shortest ("essential") postings — missing all of
        them caps its hits at ``r - 1``.  So: count hits over the
        essential postings only, then finish each survivor's count by
        bisecting into the long postings, abandoning a row as soon as
        even winning every remaining probe cannot reach ``r``.
        Survivors carry their exact overlap, which the top-k executor
        turns into a similarity upper bound per bucket.
        """
        grams = trigrams(query)
        required = required_overlap(len(grams), threshold)
        if not grams or required <= 0:
            return None
        postings = []
        for gram in grams:
            posting = self._posting(gram)
            if posting is not None:
                postings.append(posting)
        if len(postings) < required:
            return {}
        postings.sort(key=len)
        cut = len(postings) - required + 1
        essential, rest = postings[:cut], postings[cut:]
        counts = {}
        for posting in essential:
            for rowid in posting:
                counts[rowid] = counts.get(rowid, 0) + 1
        if not rest:
            return {r: h for r, h in counts.items() if h >= required}
        out = {}
        total_rest = len(rest)
        for rowid, hits in counts.items():
            remaining = total_rest
            alive = True
            for posting in rest:
                if hits + remaining < required:
                    alive = False
                    break
                remaining -= 1
                i = bisect_left(posting, rowid)
                if i < len(posting) and posting[i] == rowid:
                    hits += 1
            if alive and hits >= required:
                out[rowid] = hits
        return out

    def overlap_counts(self, grams, rowids):
        """Exact ``{rowid: |grams ∩ row grams|}`` for given *rowids*.

        The ranked top-k path calls this with the similarity query's
        gram set over the (already pruned) gate candidates; per gram it
        either walks a short posting against the candidate dict or
        bisects each candidate into a long posting, whichever is fewer
        probes.
        """
        counts = dict.fromkeys(rowids, 0)
        if not counts:
            return counts
        for gram in grams:
            posting = self._posting(gram)
            if posting is None:
                continue
            n = len(posting)
            if n <= len(counts):
                for rowid in posting:
                    if rowid in counts:
                        counts[rowid] += 1
            else:
                for rowid in counts:
                    i = bisect_left(posting, rowid)
                    if i < n and posting[i] == rowid:
                        counts[rowid] += 1
        return counts

    # -- planner cost estimates ----------------------------------------------

    def estimate_matching(self, query):
        """Upper bound on ``candidates_matching``'s result size, without
        computing it; None = the index cannot prune this query."""
        grams = trigrams(query)
        if not grams:
            return None
        best = None
        for gram in grams:
            posting = self._posting(gram)
            if posting is None:
                return 0
            if best is None or len(posting) < best:
                best = len(posting)
        return best

    def estimate_similar(self, query, threshold):
        """Upper bound on ``candidates_similar``'s result size (the
        essential-posting union); None = the index cannot prune."""
        grams = trigrams(query)
        required = required_overlap(len(grams), threshold)
        if not grams or required <= 0:
            return None
        lengths = sorted(
            len(posting)
            for posting in map(self._posting, grams)
            if posting is not None
        )
        if len(lengths) < required:
            return 0
        return sum(lengths[: len(lengths) - required + 1])
