"""Similarity scoring and the two indexable text predicates.

Two layers live here, deliberately separated:

* **Predicates** the planner can push down to the trigram index.
  ``contains_match`` is normalized substring containment (the QUEL
  ``matches`` gate) and ``is_similar`` is trigram-set Jaccard against a
  threshold (the QUEL ``similar_to`` gate).  Both have *provable*
  candidate bounds over posting lists — see ``required_overlap`` — so
  index retrieval is always a superset of the true matches and a
  post-verification pass restores exactness.

* **Scoring** for ranking: ``similarity`` blends trigram Jaccard with
  edit-distance ratios over both the raw normalized strings and their
  token-sorted forms (the SoulSync ``MusicMatchingEngine`` idiom for
  edition/variant matching: "Symphony No. 5 (Remastered 2011)" should
  score high against "symphony no 5").  The blend has no clean posting
  bound, so it is exposed as a scalar QUEL function rather than a
  pushdown gate.
"""

import math
from difflib import SequenceMatcher

from .normalize import grams_of, normalize, token_sort, trigrams

__all__ = [
    "SimilarityScorer",
    "contains_match",
    "edit_ratio",
    "is_similar",
    "match_predicate",
    "required_overlap",
    "similar_predicate",
    "similarity",
    "trigram_jaccard",
]


def trigram_jaccard(a, b):
    """Jaccard similarity of the trigram sets of two strings.

    Both-empty (e.g. two sub-trigram strings) counts as identical when
    the normalized forms agree, else 0 — short strings carry no gram
    evidence either way, so equality is the only defensible signal.
    """
    ga, gb = trigrams(a), trigrams(b)
    if not ga and not gb:
        return 1.0 if normalize(a) == normalize(b) else 0.0
    union = len(ga | gb)
    return len(ga & gb) / union if union else 0.0


def edit_ratio(a, b):
    """Edit-distance similarity in [0, 1] over normalized forms."""
    na, nb = normalize(a), normalize(b)
    if not na and not nb:
        return 1.0
    return SequenceMatcher(None, na, nb).ratio()


def similarity(a, b):
    """Blended match confidence in [0, 1].

    Averages trigram Jaccard with the better of the two edit ratios
    (raw vs token-sorted), so both local typos and word reordering are
    forgiven without either dominating.  Symmetric in its arguments.
    """
    if a is None or b is None:
        return 0.0
    jac = trigram_jaccard(a, b)
    raw = edit_ratio(a, b)
    sorted_ratio = SequenceMatcher(None, token_sort(a), token_sort(b)).ratio()
    return (jac + max(raw, sorted_ratio)) / 2.0


class SimilarityScorer:
    """:func:`similarity` with the query side folded at construction.

    ``similarity(value, query)`` re-derives the query's normalized
    form, trigram set, and token-sorted form on every call — per *row*
    in a ranked retrieve.  A scorer folds those once and normalizes the
    row value once per call (the plain function folds it four times,
    through ``trigrams``/``normalize``/``edit_ratio``/``token_sort``).
    ``scorer(value)`` returns bit-identical floats to
    ``similarity(value, query)``: same operations, same operand order.
    """

    __slots__ = ("query", "grams", "_norm", "_token_sorted")

    def __init__(self, query):
        self.query = query
        self._norm = normalize(query)
        self.grams = grams_of(self._norm)
        self._token_sorted = " ".join(sorted(self._norm.split()))

    def __call__(self, value):
        if value is None or self.query is None:
            return 0.0
        folded = normalize(value)
        value_grams = grams_of(folded)
        if not value_grams and not self.grams:
            jac = 1.0 if folded == self._norm else 0.0
        else:
            union = len(value_grams | self.grams)
            jac = len(value_grams & self.grams) / union if union else 0.0
        raw = (
            1.0
            if not folded and not self._norm
            else SequenceMatcher(None, folded, self._norm).ratio()
        )
        value_sorted = " ".join(sorted(folded.split()))
        sorted_ratio = SequenceMatcher(
            None, value_sorted, self._token_sorted
        ).ratio()
        return (jac + max(raw, sorted_ratio)) / 2.0

    def bound(self, overlap):
        """Highest score a row sharing *overlap* grams with the query
        can reach: Jaccard <= overlap/|Q| (the union is at least the
        query's gram set) and the edit-ratio blend half is <= 1.  Both
        division and averaging are monotone in IEEE floats, so the
        bound stays sound against the exact score.  No grams, no bound.
        """
        if not self.grams:
            return 1.0
        return (overlap / len(self.grams) + 1.0) / 2.0

    def bound_with(self, overlap, row_gram_count):
        """:meth:`bound` tightened by the row's gram-set size.

        With |R| known, two halves of the blend sharpen:

        * the union is exactly ``|Q| + |R| - overlap``, so the Jaccard
          half is *exact* (row grams and stored grams come from the
          same normalization pipeline);
        * a row with |R| distinct grams is at least ``|R| + 2`` chars
          long, and ``SequenceMatcher.ratio() <= 2*min(a,b)/(a+b)``
          (token-sorting permutes, so both edit forms share lengths),
          which caps the edit half for rows longer than the query.

        Long rows that merely *contain* the query fall well below a
        close match's real score, which is the pruning the streaming
        top-k path lives on.
        """
        if not self.grams:
            return 1.0
        union = len(self.grams) + row_gram_count - overlap
        jac = overlap / union if union > 0 else 1.0
        qlen = len(self._norm)
        row_min_len = row_gram_count + 2 if row_gram_count else 0
        if row_min_len > qlen:
            edit = (2.0 * qlen) / (qlen + row_min_len)
        else:
            edit = 1.0
        return (jac + edit) / 2.0


def match_predicate(query):
    """:func:`contains_match` with the query normalized once."""
    needle = normalize(query)

    def predicate(value):
        if value is None:
            return False
        return needle in normalize(value)

    return predicate


def similar_predicate(query, threshold):
    """:func:`is_similar` with the query's gram set folded once."""
    query_norm = normalize(query)
    query_grams = grams_of(query_norm)

    def predicate(value):
        if value is None:
            return False
        folded = normalize(value)
        value_grams = grams_of(folded)
        if not value_grams and not query_grams:
            return (1.0 if folded == query_norm else 0.0) >= threshold
        union = len(value_grams | query_grams)
        jac = len(value_grams & query_grams) / union if union else 0.0
        return jac >= threshold

    return predicate


def contains_match(value, query):
    """The exact ``matches`` predicate: normalized containment.

    ``None`` values match nothing; an empty normalized query matches
    every non-null string (vacuous containment).
    """
    if value is None:
        return False
    return normalize(query) in normalize(value)


def is_similar(value, query, threshold):
    """The exact ``similar_to`` predicate: trigram Jaccard >= threshold."""
    if value is None:
        return False
    return trigram_jaccard(value, query) >= threshold


def required_overlap(query_gram_count, threshold):
    """Minimum shared trigrams a row can have and still pass ``is_similar``.

    With query gram set ``Q`` and row gram set ``R``, Jaccard ``J =
    |Q∩R| / |Q∪R|`` and ``|Q∪R| >= |Q|``, so ``J >= t`` forces ``|Q∩R|
    >= t·|Q|``.  The ceiling is taken with a small epsilon *down* so
    float fuzz can only ever weaken the bound (more candidates), never
    strengthen it past soundness.  Thresholds <= 0 yield 0: the index
    cannot prune, the caller must scan.
    """
    if threshold <= 0.0 or query_gram_count <= 0:
        return 0
    return max(1, math.ceil(threshold * query_gram_count - 1e-9))
