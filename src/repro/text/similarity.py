"""Similarity scoring and the two indexable text predicates.

Two layers live here, deliberately separated:

* **Predicates** the planner can push down to the trigram index.
  ``contains_match`` is normalized substring containment (the QUEL
  ``matches`` gate) and ``is_similar`` is trigram-set Jaccard against a
  threshold (the QUEL ``similar_to`` gate).  Both have *provable*
  candidate bounds over posting lists — see ``required_overlap`` — so
  index retrieval is always a superset of the true matches and a
  post-verification pass restores exactness.

* **Scoring** for ranking: ``similarity`` blends trigram Jaccard with
  edit-distance ratios over both the raw normalized strings and their
  token-sorted forms (the SoulSync ``MusicMatchingEngine`` idiom for
  edition/variant matching: "Symphony No. 5 (Remastered 2011)" should
  score high against "symphony no 5").  The blend has no clean posting
  bound, so it is exposed as a scalar QUEL function rather than a
  pushdown gate.
"""

import math
from difflib import SequenceMatcher

from .normalize import normalize, token_sort, trigrams

__all__ = [
    "contains_match",
    "edit_ratio",
    "is_similar",
    "required_overlap",
    "similarity",
    "trigram_jaccard",
]


def trigram_jaccard(a, b):
    """Jaccard similarity of the trigram sets of two strings.

    Both-empty (e.g. two sub-trigram strings) counts as identical when
    the normalized forms agree, else 0 — short strings carry no gram
    evidence either way, so equality is the only defensible signal.
    """
    ga, gb = trigrams(a), trigrams(b)
    if not ga and not gb:
        return 1.0 if normalize(a) == normalize(b) else 0.0
    union = len(ga | gb)
    return len(ga & gb) / union if union else 0.0


def edit_ratio(a, b):
    """Edit-distance similarity in [0, 1] over normalized forms."""
    na, nb = normalize(a), normalize(b)
    if not na and not nb:
        return 1.0
    return SequenceMatcher(None, na, nb).ratio()


def similarity(a, b):
    """Blended match confidence in [0, 1].

    Averages trigram Jaccard with the better of the two edit ratios
    (raw vs token-sorted), so both local typos and word reordering are
    forgiven without either dominating.  Symmetric in its arguments.
    """
    if a is None or b is None:
        return 0.0
    jac = trigram_jaccard(a, b)
    raw = edit_ratio(a, b)
    sorted_ratio = SequenceMatcher(None, token_sort(a), token_sort(b)).ratio()
    return (jac + max(raw, sorted_ratio)) / 2.0


def contains_match(value, query):
    """The exact ``matches`` predicate: normalized containment.

    ``None`` values match nothing; an empty normalized query matches
    every non-null string (vacuous containment).
    """
    if value is None:
        return False
    return normalize(query) in normalize(value)


def is_similar(value, query, threshold):
    """The exact ``similar_to`` predicate: trigram Jaccard >= threshold."""
    if value is None:
        return False
    return trigram_jaccard(value, query) >= threshold


def required_overlap(query_gram_count, threshold):
    """Minimum shared trigrams a row can have and still pass ``is_similar``.

    With query gram set ``Q`` and row gram set ``R``, Jaccard ``J =
    |Q∩R| / |Q∪R|`` and ``|Q∪R| >= |Q|``, so ``J >= t`` forces ``|Q∩R|
    >= t·|Q|``.  The ceiling is taken with a small epsilon *down* so
    float fuzz can only ever weaken the bound (more candidates), never
    strengthen it past soundness.  Thresholds <= 0 yield 0: the index
    cannot prune, the caller must scan.
    """
    if threshold <= 0.0 or query_gram_count <= 0:
        return 0
    return max(1, math.ceil(threshold * query_gram_count - 1e-9))
