"""Instrument-specific notation: tablature (section 4.5).

"Other types of notations are specific to particular instruments (e.g.
lute tablature)."  Tablature maps sounding pitches onto (string, fret)
positions of a fretted instrument; this module assigns frets for a
score's events and renders the familiar ASCII tab: one text line per
string, fret numbers placed along the time axis.
"""

from repro.errors import NotationError
from repro.cmn.events import all_events
from repro.pitch.pitch import Pitch

#: Standard tunings, low string first (MIDI keys).
TUNINGS = {
    "guitar": [40, 45, 50, 55, 59, 64],         # E2 A2 D3 G3 B3 E4
    "renaissance lute": [43, 48, 53, 57, 62, 67],  # G2 C3 F3 A3 D4 G4
    "bass": [28, 33, 38, 43],                    # E1 A1 D2 G2
}


class TabNote:
    """One tablature position: string (0 = lowest), fret, time."""

    __slots__ = ("start_beats", "duration_beats", "string", "fret", "key")

    def __init__(self, start_beats, duration_beats, string, fret, key):
        self.start_beats = start_beats
        self.duration_beats = duration_beats
        self.string = string
        self.fret = fret
        self.key = key

    def __repr__(self):
        return "TabNote(string %d fret %d @ %s)" % (
            self.string, self.fret, self.start_beats,
        )


def assign_frets(events, tuning, max_fret=19):
    """Assign (string, fret) positions to (start, duration, key) events.

    Events are processed in time order; simultaneous notes must land on
    distinct strings.  Preference: the string giving the lowest fret.
    Raises NotationError when a note cannot be placed.
    """
    placed = []
    by_start = {}
    for start, duration, key in sorted(events):
        by_start.setdefault(start, []).append((key, duration))
    for start, chord in sorted(by_start.items()):
        used_strings = set()
        # Highest pitches first so low strings stay free for low notes.
        for key, duration in sorted(chord, reverse=True):
            best = None
            for string_index, open_key in enumerate(tuning):
                if string_index in used_strings:
                    continue
                fret = key - open_key
                if 0 <= fret <= max_fret:
                    if best is None or fret < best[1]:
                        best = (string_index, fret)
            if best is None:
                raise NotationError(
                    "no free string for %s at beat %s"
                    % (Pitch.from_midi(key).name(), start)
                )
            used_strings.add(best[0])
            placed.append(TabNote(start, duration, best[0], best[1], key))
    return placed


def score_to_tablature(cmn, score, tuning="guitar", max_fret=19):
    """Assign tab positions for every event of *score*."""
    if isinstance(tuning, str):
        try:
            tuning = TUNINGS[tuning]
        except KeyError:
            raise NotationError("unknown tuning %r" % tuning)
    events = [
        (event["start_beats"], event["duration_beats"], event["midi_key"])
        for event in all_events(cmn, score)
    ]
    return assign_frets(events, tuning), tuning


def render_tab(tab_notes, tuning, cells_per_beat=2):
    """ASCII tablature: highest string on top, '-' as the string line."""
    if not tab_notes:
        return "(empty tablature)"
    end = max(note.start_beats + note.duration_beats for note in tab_notes)
    columns = int(end * cells_per_beat) + 2
    rows = {
        string_index: ["-"] * columns for string_index in range(len(tuning))
    }
    for note in tab_notes:
        column = int(note.start_beats * cells_per_beat)
        text = str(note.fret)
        for offset, char in enumerate(text):
            if column + offset < columns:
                rows[note.string][column + offset] = char
    lines = []
    for string_index in reversed(range(len(tuning))):
        label = Pitch.from_midi(tuning[string_index]).name().ljust(4)
        lines.append(label + "|" + "".join(rows[string_index]) + "|")
    return "\n".join(lines)


def tab_for_score(cmn, score, tuning="guitar", cells_per_beat=2):
    """Convenience: assign and render in one call."""
    notes, resolved_tuning = score_to_tablature(cmn, score, tuning)
    return render_tab(notes, resolved_tuning, cells_per_beat)
