"""Rendering thematic-index entries (the figure 2 layout)."""


def format_citation(index, entry):
    """The short identifier plus title: ``578 Fuge g-moll``."""
    return "%d %s" % (entry["number"], entry["title"])


def format_entry(index, entry, width=72):
    """A figure-2-style text block for one entry.

    Sections follow the paper's example: Besetzung (setting), EZ (when
    and where composed), the incipits, Abschriften (copies), Ausgaben
    (editions), Literatur (articles)."""
    lines = []
    lines.append(format_citation(index, entry))
    lines.append("=" * min(width, len(lines[0])))
    setting = entry["setting"]
    if setting:
        lines.append("Besetzung: %s" % setting)
    when = entry["composed_when"]
    where = entry["composed_where"]
    if when or where:
        composed = " ".join(p for p in (when, where) if p)
        lines.append("EZ: %s" % composed)
    takte = entry["measure_count"]
    if takte:
        lines.append("Takte: %d" % takte)
    incipits = index.incipits(entry)
    if incipits:
        lines.append("")
        for incipit in incipits:
            label = incipit["voice_label"]
            prefix = ("%s: " % label) if label else ""
            lines.append("  %s%s" % (prefix, incipit["darms"]))
        lines.append("")
    for heading, items in (
        ("Abschriften", index.copies(entry)),
        ("Ausgaben", index.editions(entry)),
        ("Literatur", index.literature(entry)),
    ):
        if items:
            lines.append("%s: %s" % (heading, " - ".join(i["text"] for i in items)))
    return "\n".join(lines)
