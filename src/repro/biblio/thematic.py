"""Thematic indexes as ER + hierarchical-ordering data.

The index and its entries are ordinary entities; the multi-valued
bibliographic attributes (copies, editions, literature) and the
incipits are hierarchically ordered under their entry -- the paper's
own modeling tools applied to its section 4.2 material.
"""

from repro.errors import BiblioError
from repro.core.schema import Schema

BIBLIO_DDL_TYPES = {
    "THEMATIC_INDEX": [
        ("name", "string"),
        ("abbreviation", "string"),
        ("ordering_principle", "string"),
    ],
    "INDEX_ENTRY": [
        ("number", "integer"),
        ("title", "string"),
        ("setting", "string"),          # Besetzung
        ("composed_when", "string"),    # EZ
        ("composed_where", "string"),
        ("measure_count", "integer"),   # Takte
    ],
    "INCIPIT": [
        ("voice_label", "string"),
        ("darms", "string"),
    ],
    "MANUSCRIPT_COPY": [("text", "string")],   # Abschriften
    "EDITION": [("text", "string")],           # Ausgaben
    "LITERATURE_REF": [("text", "string")],    # Literatur
    "PERSON": [("name", "string"), ("born", "integer"), ("died", "integer")],
}

BIBLIO_ORDERINGS = {
    "entry_in_index": (["INDEX_ENTRY"], "THEMATIC_INDEX"),
    "incipit_in_entry": (["INCIPIT"], "INDEX_ENTRY"),
    "copy_in_entry": (["MANUSCRIPT_COPY"], "INDEX_ENTRY"),
    "edition_in_entry": (["EDITION"], "INDEX_ENTRY"),
    "literature_in_entry": (["LITERATURE_REF"], "INDEX_ENTRY"),
}

BIBLIO_RELATIONSHIPS = {
    "INDEXES_WORKS_OF": [("index", "THEMATIC_INDEX"), ("composer", "PERSON")],
}


def build_biblio_schema(database=None, schema=None):
    """Create (or extend) a schema with the bibliographic types."""
    if schema is None:
        schema = Schema("biblio", database=database)
    for name, attributes in BIBLIO_DDL_TYPES.items():
        if not schema.has_entity_type(name):
            schema.define_entity(name, attributes)
    for name, (children, parent) in BIBLIO_ORDERINGS.items():
        if name not in schema.orderings:
            schema.define_ordering(name, children, under=parent)
    for name, roles in BIBLIO_RELATIONSHIPS.items():
        if name not in schema.relationships:
            schema.define_relationship(name, roles)
    return schema


class ThematicIndex:
    """A thematic index over one schema (e.g. the BWV)."""

    def __init__(self, schema, name, abbreviation, composer=None,
                 ordering_principle="chronological"):
        self.schema = build_biblio_schema(schema=schema)
        self.index = self.schema.entity_type("THEMATIC_INDEX").create(
            name=name,
            abbreviation=abbreviation,
            ordering_principle=ordering_principle,
        )
        if composer is not None:
            person_type = self.schema.entity_type("PERSON")
            matches = person_type.find(name=composer)
            person = matches[0] if matches else person_type.create(name=composer)
            self.schema.relationship("INDEXES_WORKS_OF").relate(
                index=self.index, composer=person
            )

    @property
    def abbreviation(self):
        return self.index["abbreviation"]

    def composer(self):
        related = self.schema.relationship("INDEXES_WORKS_OF").related(
            "index", self.index, fetch_role="composer"
        )
        return related[0] if related else None

    # -- entries -----------------------------------------------------------------

    def add_entry(self, number, title, setting="", composed_when="",
                  composed_where="", measure_count=None, incipits=(),
                  copies=(), editions=(), literature=()):
        """Add an index entry; multi-valued attributes become ordered
        children.  Entries keep index order sorted by number."""
        entry_type = self.schema.entity_type("INDEX_ENTRY")
        if entry_type.find(number=number):
            existing = self._entries_by_number().get(number)
            if existing is not None:
                raise BiblioError(
                    "%s %d already catalogued" % (self.abbreviation, number)
                )
        entry = entry_type.create(
            number=number,
            title=title,
            setting=setting,
            composed_when=composed_when,
            composed_where=composed_where,
            measure_count=measure_count,
        )
        ordering = self.schema.ordering("entry_in_index")
        siblings = ordering.children(self.index)
        position = 1 + sum(1 for s in siblings if s["number"] < number)
        ordering.insert(self.index, entry, position)
        self._append_children(entry, "INCIPIT", "incipit_in_entry", incipits,
                              self._incipit_values)
        self._append_children(entry, "MANUSCRIPT_COPY", "copy_in_entry", copies)
        self._append_children(entry, "EDITION", "edition_in_entry", editions)
        self._append_children(entry, "LITERATURE_REF", "literature_in_entry",
                              literature)
        return entry

    @staticmethod
    def _incipit_values(item):
        if isinstance(item, tuple):
            label, darms = item
            return {"voice_label": label, "darms": darms}
        return {"voice_label": "", "darms": item}

    def _append_children(self, entry, type_name, ordering_name, items,
                         value_fn=None):
        entity_type = self.schema.entity_type(type_name)
        ordering = self.schema.ordering(ordering_name)
        for item in items:
            if value_fn is not None:
                values = value_fn(item)
            else:
                values = {"text": item}
            ordering.append(entry, entity_type.create(**values))

    def _entries_by_number(self):
        ordering = self.schema.ordering("entry_in_index")
        return {e["number"]: e for e in ordering.children(self.index)}

    def entries(self):
        return self.schema.ordering("entry_in_index").children(self.index)

    def entry(self, number):
        """Look up e.g. entry 578: "'BWV' identifies the index ... and
        '578' identifies the composition"."""
        found = self._entries_by_number().get(number)
        if found is None:
            raise BiblioError("no entry %s %d" % (self.abbreviation, number))
        return found

    def identifier(self, entry):
        """The widely understood name, e.g. ``"BWV 578"``."""
        return "%s %d" % (self.abbreviation, entry["number"])

    # -- per-entry detail ------------------------------------------------------------

    def incipits(self, entry):
        return self.schema.ordering("incipit_in_entry").children(entry)

    def copies(self, entry):
        return self.schema.ordering("copy_in_entry").children(entry)

    def editions(self, entry):
        return self.schema.ordering("edition_in_entry").children(entry)

    def literature(self, entry):
        return self.schema.ordering("literature_in_entry").children(entry)

    def __len__(self):
        return len(self.entries())
