"""Thematic-incipit search.

An incipit is stored as DARMS (section 4.6 gives us the encoding).  For
matching, the melody is reduced to an interval sequence (transposition
invariant) or a contour (up/down/repeat); queries match entries whose
incipit begins with -- or contains -- the query's reduction.  This is
the "sufficient musical (i.e. thematic) material to identify the
composition" use of section 4.2.
"""

from repro.errors import BiblioError
from repro.darms.canonical import normalize
from repro.darms.parser import parse_darms
from repro.darms.tokens import BeamGroup, ClefCode, KeyCode, NoteCode
from repro.pitch.accidental import Accidental, AccidentalState
from repro.pitch.clef import clef_by_name
from repro.pitch.key import KeySignature
from repro.pitch.spelling import performance_pitch


def _flatten_notes(elements):
    out = []
    for element in elements:
        if isinstance(element, NoteCode):
            out.append(element)
        elif isinstance(element, BeamGroup):
            out.extend(_flatten_notes(element.members))
    return out


def incipit_midi_keys(darms_text):
    """The MIDI key sequence of a DARMS incipit."""
    try:
        elements = normalize(parse_darms(darms_text))
    except Exception as exc:
        raise BiblioError("bad incipit DARMS: %s" % exc)
    clef = clef_by_name("treble")
    key = KeySignature(0)
    for element in elements:
        if isinstance(element, ClefCode):
            clef = clef_by_name(element.clef_name)
        elif isinstance(element, KeyCode):
            key = KeySignature(element.fifths)
    state = AccidentalState(key)
    keys = []
    for note in _flatten_notes(elements):
        accidental = (
            None if note.accidental is None else Accidental(note.accidental)
        )
        pitch = performance_pitch(note.degree, clef, state, accidental)
        keys.append(pitch.midi_key)
    return keys


def incipit_intervals(darms_text):
    """Successive semitone intervals (transposition invariant)."""
    keys = incipit_midi_keys(darms_text)
    return [b - a for a, b in zip(keys, keys[1:])]


def incipit_contour(darms_text):
    """Up/down/repeat contour string, e.g. ``"UUDR"``."""
    out = []
    for interval in incipit_intervals(darms_text):
        if interval > 0:
            out.append("U")
        elif interval < 0:
            out.append("D")
        else:
            out.append("R")
    return "".join(out)


def _contains(haystack, needle):
    if not needle:
        return True
    for start in range(len(haystack) - len(needle) + 1):
        if haystack[start:start + len(needle)] == needle:
            return True
    return False


def incipit_from_score(cmn, score, voice=None, measures=2):
    """Extract a thematic incipit from a stored score, as DARMS.

    The section 4.2 cataloguing workflow: the first *measures* measures
    of a voice become the identifying fragment.  The returned text is a
    valid (searchable) incipit for a thematic index.
    """
    from repro.darms.encode import score_to_darms

    encoded = score_to_darms(cmn, score, voice=voice)
    tokens = encoded.split()
    out = []
    barlines = 0
    for token in tokens:
        out.append(token)
        if token in ("/", "//"):
            barlines += 1
            if barlines >= measures:
                break
    if out and out[-1] == "/":
        out[-1] = "//"
    elif not out or out[-1] != "//":
        out.append("//")
    return " ".join(out)


def search_catalog_incipits(entity, query_darms, mode="verbatim",
                            prefix_only=False, limit=None):
    """Rowids of catalog *entity* whose ``incipit`` column matches.

    The library-scale complement of :func:`search_by_incipit`: instead
    of a curated thematic index, the haystack is a catalog entity (the
    corpus ``TRACK`` shape) holding one DARMS incipit string per row.

    ``"verbatim"`` mode matches the query DARMS as a normalized
    substring and runs through the trigram text index on the column
    when one exists -- the same posting-intersection path QUEL's
    ``matches`` gate uses, so a million-track catalog answers from the
    postings and only verified candidates touch the heap.
    ``"intervals"`` / ``"contour"`` reduce melodies before comparing,
    so transposed copies with entirely different text still match; the
    trigram index cannot prune those, but catalog rows repeat incipit
    strings across edition variants, so each *distinct* string is
    parsed and reduced exactly once.

    Returns rowids ascending; *limit* stops the search early (the
    candidate iterator is lazy, so a small limit reads only a small
    prefix of a large catalog).
    """
    from repro.text import contains_match

    table = entity.table
    if mode == "verbatim":
        matcher = lambda text: contains_match(text, query_darms)
        index = table.text_index_for("incipit")
        candidates = None if index is None else index.iter_matching(query_darms)
    elif mode in ("intervals", "contour"):
        if mode == "intervals":
            needle = incipit_intervals(query_darms)
            reducer = incipit_intervals
        else:
            needle = list(incipit_contour(query_darms))
            reducer = lambda text: list(incipit_contour(text))
        reductions = {}

        def matcher(text):
            if text is None:
                return False
            haystack = reductions.get(text)
            if haystack is None:
                try:
                    haystack = reducer(text)
                except BiblioError:
                    haystack = []
                reductions[text] = haystack
            if prefix_only:
                return haystack[: len(needle)] == needle
            return _contains(haystack, needle)

        candidates = None
    else:
        raise BiblioError("unknown search mode %r" % mode)

    matches = []
    if candidates is None:
        rows = iter(table)
    else:
        # iter_matching yields ascending; fetch in bounded batches so a
        # small limit never materializes the whole candidate set.
        def _fetch(rowids, chunk=256):
            batch = []
            for rowid in rowids:
                batch.append(rowid)
                if len(batch) >= chunk:
                    for row in table.get_many(batch):
                        yield row
                    batch = []
            for row in table.get_many(batch):
                yield row

        rows = _fetch(candidates)
    for row in rows:
        if matcher(row.get("incipit")):
            matches.append(row.rowid)
            if limit is not None and len(matches) >= limit:
                break
    return matches


def search_by_incipit(index, query_darms, mode="intervals", prefix_only=False):
    """Entries of *index* whose incipit matches *query_darms*.

    *mode* is ``"intervals"`` (transposition-invariant exact intervals)
    or ``"contour"`` (direction only).  With *prefix_only*, the match
    must start the incipit (thematic identification); otherwise any
    position matches (motif search).
    """
    if mode == "intervals":
        needle = incipit_intervals(query_darms)
        reducer = incipit_intervals
    elif mode == "contour":
        needle = list(incipit_contour(query_darms))
        reducer = lambda text: list(incipit_contour(text))
    else:
        raise BiblioError("unknown search mode %r" % mode)
    matches = []
    for entry in index.entries():
        for incipit in index.incipits(entry):
            haystack = reducer(incipit["darms"])
            if prefix_only:
                hit = haystack[: len(needle)] == needle
            else:
                hit = _contains(haystack, needle)
            if hit:
                matches.append((entry, incipit))
                break
    return matches
