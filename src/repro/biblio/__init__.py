"""Bibliographic information (section 4.2).

Thematic indexes: an organization of a composer's works with, per
entry, the thematic incipit plus bibliographic attributes -- setting
(Besetzung), date/place of composition, measure count (Takte),
manuscript copies (Abschriften), printed editions (Ausgaben), and
literature (Literatur).  "BWV 578" names entry 578 of the
Bach-Werke-Verzeichnis.
"""

from repro.biblio.thematic import ThematicIndex, build_biblio_schema
from repro.biblio.incipit import incipit_intervals, incipit_contour, search_by_incipit
from repro.biblio.catalog import format_entry, format_citation

__all__ = [
    "ThematicIndex",
    "build_biblio_schema",
    "incipit_intervals",
    "incipit_contour",
    "search_by_incipit",
    "format_entry",
    "format_citation",
]
