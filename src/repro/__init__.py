"""repro: a Music Data Manager.

A full reproduction of W. Bradley Rubenstein, "A Database Design for
Musical Information" (SIGMOD 1987): the entity-relationship model
extended with hierarchical ordering, a DDL and QUEL with the ordering
operators, the schema-as-data meta-catalog, the CMN score schema, and
the surrounding musical substrates (temporal, pitch, MIDI, sound,
DARMS, piano roll, bibliographic).

Quickstart::

    from repro import MusicDataManager, ScoreBuilder

    mdm = MusicDataManager()
    builder = ScoreBuilder("My piece", cmn=mdm.cmn)
    voice = builder.add_voice("melody")
    builder.note(voice, "C4", (1, 4))
    builder.finish()
    mdm.retrieve("retrieve (total = count(NOTE.degree))")
"""

from repro.core import (
    EntityInstance,
    EntityType,
    HOGraph,
    InstanceGraph,
    MetaCatalog,
    Ordering,
    RelationshipType,
    Schema,
)
from repro.ddl import execute_ddl, parse_ddl
from repro.quel import QuelSession, execute_quel, parse_quel
from repro.mdm import MusicDataManager
from repro.cmn import CmnSchema, ScoreBuilder
from repro.cmn.score import ScoreView
from repro.temporal import Conductor, MeterSignature, TempoMap
from repro.pitch import Clef, KeySignature, Pitch

__version__ = "1.0.0"

__all__ = [
    "Schema",
    "EntityType",
    "EntityInstance",
    "RelationshipType",
    "Ordering",
    "InstanceGraph",
    "HOGraph",
    "MetaCatalog",
    "parse_ddl",
    "execute_ddl",
    "parse_quel",
    "execute_quel",
    "QuelSession",
    "MusicDataManager",
    "CmnSchema",
    "ScoreBuilder",
    "ScoreView",
    "TempoMap",
    "Conductor",
    "MeterSignature",
    "Pitch",
    "Clef",
    "KeySignature",
    "__version__",
]
