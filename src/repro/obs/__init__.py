"""Observability: tracing, metrics, and export.

The MDM's measurement substrate.  Three zero-dependency pieces:

* :mod:`repro.obs.trace` -- hierarchical spans with monotonic timings,
  an injectable clock, ring-buffer retention, and a no-op fast path
  that keeps instrumentation nearly free when no trace sink is
  installed.
* :mod:`repro.obs.metrics` -- a registry of named counters, gauges,
  and fixed-bucket histograms, replacing ad-hoc statistics dicts.
* :mod:`repro.obs.export` -- JSON serialization of both, for
  ``BENCH_*.json`` files and external tooling.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    Span,
    Tracer,
    assert_no_open_spans,
    current_span,
    get_tracer,
    install_tracer,
    open_span_count,
    span,
    uninstall_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "assert_no_open_spans",
    "current_span",
    "get_tracer",
    "install_tracer",
    "open_span_count",
    "span",
    "uninstall_tracer",
]
