"""A metrics registry: named counters, gauges, and histograms.

Replaces the ad-hoc ``statistics()`` dict plumbing: every layer that
wants a counter asks its registry once (``registry.counter("wal.appends")``)
and increments the returned object directly, so the hot path is an
attribute bump under one small lock, with no name lookups.

Histograms use *fixed* bucket boundaries chosen at creation -- the
Prometheus model -- so concurrent observers and exporters never see a
half-resized layout.  The default boundaries suit sub-second latencies
(lock waits, statement times).

Instruments are created on first use and never removed; ``snapshot()``
returns plain data (ints/floats/dicts) safe to serialize or diff.
"""

import threading

#: Default latency boundaries, in seconds (upper-inclusive edges).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value", "_mutex")

    def __init__(self, name):
        self.name = name
        self._value = 0
        self._mutex = threading.Lock()

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counter %r cannot decrease" % self.name)
        with self._mutex:
            self._value += amount

    @property
    def value(self):
        return self._value

    def __repr__(self):
        return "Counter(%r=%d)" % (self.name, self._value)


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("name", "_value", "_mutex")

    def __init__(self, name):
        self.name = name
        self._value = 0
        self._mutex = threading.Lock()

    def set(self, value):
        with self._mutex:
            self._value = value

    def inc(self, amount=1):
        with self._mutex:
            self._value += amount

    def dec(self, amount=1):
        with self._mutex:
            self._value -= amount

    @property
    def value(self):
        return self._value

    def __repr__(self):
        return "Gauge(%r=%r)" % (self.name, self._value)


class Histogram:
    """Observations bucketed by fixed upper boundaries.

    ``counts[i]`` counts observations ``<= buckets[i]``; one implicit
    overflow bucket counts the rest.  ``sum``/``count`` give the mean.
    """

    __slots__ = ("name", "buckets", "_counts", "_sum", "_count", "_mutex")

    def __init__(self, name, buckets=DEFAULT_BUCKETS):
        boundaries = tuple(buckets)
        if not boundaries:
            raise ValueError("histogram %r needs at least one bucket" % name)
        if list(boundaries) != sorted(boundaries):
            raise ValueError("histogram %r buckets must increase" % name)
        self.name = name
        self.buckets = boundaries
        self._counts = [0] * (len(boundaries) + 1)
        self._sum = 0.0
        self._count = 0
        self._mutex = threading.Lock()

    def observe(self, value):
        slot = len(self.buckets)
        for index, boundary in enumerate(self.buckets):
            if value <= boundary:
                slot = index
                break
        with self._mutex:
            self._counts[slot] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self):
        return self._count

    @property
    def sum(self):
        return self._sum

    @property
    def mean(self):
        return self._sum / self._count if self._count else 0.0

    def snapshot(self):
        with self._mutex:
            return {
                "count": self._count,
                "sum": self._sum,
                "buckets": {
                    ("le_%g" % b): c
                    for b, c in zip(self.buckets, self._counts)
                },
                "overflow": self._counts[-1],
            }

    def __repr__(self):
        return "Histogram(%r: n=%d, mean=%.6f)" % (
            self.name, self._count, self.mean
        )


class MetricsRegistry:
    """Named instruments, created on first request.

    Asking twice for the same name returns the same object; asking for
    an existing name as a different instrument kind is an error (it
    would silently fork the metric).
    """

    def __init__(self):
        self._mutex = threading.Lock()
        self._instruments = {}

    def _get(self, name, kind, factory):
        with self._mutex:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        "metric %r already registered as %s"
                        % (name, type(existing).__name__)
                    )
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name):
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name):
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name, buckets=DEFAULT_BUCKETS):
        return self._get(name, Histogram, lambda: Histogram(name, buckets))

    def names(self):
        with self._mutex:
            return sorted(self._instruments)

    def get(self, name):
        """The instrument registered under *name*, or None."""
        return self._instruments.get(name)

    def value(self, name, default=0):
        """A counter/gauge's value by name (0 when absent)."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return default
        if isinstance(instrument, Histogram):
            return instrument.count
        return instrument.value

    def snapshot(self):
        """Plain-data view: name -> int/float (or dict for histograms)."""
        out = {}
        with self._mutex:
            items = list(self._instruments.items())
        for name, instrument in items:
            if isinstance(instrument, Histogram):
                out[name] = instrument.snapshot()
            else:
                out[name] = instrument.value
        return out

    def render(self):
        """Aligned text listing for the shell's ``\\metrics`` command."""
        lines = []
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                lines.append(
                    "%-40s count=%d mean=%.6fs sum=%.6fs"
                    % (name, instrument.count, instrument.mean, instrument.sum)
                )
            else:
                value = instrument.value
                if isinstance(value, float):
                    lines.append("%-40s %.6f" % (name, value))
                else:
                    lines.append("%-40s %s" % (name, value))
        return "\n".join(lines) if lines else "(no metrics recorded)"
