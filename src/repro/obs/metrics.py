"""A metrics registry: named counters, gauges, and histograms.

Replaces the ad-hoc ``statistics()`` dict plumbing: every layer that
wants a counter asks its registry once (``registry.counter("wal.appends")``)
and increments the returned object directly, with no name lookups.

Counter increments and histogram observations are *lock-free on the
write path*: each lands in a ``collections.deque`` (whose ``append``
and ``popleft`` are single C calls, atomic under the GIL) and is folded
into the running total on read -- or inline once the pending queue
reaches a bound, so an instrument nobody reads stays O(1) in memory.
The fold drains with ``popleft`` under the instrument's mutex, so no
concurrent increment is ever lost: counts stay exact, which the
concurrency and stress suites rely on.  Gauges keep a plain mutex --
``set`` is last-write-wins, so reordering through a queue would change
semantics, and no gauge sits on a per-statement hot path.

For a (counter, histogram) pair updated together -- one statement, one
latency -- a :class:`Tally` combines both writes into a single queue
append, and its drain folds in bulk straight into the instruments'
totals (two lock acquisitions per batch).  The per-statement hot path
in ``repro.quel.executor`` uses one for ``quel.statements`` /
``quel.statement_seconds``.

Histograms use *fixed* bucket boundaries chosen at creation -- the
Prometheus model -- so concurrent observers and exporters never see a
half-resized layout.  The default boundaries suit sub-second latencies
(lock waits, statement times).

Instruments are created on first use and never removed; ``snapshot()``
returns plain data (ints/floats/dicts) safe to serialize or diff.
"""

import threading
from bisect import bisect_left
from collections import deque

#: Pending writes tolerated before a writer folds inline.
_PENDING_BOUND = 2048

#: Default latency boundaries, in seconds (upper-inclusive edges).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class Counter:
    """A monotonically increasing count (lock-free increments)."""

    __slots__ = ("name", "_value", "_pending", "_sources", "_mutex")

    def __init__(self, name):
        self.name = name
        self._value = 0
        self._pending = deque()
        self._sources = ()  # Tally queues that feed this instrument
        self._mutex = threading.Lock()

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counter %r cannot decrease" % self.name)
        pending = self._pending
        pending.append(amount)
        if len(pending) >= _PENDING_BOUND:
            self._fold()

    def _fold(self):
        with self._mutex:
            pending = self._pending
            value = self._value
            # Bounded drain: popleft never loses a concurrent append,
            # and appends landing mid-drain wait for the next fold.
            for _ in range(len(pending)):
                value += pending.popleft()
            self._value = value

    @property
    def value(self):
        for source in self._sources:
            source.drain()
        if self._pending:
            self._fold()
        return self._value

    def __repr__(self):
        return "Counter(%r=%d)" % (self.name, self.value)


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("name", "_value", "_mutex")

    def __init__(self, name):
        self.name = name
        self._value = 0
        self._mutex = threading.Lock()

    def set(self, value):
        with self._mutex:
            self._value = value

    def inc(self, amount=1):
        with self._mutex:
            self._value += amount

    def dec(self, amount=1):
        with self._mutex:
            self._value -= amount

    @property
    def value(self):
        return self._value

    def __repr__(self):
        return "Gauge(%r=%r)" % (self.name, self._value)


class Histogram:
    """Observations bucketed by fixed upper boundaries.

    ``counts[i]`` counts observations ``<= buckets[i]``; one implicit
    overflow bucket counts the rest.  ``sum``/``count`` give the mean.
    """

    __slots__ = (
        "name", "buckets", "_counts", "_sum", "_count", "_pending",
        "_sources", "_mutex",
    )

    def __init__(self, name, buckets=DEFAULT_BUCKETS):
        boundaries = tuple(buckets)
        if not boundaries:
            raise ValueError("histogram %r needs at least one bucket" % name)
        if list(boundaries) != sorted(boundaries):
            raise ValueError("histogram %r buckets must increase" % name)
        self.name = name
        self.buckets = boundaries
        self._counts = [0] * (len(boundaries) + 1)
        self._sum = 0.0
        self._count = 0
        self._pending = deque()
        self._sources = ()  # Tally queues that feed this instrument
        self._mutex = threading.Lock()

    def observe(self, value):
        pending = self._pending
        pending.append(value)
        if len(pending) >= _PENDING_BOUND:
            self._fold()

    def _fold(self):
        with self._mutex:
            pending = self._pending
            buckets = self.buckets
            counts = self._counts
            for _ in range(len(pending)):
                value = pending.popleft()
                # bisect_left finds the first boundary >= value, i.e.
                # the upper-inclusive bucket; past-the-end is overflow.
                counts[bisect_left(buckets, value)] += 1
                self._sum += value
                self._count += 1

    @property
    def count(self):
        for source in self._sources:
            source.drain()
        if self._pending:
            self._fold()
        return self._count

    @property
    def sum(self):
        for source in self._sources:
            source.drain()
        if self._pending:
            self._fold()
        return self._sum

    @property
    def mean(self):
        count = self.count
        return self._sum / count if count else 0.0

    def snapshot(self):
        for source in self._sources:
            source.drain()
        if self._pending:
            self._fold()
        with self._mutex:
            return {
                "count": self._count,
                "sum": self._sum,
                "buckets": {
                    ("le_%g" % b): c
                    for b, c in zip(self.buckets, self._counts)
                },
                "overflow": self._counts[-1],
            }

    def quantile(self, q):
        """Approximate *q*-quantile (0..1) from the bucket boundaries.

        Returns the upper boundary of the bucket containing the
        quantile rank (the overflow bucket reports the top boundary),
        0.0 when empty.  Boundary precision is all a fixed-bucket
        histogram can promise; it is what the bench report's p99 wants.
        """
        count = self.count  # drains sources and folds pending
        if not count:
            return 0.0
        rank = q * count
        with self._mutex:
            seen = 0
            for boundary, bucket_count in zip(self.buckets, self._counts):
                seen += bucket_count
                if seen >= rank:
                    return boundary
            return self.buckets[-1]

    def __repr__(self):
        return "Histogram(%r: n=%d, mean=%.6f)" % (
            self.name, self.count, self.mean
        )


class Tally:
    """One lock-free write feeding a Counter and a Histogram together.

    The per-statement hot path pays a *single* deque append for the
    (count, latency) pair instead of one write per instrument.  Reads
    of either backing instrument drain the shared queue first (each
    popleft moves one observation into both instruments' own lock-free
    write paths), so totals stay exact and the counter always equals
    the histogram's count for values routed through the tally.
    """

    __slots__ = ("counter", "histogram", "_pending")

    def __init__(self, counter, histogram):
        self.counter = counter
        self.histogram = histogram
        self._pending = deque()
        counter._sources += (self,)
        histogram._sources += (self,)

    def observe(self, value):
        pending = self._pending
        pending.append(value)
        if len(pending) >= _PENDING_BOUND:
            self.drain()

    def drain(self):
        pending = self._pending
        drained = []
        # Bounded drain: popleft never loses a concurrent append, and
        # appends landing mid-drain wait for the next drain.
        for _ in range(len(pending)):
            drained.append(pending.popleft())
        if not drained:
            return
        # Fold in bulk straight into the instruments' totals: two lock
        # acquisitions per batch instead of two queue writes per value.
        counter = self.counter
        with counter._mutex:
            counter._value += len(drained)
        histogram = self.histogram
        with histogram._mutex:
            counts = histogram._counts
            buckets = histogram.buckets
            total = 0.0
            for value in drained:
                counts[bisect_left(buckets, value)] += 1
                total += value
            histogram._sum += total
            histogram._count += len(drained)

    def __repr__(self):
        return "Tally(%r, %r)" % (self.counter.name, self.histogram.name)


class MetricsRegistry:
    """Named instruments, created on first request.

    Asking twice for the same name returns the same object; asking for
    an existing name as a different instrument kind is an error (it
    would silently fork the metric).
    """

    def __init__(self):
        self._mutex = threading.Lock()
        self._instruments = {}
        self._tallies = {}

    def _get(self, name, kind, factory):
        with self._mutex:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        "metric %r already registered as %s"
                        % (name, type(existing).__name__)
                    )
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name):
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name):
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name, buckets=DEFAULT_BUCKETS):
        return self._get(name, Histogram, lambda: Histogram(name, buckets))

    def tally(self, counter_name, histogram_name):
        """A write-combining :class:`Tally` over the named pair.

        ``tally.observe(seconds)`` counts one event on *counter_name*
        and records its latency on *histogram_name* with a single
        queue write; asking again for the same pair returns the same
        object.
        """
        counter = self.counter(counter_name)
        histogram = self.histogram(histogram_name)
        key = (counter_name, histogram_name)
        with self._mutex:
            existing = self._tallies.get(key)
            if existing is None:
                existing = self._tallies[key] = Tally(counter, histogram)
            return existing

    def names(self):
        with self._mutex:
            return sorted(self._instruments)

    def get(self, name):
        """The instrument registered under *name*, or None."""
        return self._instruments.get(name)

    def value(self, name, default=0):
        """A counter/gauge's value by name (0 when absent)."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return default
        if isinstance(instrument, Histogram):
            return instrument.count
        return instrument.value

    def snapshot(self):
        """Plain-data view: name -> int/float (or dict for histograms)."""
        out = {}
        with self._mutex:
            items = list(self._instruments.items())
        for name, instrument in items:
            if isinstance(instrument, Histogram):
                out[name] = instrument.snapshot()
            else:
                out[name] = instrument.value
        return out

    def render(self):
        """Aligned text listing for the shell's ``\\metrics`` command."""
        lines = []
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                lines.append(
                    "%-40s count=%d mean=%.6fs sum=%.6fs"
                    % (name, instrument.count, instrument.mean, instrument.sum)
                )
            else:
                value = instrument.value
                if isinstance(value, float):
                    lines.append("%-40s %.6f" % (name, value))
                else:
                    lines.append("%-40s %s" % (name, value))
        return "\n".join(lines) if lines else "(no metrics recorded)"
