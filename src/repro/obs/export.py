"""JSON export of traces and metrics.

Spans serialize to nested dicts (relative timings, attributes,
children); registries serialize to their ``snapshot()``.  Both shapes
are stable plain data, used by ``scripts/bench_report.py`` for the
``BENCH_*.json`` files and available to external tooling.
"""

import json


def span_to_dict(span):
    """One span (and its subtree) as plain data.

    Times are reported relative to the span's own start so exports are
    comparable across runs regardless of the monotonic clock's origin.
    """
    duration = span.duration
    return {
        "name": span.name,
        "duration_s": duration,
        "attrs": dict(span.attrs),
        "children": [
            _child_to_dict(child, span.start) for child in span.children
        ],
    }


def _child_to_dict(span, origin):
    out = span_to_dict(span)
    out["offset_s"] = None if span.start is None else span.start - origin
    return out


def tracer_to_dict(tracer):
    """Every retained root span of *tracer*, oldest first."""
    return {
        "capacity": tracer.capacity,
        "dropped": tracer.dropped,
        "traces": [span_to_dict(root) for root in tracer.finished_roots()],
    }


def metrics_to_dict(registry):
    return registry.snapshot()


def traces_to_json(tracer, indent=2):
    return json.dumps(tracer_to_dict(tracer), indent=indent, sort_keys=True)


def metrics_to_json(registry, indent=2):
    return json.dumps(metrics_to_dict(registry), indent=indent, sort_keys=True)


def write_json(path, obj, indent=2):
    """Write *obj* as JSON to *path* (small helper for scripts)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(obj, handle, indent=indent, sort_keys=True)
        handle.write("\n")
