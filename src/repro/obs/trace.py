"""Hierarchical query tracing with a near-free disabled path.

A :class:`Tracer` records trees of :class:`Span` objects -- one span
per interesting operation (statement, parse, plan, scan, service
retry).  Spans carry monotonic start/end times from an injectable
clock, a flat attribute dict, and their children; finished *root* spans
land in a bounded ring buffer so a long-lived process keeps only the
most recent traces.

Instrumented code never talks to a Tracer directly.  It calls the
module-level :func:`span` / :func:`current_span` helpers, which consult
the process-wide installed tracer.  When no tracer is installed (the
default -- "no trace sink attached"), both return a shared no-op
object, so the entire cost of instrumentation is one global load and
an ``is None`` test.  The benchmark guard in
``benchmarks/test_bench_obs.py`` holds this path under 3% of statement
latency.

Leak guard: every started span increments a global open-span counter;
finishing decrements it.  :func:`assert_no_open_spans` (called by the
test suite's session teardown) fails loudly when instrumentation
forgot to close a span, and an ``atexit`` hook prints a warning for
non-pytest processes.
"""

import atexit
import threading
import time

#: Global count of started-but-unfinished spans, across every tracer.
_open_spans = 0
_open_lock = threading.Lock()


def _span_opened():
    global _open_spans
    with _open_lock:
        _open_spans += 1


def _span_closed():
    global _open_spans
    with _open_lock:
        _open_spans -= 1


def open_span_count():
    """How many spans are currently open process-wide."""
    return _open_spans


def assert_no_open_spans():
    """Raise AssertionError if any span was left unclosed (leak guard)."""
    if _open_spans != 0:
        raise AssertionError(
            "span leak: %d span(s) left open at shutdown -- every span() "
            "must be used as a context manager or finished explicitly"
            % _open_spans
        )


@atexit.register
def _warn_on_leak():  # pragma: no cover - exercised only on broken exits
    if _open_spans != 0:
        import sys

        sys.stderr.write(
            "WARNING: %d trace span(s) left open at process exit\n"
            % _open_spans
        )


class Span:
    """One timed operation; may nest children.

    Use as a context manager (entering is a no-op: the span starts at
    construction, exiting finishes it), or call :meth:`finish`
    directly.  Attributes are set with :meth:`record` and accumulated
    with :meth:`add`; both are safe to call after finishing (late
    attribute attachment from instrumentation hooks).
    """

    __slots__ = (
        "name", "attrs", "start", "end", "children", "_tracer", "_parent"
    )

    def __init__(self, name, tracer, parent, start, attrs=None):
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.start = start
        self.end = None
        self.children = []
        self._tracer = tracer
        self._parent = parent
        _span_opened()

    @property
    def finished(self):
        return self.end is not None

    @property
    def duration(self):
        """Elapsed seconds, or None while the span is open."""
        if self.end is None:
            return None
        return self.end - self.start

    def record(self, key, value):
        """Set attribute *key* to *value*."""
        self.attrs[key] = value
        return self

    def add(self, key, delta):
        """Accumulate numeric attribute *key* by *delta*."""
        self.attrs[key] = self.attrs.get(key, 0) + delta
        return self

    def finish(self):
        if self.end is not None:
            return self
        self.end = self._tracer._clock()
        _span_closed()
        self._tracer._finished(self)
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.finish()
        return False

    def __repr__(self):
        state = "%.6fs" % self.duration if self.finished else "open"
        return "Span(%r, %s, %d child(ren))" % (
            self.name, state, len(self.children)
        )


class _NoopSpan:
    """The shared do-nothing span returned when tracing is off."""

    __slots__ = ()

    name = None
    attrs = {}
    children = ()
    start = end = duration = None
    finished = True

    def record(self, key, value):
        return self

    def add(self, key, delta):
        return self

    def finish(self):
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def __bool__(self):
        # `if span:` distinguishes a live span from the no-op.
        return False


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects span trees; keeps the last *capacity* finished roots.

    *clock* is any zero-argument callable returning monotonically
    increasing seconds (``time.monotonic`` by default; tests inject a
    fake).  The per-thread span stack makes :func:`current_span` and
    parentage correct under concurrent sessions.
    """

    def __init__(self, clock=time.monotonic, capacity=256):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self._clock = clock
        self.capacity = capacity
        self._mutex = threading.Lock()
        self._roots = []  # ring buffer of finished root spans
        self._local = threading.local()
        self.dropped = 0  # finished roots evicted by the ring buffer

    # -- span lifecycle -------------------------------------------------------

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name, **attrs):
        """Start a child of the current span (or a new root)."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        child = Span(name, self, parent, self._clock(), attrs)
        if parent is not None:
            parent.children.append(child)
        stack.append(child)
        return child

    def current_span(self):
        """The innermost open span on this thread, or the no-op span."""
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1]
        return NOOP_SPAN

    def _finished(self, span_obj):
        stack = self._stack()
        # Out-of-order finishes (error paths) pop everything above too.
        while stack and stack[-1] is not span_obj:
            stack.pop().finish()
        if stack:
            stack.pop()
        if span_obj._parent is None:
            with self._mutex:
                self._roots.append(span_obj)
                if len(self._roots) > self.capacity:
                    del self._roots[0]
                    self.dropped += 1

    # -- retention / inspection -----------------------------------------------

    def finished_roots(self):
        """The retained finished root spans, oldest first."""
        with self._mutex:
            return list(self._roots)

    def last_root(self):
        with self._mutex:
            return self._roots[-1] if self._roots else None

    def clear(self):
        with self._mutex:
            self._roots = []
            self.dropped = 0


# -- process-wide tracer installation -----------------------------------------

_installed = None


def install_tracer(tracer=None):
    """Install *tracer* (or a fresh one) as the process trace sink."""
    global _installed
    if tracer is None:
        tracer = Tracer()
    _installed = tracer
    return tracer


def uninstall_tracer():
    """Remove the installed tracer; instrumentation reverts to no-ops."""
    global _installed
    _installed = None


def get_tracer():
    """The installed tracer, or None when tracing is off."""
    return _installed


def tracing_active():
    """True when a tracer is installed.

    Hot paths hoist this check so that with tracing off they skip the
    ``span()`` calls (and their keyword-dict construction and attribute
    records) entirely, substituting the shared :data:`NOOP_SPAN`.
    """
    return _installed is not None


def span(name, **attrs):
    """Start a span on the installed tracer, or return the no-op span.

    This is the only call instrumented code makes on its hot path; the
    disabled cost is one global load, one comparison, one return.
    """
    tracer = _installed
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def current_span():
    """The innermost open span on this thread, or the no-op span."""
    tracer = _installed
    if tracer is None:
        return NOOP_SPAN
    return tracer.current_span()
