"""Query planning: conjunct extraction, candidate generation, and
variable ordering for the backtracking join.

The "planner" is deliberately simple -- this is a design-paper
reproduction, not a query-optimization paper -- but it does implement
the section 5.2 observation: an equality restriction on an indexed
attribute is answered from the index instead of a heap scan.
"""

from repro.quel import ast


def split_conjuncts(qualification):
    """Flatten top-level ``and`` nodes into a conjunct list."""
    if qualification is None:
        return []
    if isinstance(qualification, ast.And):
        return split_conjuncts(qualification.left) + split_conjuncts(
            qualification.right
        )
    return [qualification]


def variables_in(node):
    """The set of range-variable names an AST node references."""
    if node is None:
        return set()
    if isinstance(node, ast.VariableRef):
        return {node.variable}
    if isinstance(node, ast.AttributeRef):
        return {node.variable}
    if isinstance(node, ast.Literal):
        return set()
    if isinstance(node, ast.BinaryOp):
        return variables_in(node.left) | variables_in(node.right)
    if isinstance(node, ast.FunctionCall):
        out = set()
        for argument in node.arguments:
            out |= variables_in(argument)
        return out
    if isinstance(node, ast.Comparison):
        return variables_in(node.left) | variables_in(node.right)
    if isinstance(node, ast.IsClause):
        return variables_in(node.left) | variables_in(node.right)
    if isinstance(node, ast.OrderClause):
        return variables_in(node.left) | variables_in(node.right)
    if isinstance(node, ast.UnderClause):
        return variables_in(node.child) | variables_in(node.parent)
    if isinstance(node, ast.MatchClause):
        return {node.variable}
    if isinstance(node, (ast.And, ast.Or)):
        return variables_in(node.left) | variables_in(node.right)
    if isinstance(node, ast.Not):
        return variables_in(node.operand)
    if isinstance(node, ast.Target):
        return variables_in(node.expression)
    return set()


def equality_restriction(conjunct, variable):
    """If *conjunct* is ``variable.attr = literal`` (either side),
    return ``(attr, value)``; else None.

    These restrictions are pushed into index lookups when generating a
    variable's candidate set.
    """
    if not isinstance(conjunct, ast.Comparison) or conjunct.operator != "=":
        return None
    left, right = conjunct.left, conjunct.right
    if isinstance(right, ast.AttributeRef) and isinstance(left, ast.Literal):
        left, right = right, left
    if (
        isinstance(left, ast.AttributeRef)
        and left.variable == variable
        and isinstance(right, ast.Literal)
    ):
        return (left.attribute, right.value)
    return None


def text_restriction(conjunct, variable):
    """If *conjunct* is a text gate over *variable*, return
    ``(attribute, operator, query, threshold)``; else None.

    These are pushed into trigram-index candidate retrieval ("index
    text" access).  Unlike equality restrictions they are *never*
    marked as consumed: index candidates are a superset, and the exact
    predicate re-verifies every materialized row.
    """
    if isinstance(conjunct, ast.MatchClause) and conjunct.variable == variable:
        return (
            conjunct.attribute, conjunct.operator,
            conjunct.query, conjunct.threshold,
        )
    return None


def order_variables(variables, candidate_counts, conjuncts):
    """Choose a binding order: smallest candidate sets first, breaking
    ties toward variables connected to already-ordered ones (so join
    predicates apply as early as possible)."""
    remaining = set(variables)
    ordered = []
    bound = set()
    while remaining:
        def connectivity(variable):
            score = 0
            for conjunct in conjuncts:
                used = variables_in(conjunct)
                if variable in used and (used - {variable}) & bound:
                    score += 1
            return score

        best = min(
            sorted(remaining),
            key=lambda v: (-connectivity(v), candidate_counts.get(v, 0), v),
        )
        ordered.append(best)
        remaining.discard(best)
        bound.add(best)
    return ordered


class PlanStep:
    """One binding step of a query plan: bind *variable* using *access*
    ("index", "index text", "index text topk", "index text stream",
    "filtered scan", "scan", or "order range" -- "index text" when a
    trigram index pruned the candidates, "index text topk" when a
    ranked ``limit N`` retrieve additionally streams gate candidates
    best-overlap-first and stops fetching once the Nth score beats the
    remaining upper bound, "index text stream" when an unsorted ``limit
    N`` retrieve consumes the posting intersection lazily and stops
    after N verified rows (*candidates* is then the posting-length
    estimate, not an exact count), "order range" when an order-operator
    conjunct enumerates the variable by (parent, order_key) index range
    scan) over *candidates* rows."""

    __slots__ = ("variable", "access", "candidates")

    def __init__(self, variable, access, candidates):
        self.variable = variable
        self.access = access
        self.candidates = candidates

    def describe(self):
        return "bind %s via %s (%d candidates)" % (
            self.variable, self.access, self.candidates
        )

    def __repr__(self):
        return "PlanStep(%s)" % self.describe()


class QueryPlan:
    """The chosen plan for one statement: an ordered list of PlanSteps.

    ``render()`` produces the legacy ``last_plan`` text (memoized -- the
    executor builds a QueryPlan per statement but the string only when
    someone reads it); ``rows()`` produces the result-set shape the
    ``explain`` statement returns; ``label`` is the compact access-path
    summary the planner test sweep asserts on.
    """

    __slots__ = ("steps", "_text")

    def __init__(self, steps):
        self.steps = list(steps)
        self._text = None

    @property
    def label(self):
        """Access paths in binding order, e.g. ``index+scan``
        (``constant`` for a plan with no range variables)."""
        if not self.steps:
            return "constant"
        return "+".join(step.access for step in self.steps)

    def render(self):
        if self._text is None:
            lines = ["plan:"]
            for step in self.steps:
                lines.append("  " + step.describe())
            self._text = "\n".join(lines)
        return self._text

    def rows(self):
        """The plan as a list of single-column result dicts."""
        if not self.steps:
            return [{"plan": "constant (no range variables)"}]
        return [{"plan": step.describe()} for step in self.steps]

    def __repr__(self):
        return "QueryPlan(%s)" % self.label


def build_plan(binding_order, candidate_counts, accesses):
    """Assemble a QueryPlan from the executor's planning artifacts.

    *accesses* maps each variable to the access path its candidate set
    was generated with; a plain set of index-backed variables is also
    accepted for compatibility.
    """
    steps = []
    for variable in binding_order:
        if isinstance(accesses, dict):
            access = accesses.get(variable, "scan")
        else:
            access = "index" if variable in accesses else "scan"
        steps.append(PlanStep(variable, access, candidate_counts.get(variable, 0)))
    return QueryPlan(steps)


def explain(statement, binding_order, candidate_counts, accesses):
    """A human-readable plan summary (used by tests and the MDM shell)."""
    return build_plan(binding_order, candidate_counts, accesses).render()
