"""QUEL with the paper's ordering extensions (section 5.6).

Supported statements::

    range of n1, n2 is NOTE
    retrieve [unique] (n1.name, total = count(n1.name)) [where qual] [sort by expr]
    append to NOTE (name = 1, pitch = "g")
    replace n1 (pitch = "a") where n1.name = 4
    delete n1 where n1.name = 4

Qualifications combine comparisons with ``and``/``or``/``not`` and the
four entity operators, which take range variables as operands::

    COMPOSER.composition is COMPOSITION
    n1 before n2 in note_in_chord
    n1 after n2
    n1 under c1 in note_in_chord

``in order_name`` may be omitted when the operand types determine the
ordering uniquely.  Use :class:`QuelSession` for the stateful ``range
of`` workflow, or :func:`execute_quel` for one-shot programs.
"""

from repro.quel.parser import parse_quel
from repro.quel.executor import QuelSession, execute_quel

__all__ = ["parse_quel", "QuelSession", "execute_quel"]
