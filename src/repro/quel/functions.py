"""Scalar and aggregate functions for QUEL expressions.

The built-in set covers the INGRES standards; following [Han84] (which
the paper draws on for user-defined aggregates over abstract data
types), sessions can register additional scalar and aggregate functions
at run time.
"""

from repro.errors import QueryError


def _numeric(values):
    out = []
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            from fractions import Fraction

            if not isinstance(value, Fraction):
                raise QueryError("aggregate over non-numeric value %r" % (value,))
        out.append(value)
    return out


def agg_count(values):
    return sum(1 for v in values if v is not None)


def agg_sum(values):
    numbers = _numeric(values)
    return sum(numbers) if numbers else 0


def agg_avg(values):
    numbers = _numeric(values)
    if not numbers:
        return None
    return sum(numbers) / len(numbers)


def agg_min(values):
    candidates = [v for v in values if v is not None]
    return min(candidates) if candidates else None


def agg_max(values):
    candidates = [v for v in values if v is not None]
    return max(candidates) if candidates else None


def agg_any(values):
    """INGRES's ``any``: 1 if any qualifying value exists, else 0."""
    return 1 if any(v is not None for v in values) else 0


AGGREGATES = {
    "count": agg_count,
    "sum": agg_sum,
    "avg": agg_avg,
    "min": agg_min,
    "max": agg_max,
    "any": agg_any,
}


def scalar_abs(value):
    return None if value is None else abs(value)


def scalar_length(value):
    if value is None:
        return None
    if not isinstance(value, str):
        raise QueryError("length() expects a string, got %r" % (value,))
    return len(value)


def scalar_lower(value):
    return None if value is None else value.lower()


def scalar_upper(value):
    return None if value is None else value.upper()


def scalar_mod(left, right):
    if left is None or right is None:
        return None
    return left % right


def scalar_similarity(left, right):
    """Blended match confidence in [0, 1] (see repro.text.similarity).

    The ranking companion to the ``similar_to`` gate: the gate prunes
    via the index-boundable trigram Jaccard; this scalar scores the
    survivors with the richer trigram + edit-distance + token-sort
    blend for ``sort by`` ordering.
    """
    from repro.text import similarity

    if left is None or right is None:
        return 0.0
    if not isinstance(left, str) or not isinstance(right, str):
        raise QueryError("similarity() expects strings")
    return similarity(left, right)


SCALARS = {
    "abs": scalar_abs,
    "length": scalar_length,
    "lowercase": scalar_lower,
    "uppercase": scalar_upper,
    "mod": scalar_mod,
    "similarity": scalar_similarity,
}


class FunctionRegistry:
    """Per-session registry of scalar and aggregate functions."""

    def __init__(self):
        self.scalars = dict(SCALARS)
        self.aggregates = dict(AGGREGATES)
        # Bumped on registration; part of the compiled-plan cache key,
        # since whether a call is an aggregate is decided at compile time.
        self.version = 0

    def register_scalar(self, name, function):
        self.scalars[name.lower()] = function
        self.version += 1

    def register_aggregate(self, name, function):
        """Register a user-defined aggregate: function(list of values)."""
        self.aggregates[name.lower()] = function
        self.version += 1

    def is_aggregate(self, name):
        return name.lower() in self.aggregates

    def scalar(self, name):
        try:
            return self.scalars[name.lower()]
        except KeyError:
            raise QueryError("unknown function %r" % name)

    def aggregate(self, name):
        try:
            return self.aggregates[name.lower()]
        except KeyError:
            raise QueryError("unknown aggregate %r" % name)
