"""Compilation of QUEL statements to Python closures.

The interpreter in :mod:`repro.quel.executor` re-walks the qualification
AST for every candidate binding.  This module lowers a statement once
into a :class:`CompiledStatement`: every expression and conjunct becomes
a closure of signature ``fn(rt, bindings)`` (*rt* is the executing
:class:`~repro.quel.executor.QuelSession`), constant subexpressions are
folded at compile time, equality restrictions and order-operator
pushdown opportunities are annotated, and retrieve targets / mutation
assignments are pre-split and pre-compiled.

Compiled artifacts are session-independent: closures reach all runtime
state (schema, function registry, orderings) through *rt*, so a plan
compiled by one session can be executed by any session whose range
bindings match -- which is exactly what the per-database plan cache in
:mod:`repro.quel.cache` keys on, together with the structural
:func:`fingerprint` and the database schema epoch.
"""

import operator as _operator

from repro.core.entity import EntityInstance
from repro.errors import QueryError
from repro.quel import ast
from repro.quel import planner

_COMPARISONS = {
    "=": _operator.eq,
    "!=": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}


# -- structural fingerprinting ---------------------------------------------------


def fingerprint(node):
    """A structural key for an AST node: equal source shapes (including
    literal values and their types) produce equal fingerprints."""
    parts = []
    _fingerprint(node, parts.append)
    return "".join(parts)


def _fingerprint(node, emit):
    if node is None:
        emit("~")
        return
    if isinstance(node, ast.Literal):
        emit("L<%s:%r>" % (type(node.value).__name__, node.value))
        return
    if isinstance(node, ast.AttributeRef):
        emit("A<%s.%s>" % (node.variable, node.attribute))
        return
    if isinstance(node, ast.VariableRef):
        emit("V<%s>" % node.variable)
        return
    if isinstance(node, ast.BinaryOp):
        emit("B<%s>(" % node.operator)
        _fingerprint(node.left, emit)
        _fingerprint(node.right, emit)
        emit(")")
        return
    if isinstance(node, ast.FunctionCall):
        emit("F<%s>(" % node.name)
        for argument in node.arguments:
            _fingerprint(argument, emit)
        emit(")")
        return
    if isinstance(node, ast.Comparison):
        emit("C<%s>(" % node.operator)
        _fingerprint(node.left, emit)
        _fingerprint(node.right, emit)
        emit(")")
        return
    if isinstance(node, ast.IsClause):
        emit("Is(")
        _fingerprint(node.left, emit)
        _fingerprint(node.right, emit)
        emit(")")
        return
    if isinstance(node, ast.OrderClause):
        emit("O<%s:%s>(" % (node.operator, node.order_name))
        _fingerprint(node.left, emit)
        _fingerprint(node.right, emit)
        emit(")")
        return
    if isinstance(node, ast.UnderClause):
        emit("U<%s>(" % (node.order_name,))
        _fingerprint(node.child, emit)
        _fingerprint(node.parent, emit)
        emit(")")
        return
    if isinstance(node, ast.MatchClause):
        emit("M<%s:%s.%s:%r:%r>" % (
            node.operator, node.variable, node.attribute,
            node.query, node.threshold,
        ))
        return
    if isinstance(node, ast.And):
        emit("&(")
        _fingerprint(node.left, emit)
        _fingerprint(node.right, emit)
        emit(")")
        return
    if isinstance(node, ast.Or):
        emit("|(")
        _fingerprint(node.left, emit)
        _fingerprint(node.right, emit)
        emit(")")
        return
    if isinstance(node, ast.Not):
        emit("!(")
        _fingerprint(node.operand, emit)
        emit(")")
        return
    if isinstance(node, ast.Target):
        emit("T<%s>(" % node.name)
        _fingerprint(node.expression, emit)
        emit(")")
        return
    raise QueryError("cannot fingerprint %r" % (node,))


def statement_fingerprint(statement):
    """A structural key for a whole (cacheable) statement."""
    parts = []
    emit = parts.append
    if isinstance(statement, ast.RetrieveStatement):
        emit(
            "retrieve<u=%d,d=%d,l=%s>("
            % (statement.unique, statement.descending, statement.limit)
        )
        for target in statement.targets:
            _fingerprint(target, emit)
        emit(";")
        _fingerprint(statement.where, emit)
        emit(";")
        _fingerprint(statement.sort_by, emit)
        emit(")")
    elif isinstance(statement, ast.AppendStatement):
        emit("append<%s>(" % statement.entity_type)
        for name, expression in statement.assignments:
            emit("%s=" % name)
            _fingerprint(expression, emit)
        emit(";")
        _fingerprint(statement.where, emit)
        emit(")")
    elif isinstance(statement, ast.ReplaceStatement):
        emit("replace<%s>(" % statement.variable)
        for name, expression in statement.assignments:
            emit("%s=" % name)
            _fingerprint(expression, emit)
        emit(";")
        _fingerprint(statement.where, emit)
        emit(")")
    elif isinstance(statement, ast.DeleteStatement):
        emit("delete<%s>(" % statement.variable)
        _fingerprint(statement.where, emit)
        emit(")")
    else:
        raise QueryError("cannot fingerprint statement %r" % (statement,))
    return "".join(parts)


# -- compiled artifacts ----------------------------------------------------------


class CompiledConjunct:
    """One top-level conjunct: its AST node, referenced variables, and a
    compiled truth closure ``truth(rt, bindings) -> bool``."""

    __slots__ = ("node", "variables", "truth")

    def __init__(self, node, variables, truth):
        self.node = node
        self.variables = variables
        self.truth = truth


class PushdownOption:
    """One way to answer an order-operator conjunct by index range scan:
    with *driver_var* bound, enumerate *enum_var* from the ordering's
    ``(parent, order_key)`` index.  *mode* is the enumerated side's
    relation to the driver: ``under`` (children of the driver), or
    ``before`` / ``after`` (siblings strictly before/after it)."""

    __slots__ = ("conjunct_index", "enum_var", "driver_var", "mode", "order_name")

    def __init__(self, conjunct_index, enum_var, driver_var, mode, order_name):
        self.conjunct_index = conjunct_index
        self.enum_var = enum_var
        self.driver_var = driver_var
        self.mode = mode
        self.order_name = order_name


class CompiledAggregate:
    """An aggregate retrieve target.  *arg_fn* is None when the call has
    the wrong arity; the executor then raises only if a row exists,
    matching the interpreter's lazy arity check."""

    __slots__ = ("name", "function_name", "arg_fn")

    def __init__(self, name, function_name, arg_fn):
        self.name = name
        self.function_name = function_name
        self.arg_fn = arg_fn


class CompiledStatement:
    """Everything the executor needs to run one statement without
    touching its AST again (except through prebuilt closures)."""

    __slots__ = (
        "statement", "kind", "used", "conjuncts", "restrictions",
        "restriction_conjuncts", "text_restrictions", "pushdown_options",
        "targets", "aggregates", "sort_fn", "assignments",
    )

    def __init__(self, statement, kind, used, conjuncts, restrictions,
                 restriction_conjuncts, pushdown_options, targets=None,
                 aggregates=None, sort_fn=None, assignments=None,
                 text_restrictions=None):
        self.statement = statement
        self.kind = kind
        self.used = used
        self.conjuncts = conjuncts
        self.restrictions = restrictions
        self.restriction_conjuncts = restriction_conjuncts
        # variable -> [(attribute, operator, query, threshold), ...]
        # for matches/similar_to gates.  Never added to any skip set:
        # trigram candidates are a superset, so the gate's conjunct
        # still re-verifies every materialized row.
        self.text_restrictions = text_restrictions or {}
        self.pushdown_options = pushdown_options
        self.targets = targets
        self.aggregates = aggregates
        self.sort_fn = sort_fn
        self.assignments = assignments


# -- the compiler ----------------------------------------------------------------


def _apply_binary(op, left, right):
    """The interpreter's arithmetic semantics, applied to two values."""
    if left is None or right is None:
        return None
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise QueryError("division by zero")
        if isinstance(left, int) and isinstance(right, int) and left % right == 0:
            return left // right
        return left / right
    if op == "%":
        if right == 0:
            raise QueryError("modulo by zero")
        return left % right
    raise QueryError("unknown operator %r" % op)


class Compiler:
    """Compiles one statement against a session's compile-time context
    (range-variable bindings, function registry, known orderings)."""

    def __init__(self, session):
        self.session = session

    # -- value expressions -------------------------------------------------------

    def expression(self, node):
        """Public entry: compile *node* to ``fn(rt, bindings) -> value``."""
        fn, _, _ = self._expression(node)
        return fn

    def _expression(self, node):
        """Compile to ``(fn, is_constant, constant_value)``."""
        if isinstance(node, ast.Literal):
            value = node.value
            return (lambda rt, bindings: value), True, value
        if isinstance(node, ast.AttributeRef):
            variable, attribute = node.variable, node.attribute

            def attr_fn(rt, bindings):
                bound = bindings.get(variable)
                if bound is None:
                    raise QueryError("unbound range variable %r" % variable)
                return bound[attribute]

            return attr_fn, False, None
        if isinstance(node, ast.VariableRef):
            variable = node.variable

            def var_fn(rt, bindings):
                bound = bindings.get(variable)
                if bound is None:
                    raise QueryError("unbound range variable %r" % variable)
                if isinstance(bound, EntityInstance):
                    return bound.surrogate
                raise QueryError(
                    "relationship variable %r used as a value" % variable
                )

            return var_fn, False, None
        if isinstance(node, ast.BinaryOp):
            return self._binary_op(node)
        if isinstance(node, ast.FunctionCall):
            return self._function_call(node), False, None
        raise QueryError("cannot evaluate %r" % (node,))

    def _binary_op(self, node):
        op = node.operator
        left_fn, left_const, left_value = self._expression(node.left)
        right_fn, right_const, right_value = self._expression(node.right)
        if left_const and right_const:
            # Constant folding.  A folding error (division by zero) must
            # surface at evaluation time, not compile time, so explain
            # and empty joins keep the interpreter's behavior.
            try:
                value = _apply_binary(op, left_value, right_value)
            except QueryError as error:
                message = str(error)

                def raising(rt, bindings, _message=message):
                    raise QueryError(_message)

                return raising, False, None
            return (lambda rt, bindings: value), True, value

        def binary_fn(rt, bindings):
            return _apply_binary(op, left_fn(rt, bindings), right_fn(rt, bindings))

        return binary_fn, False, None

    def _function_call(self, node):
        if node.name == "ordinal":
            return self._ordinal(node)
        folded = self._folded_similarity(node)
        if folded is not None:
            return folded
        name = node.name
        argument_fns = [self.expression(a) for a in node.arguments]

        def call_fn(rt, bindings):
            function = rt.functions.scalar(name)
            return function(*[fn(rt, bindings) for fn in argument_fns])

        return call_fn

    def _folded_similarity(self, node):
        """Constant-fold ``similarity(expr, "literal")`` to a prebuilt
        :class:`~repro.text.similarity.SimilarityScorer` call.

        The scorer derives the query's normalized form, trigram set,
        and token-sorted form once at compile time instead of per row —
        the difference between a ranked retrieve that scores 10 rows
        and one that re-folds its query string 120k times.  Only safe
        while the session resolves ``similarity`` to the builtin; a
        re-registered function bumps the registry version, which is
        part of the plan-cache key, so a stale fold can never be
        replayed against an overriding registry.
        """
        from repro.quel.functions import scalar_similarity
        from repro.text import SimilarityScorer

        if node.name != "similarity" or len(node.arguments) != 2:
            return None
        literal = node.arguments[1]
        if not isinstance(literal, ast.Literal) or not isinstance(
            literal.value, str
        ):
            return None
        try:
            builtin = self.session.functions.scalar("similarity")
        except QueryError:
            return None
        if builtin is not scalar_similarity:
            return None
        value_fn = self.expression(node.arguments[0])
        scorer = SimilarityScorer(literal.value)

        def scorer_fn(rt, bindings):
            value = value_fn(rt, bindings)
            if value is None:
                return 0.0
            if not isinstance(value, str):
                raise QueryError("similarity() expects strings")
            return scorer(value)

        return scorer_fn

    def _ordinal(self, node):
        if not 1 <= len(node.arguments) <= 2:
            raise QueryError("ordinal() takes a range variable and an "
                             "optional ordering name")
        operand_fn = self.entity_operand(node.arguments[0])
        order_name = None
        if len(node.arguments) == 2:
            name_node = node.arguments[1]
            if not isinstance(name_node, ast.Literal) or not isinstance(
                name_node.value, str
            ):
                raise QueryError("ordinal()'s second argument is an "
                                 "ordering name string")
            order_name = name_node.value

        def ordinal_fn(rt, bindings):
            instance = operand_fn(rt, bindings)
            if instance is None:
                return None
            if order_name is not None:
                ordering = rt.schema.ordering(order_name)
            else:
                ordering = rt._resolve_ordering(None, [instance])
            return ordering.position_of(instance)

        return ordinal_fn

    # -- entity operands ---------------------------------------------------------

    def entity_operand(self, node):
        """Compile an entity operand to ``fn(rt, bindings) -> instance``."""
        if isinstance(node, ast.VariableRef):
            variable = node.variable

            def var_operand(rt, bindings):
                bound = bindings.get(variable)
                if isinstance(bound, EntityInstance):
                    return bound
                raise QueryError(
                    "%r is not an entity range variable" % variable
                )

            return var_operand
        if isinstance(node, ast.AttributeRef):
            value_fn = self.expression(node)
            variable, attribute = node.variable, node.attribute

            def attr_operand(rt, bindings):
                value = value_fn(rt, bindings)
                if value is None:
                    return None
                if isinstance(value, int):
                    return rt.schema.instance(value)
                raise QueryError(
                    "%s.%s is not an entity reference" % (variable, attribute)
                )

            return attr_operand
        raise QueryError("bad entity operand %r" % (node,))

    # -- qualifications ----------------------------------------------------------

    def truth(self, node):
        """Compile a qualification to ``fn(rt, bindings) -> bool``."""
        if isinstance(node, ast.And):
            left, right = self.truth(node.left), self.truth(node.right)
            return lambda rt, bindings: (
                left(rt, bindings) and right(rt, bindings)
            )
        if isinstance(node, ast.Or):
            left, right = self.truth(node.left), self.truth(node.right)
            return lambda rt, bindings: (
                left(rt, bindings) or right(rt, bindings)
            )
        if isinstance(node, ast.Not):
            operand = self.truth(node.operand)
            return lambda rt, bindings: not operand(rt, bindings)
        if isinstance(node, ast.Comparison):
            compare = _COMPARISONS.get(node.operator)
            if compare is None:
                raise QueryError("unknown comparison %r" % node.operator)
            left_fn = self.expression(node.left)
            right_fn = self.expression(node.right)

            def comparison_fn(rt, bindings):
                left = left_fn(rt, bindings)
                if left is None:
                    return False
                right = right_fn(rt, bindings)
                if right is None:
                    return False
                return compare(left, right)

            return comparison_fn
        if isinstance(node, ast.IsClause):
            left_fn = self.entity_operand(node.left)
            right_fn = self.entity_operand(node.right)

            def is_fn(rt, bindings):
                left = left_fn(rt, bindings)
                if left is None:
                    return False
                right = right_fn(rt, bindings)
                if right is None:
                    return False
                return left.surrogate == right.surrogate

            return is_fn
        if isinstance(node, ast.OrderClause):
            left_fn = self.entity_operand(node.left)
            right_fn = self.entity_operand(node.right)
            order_name = node.order_name
            is_before = node.operator == "before"

            def order_fn(rt, bindings):
                left = left_fn(rt, bindings)
                if left is None:
                    return False
                right = right_fn(rt, bindings)
                if right is None:
                    return False
                ordering = rt._resolve_ordering(order_name, [left, right])
                if is_before:
                    return ordering.before(left, right)
                return ordering.after(left, right)

            return order_fn
        if isinstance(node, ast.UnderClause):
            child_fn = self.entity_operand(node.child)
            parent_fn = self.entity_operand(node.parent)
            order_name = node.order_name

            def under_fn(rt, bindings):
                child = child_fn(rt, bindings)
                if child is None:
                    return False
                parent = parent_fn(rt, bindings)
                if parent is None:
                    return False
                ordering = rt._resolve_ordering(
                    order_name, [child], parent=parent
                )
                return ordering.under(child, parent)

            return under_fn
        if isinstance(node, ast.MatchClause):
            from repro.text import match_predicate, similar_predicate

            variable, attribute = node.variable, node.attribute
            # The query side is a parser-enforced literal, so its
            # normalized form / gram set folds at compile time; the
            # per-row verification pass over index candidates then
            # only normalizes the row value.
            if node.operator == "matches":
                predicate = match_predicate(node.query)
            else:
                predicate = similar_predicate(node.query, node.threshold)

            def match_fn(rt, bindings):
                bound = bindings.get(variable)
                if bound is None:
                    raise QueryError("unbound range variable %r" % variable)
                return predicate(bound[attribute])

            return match_fn
        raise QueryError("cannot evaluate qualification %r" % (node,))

    # -- order-operator pushdown -------------------------------------------------

    def _resolved_order_name(self, clause_name, child_types, parent_type=None):
        """The unique ordering name a clause resolves to at compile time,
        or None when pushdown must be skipped (unknown explicit name, or
        zero/ambiguous implicit candidates -- the per-row fallback then
        reproduces the interpreter's error or empty-result behavior)."""
        orderings = self.session.schema.orderings
        if clause_name is not None:
            return clause_name if clause_name in orderings else None
        candidates = [
            o for o in orderings.values()
            if all(t in o.child_types for t in child_types)
            and (parent_type is None or o.parent_type == parent_type)
        ]
        if len(candidates) == 1:
            return candidates[0].name
        return None

    def _entity_variable(self, node):
        """The range variable name when *node* is a VariableRef over an
        entity range, else None."""
        if not isinstance(node, ast.VariableRef):
            return None
        declared = self.session._range_for(node.variable)
        if declared.kind != "entity":
            return None
        return node.variable

    def pushdown_options(self, index, node):
        """Pushdown options for conjunct *node* (may be empty)."""
        if isinstance(node, ast.UnderClause):
            child = self._entity_variable(node.child)
            parent = self._entity_variable(node.parent)
            if child is None or parent is None or child == parent:
                return []
            name = self._resolved_order_name(
                node.order_name,
                [self.session._range_for(child).type_name],
                parent_type=self.session._range_for(parent).type_name,
            )
            if name is None:
                return []
            return [PushdownOption(index, child, parent, "under", name)]
        if isinstance(node, ast.OrderClause):
            left = self._entity_variable(node.left)
            right = self._entity_variable(node.right)
            if left is None or right is None or left == right:
                return []
            name = self._resolved_order_name(
                node.order_name,
                [
                    self.session._range_for(left).type_name,
                    self.session._range_for(right).type_name,
                ],
            )
            if name is None:
                return []
            if node.operator == "before":
                # ``left before right``: with right bound, left ranges
                # over siblings before it; with left bound, right ranges
                # over siblings after it.
                return [
                    PushdownOption(index, left, right, "before", name),
                    PushdownOption(index, right, left, "after", name),
                ]
            return [
                PushdownOption(index, left, right, "after", name),
                PushdownOption(index, right, left, "before", name),
            ]
        return []


def compile_statement(statement, session):
    """Lower *statement* to a :class:`CompiledStatement` for *session*'s
    current range bindings (the plan-cache key pins those, plus the
    schema epoch and function-registry version)."""
    compiler = Compiler(session)
    used, where = session._plan_parts(statement)
    conjunct_nodes = planner.split_conjuncts(where)
    conjuncts = []
    restrictions = {}
    restriction_conjuncts = {}
    text_restrictions = {}
    pushdown_options = []
    for index, node in enumerate(conjunct_nodes):
        conjuncts.append(
            CompiledConjunct(
                node, frozenset(planner.variables_in(node)), compiler.truth(node)
            )
        )
        for variable in used:
            restriction = planner.equality_restriction(node, variable)
            if restriction is not None:
                restrictions.setdefault(variable, []).append(restriction)
                restriction_conjuncts.setdefault(variable, []).append(index)
            text = planner.text_restriction(node, variable)
            if text is not None:
                text_restrictions.setdefault(variable, []).append(text)
        pushdown_options.extend(compiler.pushdown_options(index, node))

    kind = type(statement).__name__
    targets = aggregates = sort_fn = assignments = None
    if isinstance(statement, ast.RetrieveStatement):
        targets = []
        aggregates = []
        for target in statement.targets:
            expression = target.expression
            if isinstance(expression, ast.FunctionCall) and (
                session.functions.is_aggregate(expression.name)
            ):
                arg_fn = None
                if len(expression.arguments) == 1:
                    arg_fn = compiler.expression(expression.arguments[0])
                aggregates.append(
                    CompiledAggregate(target.name, expression.name, arg_fn)
                )
            else:
                targets.append((target.name, compiler.expression(expression)))
        if statement.sort_by is not None:
            sort_fn = compiler.expression(statement.sort_by)
    elif isinstance(statement, (ast.AppendStatement, ast.ReplaceStatement)):
        assignments = [
            (name, compiler.expression(expression))
            for name, expression in statement.assignments
        ]
    elif not isinstance(statement, ast.DeleteStatement):
        raise QueryError("cannot compile statement %r" % (statement,))

    return CompiledStatement(
        statement, kind, list(used), conjuncts, restrictions,
        restriction_conjuncts, pushdown_options, targets=targets,
        aggregates=aggregates, sort_fn=sort_fn, assignments=assignments,
        text_restrictions=text_restrictions,
    )
