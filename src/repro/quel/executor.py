"""QUEL execution against a schema.

A :class:`QuelSession` holds range-variable declarations and executes
statements.  Retrieves run a backtracking join over the referenced
range variables; the entity operators ``is``, ``before``, ``after`` and
``under`` evaluate per the section 5.6 semantics.

Statements run under table locks: every range variable's table is
read-locked (shared) and a mutation's target table write-locked
(exclusive) before rows are touched, so concurrent writers cannot
produce torn reads.  Inside a transaction the locks join the
transaction (strict 2PL); outside one they are statement-scoped — an
ephemeral lock owner is allocated and released when the statement ends,
on success *and* on error.

Execution is also bounded: a thread-local :class:`ExecutionLimits`
(installed by the session layer, or directly via
:meth:`QuelSession.set_limits`) threads a deadline and row budget into
the binding-generation loop, which raises ``QueryTimeoutError`` /
``ResourceLimitError`` instead of looping unboundedly.
"""

import threading
import time
from bisect import bisect_left

from repro.errors import QueryError, QueryTimeoutError, ResourceLimitError
from repro.core.entity import SURROGATE_COLUMN, EntityInstance
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NOOP_SPAN, span, tracing_active
from repro.quel import ast
from repro.quel.cache import StatementCache, plan_cache_for
from repro.quel.compile import (
    CompiledAggregate,
    compile_statement,
    statement_fingerprint,
)
from repro.quel.functions import FunctionRegistry, scalar_similarity
from repro.quel.parser import parse_quel
from repro.quel import planner
from repro.text import SimilarityScorer, contains_match, is_similar

#: Statement types the compiler can lower (everything that joins).
_COMPILABLE = (
    ast.RetrieveStatement,
    ast.AppendStatement,
    ast.ReplaceStatement,
    ast.DeleteStatement,
)


class ExecutionLimits:
    """A deadline and row budget bounding one thread's query execution.

    *deadline* is absolute ``time.monotonic``; *row_budget* caps the
    number of candidate rows the join loop may visit.  ``tick`` is
    called once per candidate visit and checks the deadline every 64
    visits (a monotonic read per row would dominate small queries).
    """

    __slots__ = ("deadline", "row_budget", "visits")

    def __init__(self, deadline=None, row_budget=None):
        self.deadline = deadline
        self.row_budget = row_budget
        self.visits = 0

    def check_deadline(self):
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise QueryTimeoutError(
                "query exceeded its deadline after %d candidate rows"
                % self.visits
            )

    def tick(self):
        self.visits += 1
        if self.row_budget is not None and self.visits > self.row_budget:
            raise ResourceLimitError(
                "query exceeded its row budget of %d candidate rows"
                % self.row_budget
            )
        if (self.visits & 63) == 0:
            self.check_deadline()


def _text_truth(value, operator, query, threshold):
    """Evaluate one text gate exactly (no index involved)."""
    if operator == "matches":
        return contains_match(value, query)
    return is_similar(value, query, threshold)


#: Tables smaller than this always prune through the trigram index --
#: the candidate-cap cost rule below only bites at catalog scale, so
#: small fixtures keep their historical "index text" plans.
_TEXT_SCAN_FLOOR = 512


def _text_rowids(table, text_restrictions):
    """Trigram-index candidate rowids for *text_restrictions*.

    Returns ``(rowids, pruned)``: *rowids* is the intersection of the
    per-gate candidate sets (None when nothing pruned), *pruned* True
    when at least one trigram index contributed.  A gate with no index,
    or a sub-trigram query the index cannot bound, contributes nothing
    -- the exact predicate still verifies every materialized row
    downstream, so candidates remain a sound superset.

    Candidate-cap cost rule: a gate whose posting-list estimate covers
    at least half the table would spend more materializing and
    intersecting rowid sets than the scan it is meant to avoid, so it
    is skipped (the exact predicate still filters every row).  The
    estimates read posting *lengths* only -- no posting is walked to
    make the decision.
    """
    rowids = None
    pruned = False
    cap = max(_TEXT_SCAN_FLOOR, len(table) // 2)
    for attribute, operator, query, threshold in text_restrictions:
        index = table.text_index_for(attribute)
        if index is None:
            continue
        if operator == "matches":
            estimate = index.estimate_matching(query)
            if estimate is None or estimate >= cap:
                continue
            matched = index.candidates_matching(query)
        else:
            estimate = index.estimate_similar(query, threshold)
            if estimate is None or estimate >= cap:
                continue
            matched = index.candidates_similar(query, threshold)
        if matched is None:
            continue
        pruned = True
        rowids = matched if rowids is None else rowids & matched
        if not rowids:
            break
    return rowids, pruned


class _EntityRange:
    kind = "entity"

    def __init__(self, entity_type):
        self.entity_type = entity_type

    @property
    def type_name(self):
        return self.entity_type.name

    @property
    def table_name(self):
        return self.entity_type.table.name

    def candidates(self, restrictions, snapshot=False, text_restrictions=()):
        """Instances satisfying *restrictions*, plus the access path used.

        Every equality restriction on a real column is answered from an
        index -- built on first use if absent -- and the rowid sets are
        intersected before any row is materialized.  Text gates in
        *text_restrictions* prune through the trigram index when one
        exists ("index text" access); the exact predicate re-verifies
        every survivor in the join, so candidates are a sound superset.
        Restrictions on unknown attributes are filtered in place rather
        than triggering a full unfiltered scan.  Returns ``(instances,
        access)`` with *access* one of "index", "index text",
        "filtered scan", "scan", or "snapshot scan".

        With *snapshot* the statement runs lock-free against a pinned
        MVCC snapshot: indexes mirror the live table and are unsafe to
        read (let alone build adaptively) without a lock, so every
        restriction -- equality and text alike -- is applied residually
        over the visible rows.
        """
        table = self.entity_type.table
        if snapshot:
            rows = list(table)
            for attribute, value in restrictions:
                if table.schema.has_column(attribute):
                    rows = [r for r in rows if r[attribute] == value]
            for attribute, operator, query, threshold in text_restrictions:
                if table.schema.has_column(attribute):
                    rows = [
                        r for r in rows
                        if _text_truth(r[attribute], operator, query, threshold)
                    ]
            rows.sort(key=lambda r: r[SURROGATE_COLUMN])
            instances = [
                EntityInstance(self.entity_type, row[SURROGATE_COLUMN], row.rowid)
                for row in rows
            ]
            residual = [
                (a, v) for a, v in restrictions
                if not table.schema.has_column(a)
            ]
            if residual:
                instances = [
                    i for i in instances
                    if all(i.get(a) == v for a, v in residual)
                ]
            return instances, "snapshot scan"
        indexed = []
        residual = []
        for attribute, value in restrictions:
            if table.schema.has_column(attribute):
                indexed.append((attribute, value))
            else:
                residual.append((attribute, value))
        rowids, text_pruned = _text_rowids(table, text_restrictions)
        access = "index text" if text_pruned else "index"
        if not indexed and rowids is None:
            instances = self.entity_type.instances()
            if residual:
                instances = [
                    i
                    for i in instances
                    if all(i.get(a) == v for a, v in residual)
                ]
                return instances, "filtered scan"
            return instances, "scan"
        if rowids is not None and not rowids:
            return [], access
        for attribute, value in indexed:
            index = table.any_index_for(attribute)
            if index is None:
                # Adaptive access path: build the missing index once so
                # this and every later query answers from it.
                index = table.create_index(attribute)
            matched = set(index.lookup(value))
            rowids = matched if rowids is None else rowids & matched
            if not rowids:
                return [], access
        out = []
        # One batched pass: no per-rowid table.get round trips.
        for row in table.get_many(sorted(rowids)):
            instance = EntityInstance(
                self.entity_type, row[SURROGATE_COLUMN], row.rowid
            )
            if all(instance.get(a) == v for a, v in residual):
                out.append(instance)
        return out, access


class _RelationshipRange:
    kind = "relationship"

    def __init__(self, relationship):
        self.relationship = relationship

    @property
    def type_name(self):
        return self.relationship.name

    @property
    def table_name(self):
        return self.relationship.table.name

    def candidates(self, restrictions, snapshot=False, text_restrictions=()):
        """Rows satisfying *restrictions*, plus the access path used.

        Role columns are indexed at definition time; like
        :class:`_EntityRange`, a restriction on any other real column
        builds the missing index on first use, so it never silently
        degrades to a filtered scan.  Text gates prune through the
        trigram index when one exists.  Rowid sets are intersected
        before any row is materialized.  With *snapshot* (lock-free
        MVCC read) indexes are bypassed entirely; see
        :meth:`_EntityRange.candidates`.
        """
        table = self.relationship.table
        if snapshot:
            rows = [
                row for row in table
                if all(row.get(a) == v for a, v in restrictions)
                and all(
                    _text_truth(row.get(a), op, q, t)
                    for a, op, q, t in text_restrictions
                )
            ]
            return rows, "snapshot scan"
        indexed = []
        residual = []
        for attribute, value in restrictions:
            if table.schema.has_column(attribute):
                indexed.append((attribute, value))
            else:
                residual.append((attribute, value))
        rowids, text_pruned = _text_rowids(table, text_restrictions)
        access = "index text" if text_pruned else "index"
        if not indexed and rowids is None:
            rows = list(table)
            if residual:
                rows = [
                    row
                    for row in rows
                    if all(row.get(a) == v for a, v in residual)
                ]
                return rows, "filtered scan"
            return rows, "scan"
        if rowids is not None and not rowids:
            return [], access
        for attribute, value in indexed:
            index = table.any_index_for(attribute)
            if index is None:
                index = table.create_index(attribute)
            matched = set(index.lookup(value))
            rowids = matched if rowids is None else rowids & matched
            if not rowids:
                return [], access
        rows = []
        for row in table.get_many(sorted(rowids)):
            if all(row.get(a) == v for a, v in residual):
                rows.append(row)
        return rows, access


class QuelSession:
    """Stateful QUEL session over one schema.

    Ablation switches (each independently benchmarkable):

    *use_indexes* -- with it off, every range variable's candidate set
    is a full heap scan, reproducing the section 5.2 baseline of an
    unindexed relation.

    *use_compiled* -- with it off, every statement re-parses its source
    and re-walks the qualification AST per candidate binding (the
    interpreter).  On (the default), sources are parsed once per session
    (statement cache) and statements are lowered once to Python closures
    and cached per database, keyed on structural fingerprint and
    invalidated by the schema epoch (plan cache).

    *use_order_pushdown* -- with it off, ``before``/``after``/``under``
    conjuncts are checked pairwise inside the join even on the compiled
    path; on, a conjunct with one side bound enumerates the other side
    by (parent, order_key) index range scan ("order range" in explain).

    *use_topk* -- with it off, a ranked ``limit N`` text retrieve runs
    through the generic bounded-selection path (every gate candidate is
    fetched and scored); on, the streaming top-k operator ("index text
    topk" in explain) visits candidates best-score-bound-first and
    stops fetching once the Nth score is unbeatable.
    """

    def __init__(self, schema, use_indexes=True, use_compiled=True,
                 use_order_pushdown=True, use_topk=True):
        self.schema = schema
        self.ranges = {}
        self.functions = FunctionRegistry()
        self._last_plan = None
        self.use_indexes = use_indexes
        self.use_compiled = use_compiled
        self.use_order_pushdown = use_order_pushdown
        self.use_topk = use_topk
        self._limits_local = threading.local()
        # Statement-level metrics ("quel.*") land in the database's
        # registry; increments are per statement, never per row.
        metrics = getattr(schema.database, "metrics", None)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._statements = self.metrics.counter("quel.statements")
        self._rows_returned = self.metrics.counter("quel.rows_returned")
        self._statement_seconds = self.metrics.histogram(
            "quel.statement_seconds"
        )
        # One queue write per statement covers both the counter and
        # the latency histogram (they drain it on read).
        self._statement_tally = self.metrics.tally(
            "quel.statements", "quel.statement_seconds"
        )
        # Text-gate accounting: statements whose plan pruned through a
        # trigram index, and how many candidate rows survived pruning.
        self._text_searches = self.metrics.counter("text.searches")
        self._text_candidates = self.metrics.counter("text.candidates")
        self._statement_cache = StatementCache(self.metrics)
        self._plan_cache = plan_cache_for(
            getattr(schema, "database", None), self.metrics
        )
        # Bumped on any range (re)declaration: a session-local plan slot
        # compiled under old bindings must not be reused.
        self._ranges_version = 0
        self._last_cache_info = None

    @property
    def last_cache_info(self):
        """'hit' or 'miss' for the last statement's plan-cache lookup,
        or None when the statement did not consult the cache."""
        return self._last_cache_info

    @property
    def last_plan(self):
        """The most recent statement's plan, rendered as text (or None).

        The executor keeps the structured :class:`~repro.quel.planner.
        QueryPlan` (see :attr:`last_plan_object`); the text is built
        lazily here so queries never pay for string formatting.
        """
        if self._last_plan is None:
            return None
        return self._last_plan.render()

    @property
    def last_plan_object(self):
        """The most recent statement's QueryPlan (or None)."""
        return self._last_plan

    # -- execution limits --------------------------------------------------------

    def set_limits(self, deadline=None, row_budget=None):
        """Install a deadline/row budget for this thread's statements."""
        self._limits_local.limits = ExecutionLimits(deadline, row_budget)

    def clear_limits(self):
        self._limits_local.limits = None

    @property
    def limits(self):
        return getattr(self._limits_local, "limits", None)

    # -- public API ------------------------------------------------------------

    def execute(self, source):
        """Execute a QUEL program; returns the last statement's result.

        Retrieves return a list of result dicts; mutations return the
        affected-instance count; range statements return None.  On the
        compiled path a source text is parsed at most once per session;
        repeats hit the statement cache and skip the parser.
        """
        entry = None
        if self.use_compiled:
            entry = self._statement_cache.lookup(source)
        if entry is None:
            with span("quel.parse"):
                statements = parse_quel(source)
            if self.use_compiled:
                entry = self._statement_cache.store(source, statements)
        result = None
        if entry is not None:
            for statement, slot in zip(entry.statements, entry.slots):
                result = self.execute_statement(statement, _slot=slot)
        else:
            for statement in statements:
                result = self.execute_statement(statement)
        return result

    def execute_statement(self, statement, _slot=None):
        self._last_cache_info = None
        if isinstance(statement, ast.RangeStatement):
            return self._declare_range(statement)
        if isinstance(statement, ast.ExplainStatement):
            return self._explain(statement)
        # The tracer check is hoisted so the no-sink path skips the
        # span calls (and their kwargs dicts) entirely -- that is how
        # the 3% overhead budget holds for cached compiled statements.
        statement_span = (
            span("quel.statement", kind=type(statement).__name__)
            if tracing_active()
            else NOOP_SPAN
        )
        started = time.monotonic()
        try:
            return self._dispatch(statement, slot=_slot)
        except (QueryTimeoutError, ResourceLimitError) as exc:
            self._record_partial_progress(exc)
            statement_span.record("error", type(exc).__name__)
            raise
        finally:
            if statement_span is not NOOP_SPAN:
                statement_span.finish()
            self._statement_tally.observe(time.monotonic() - started)

    def _dispatch(self, statement, slot=None):
        compiled = self._compiled_for(statement, slot)
        if isinstance(statement, ast.RetrieveStatement):
            return self._with_statement_locks(
                self._retrieve, statement, compiled=compiled
            )
        if isinstance(statement, ast.AppendStatement):
            return self._with_statement_locks(
                self._append, statement,
                write_target=lambda: self.schema.entity_type(
                    statement.entity_type
                ).table.name,
                compiled=compiled,
            )
        if isinstance(statement, ast.ReplaceStatement):
            return self._with_statement_locks(
                self._replace, statement,
                write_target=lambda: self._variable_table(statement.variable),
                compiled=compiled,
            )
        if isinstance(statement, ast.DeleteStatement):
            return self._with_statement_locks(
                self._delete, statement,
                write_target=lambda: self._variable_table(statement.variable),
                compiled=compiled,
            )
        raise QueryError("unsupported statement %r" % (statement,))

    # -- the compile-and-cache layer ---------------------------------------------

    def _bindings_key(self, statement):
        """The range-binding shape a compiled plan depends on."""
        used, _ = self._plan_parts(statement)
        parts = []
        for variable in used:
            declared = self._range_for(variable)
            parts.append((variable, declared.kind, declared.type_name))
        return tuple(parts)

    def _compiled_for(self, statement, slot=None):
        """The compiled form of *statement*, or None (interpreter path).

        Consults the session-local :class:`~repro.quel.cache.PlanSlot`
        first (valid while schema epoch, function registry, and range
        declarations are unchanged), then the per-database plan cache
        keyed on (fingerprint, binding shape, registry); compiles and
        stores on miss.
        """
        if not self.use_compiled or not isinstance(statement, _COMPILABLE):
            return None
        epoch = self.schema.database.schema_epoch
        functions_version = self.functions.version
        if (
            slot is not None
            and slot.compiled is not None
            and slot.epoch == epoch
            and slot.functions_version == functions_version
            and slot.ranges_version == self._ranges_version
        ):
            self._plan_cache.hits.inc()
            self._last_cache_info = "hit"
            return slot.compiled
        key = (
            statement_fingerprint(statement),
            self._bindings_key(statement),
            # Pristine registries are interchangeable; a session that
            # registered functions gets entries private to its registry
            # (the cache's reference also pins the registry, so the key
            # can never alias a recycled one).
            self.functions if functions_version else None,
            functions_version,
        )
        compiled = self._plan_cache.get(key, epoch)
        if compiled is None:
            compiled = compile_statement(statement, self)
            self._plan_cache.put(key, epoch, compiled)
            self._last_cache_info = "miss"
        else:
            self._last_cache_info = "hit"
        if slot is not None:
            slot.epoch = epoch
            slot.functions_version = functions_version
            slot.ranges_version = self._ranges_version
            slot.compiled = compiled
        return compiled

    def _record_partial_progress(self, exc):
        """Publish how far a timed-out/over-budget statement got.

        The shell reads these to print partial-progress counters with
        the error instead of swallowing them.
        """
        limits = self.limits
        visits = limits.visits if limits is not None else 0
        name = (
            "quel.timeouts"
            if isinstance(exc, QueryTimeoutError)
            else "quel.row_budget_exceeded"
        )
        self.metrics.counter(name).inc()
        self.metrics.gauge("quel.last_partial_rows_visited").set(visits)

    # -- explain / explain analyze ---------------------------------------------

    def _explain(self, statement):
        inner = statement.statement
        if isinstance(inner, ast.ExplainStatement):
            raise QueryError("explain cannot be nested")
        if isinstance(inner, ast.RangeStatement):
            self._declare_range(inner)
            return [{"plan": "range declaration (no plan)"}]
        if statement.analyze:
            return self._explain_analyze(inner)
        compiled = (
            self._compiled_for(inner) if isinstance(inner, _COMPILABLE) else None
        )
        return self._with_statement_locks(
            self._plan_only, inner, compiled=compiled
        )

    def _plan_parts(self, statement):
        """The (used variables, qualification) a statement would join over."""
        if isinstance(statement, ast.RetrieveStatement):
            used = self._used_variables(statement.targets, statement.where)
            if statement.sort_by is not None:
                used = sorted(
                    set(used) | planner.variables_in(statement.sort_by)
                )
            return used, statement.where
        if isinstance(statement, ast.AppendStatement):
            used = set()
            for _, expression in statement.assignments:
                used |= planner.variables_in(expression)
            used |= planner.variables_in(statement.where)
            return sorted(used), statement.where
        if isinstance(statement, ast.ReplaceStatement):
            used = {statement.variable}
            used |= planner.variables_in(statement.where)
            for _, expression in statement.assignments:
                used |= planner.variables_in(expression)
            return sorted(used), statement.where
        if isinstance(statement, ast.DeleteStatement):
            used = {statement.variable}
            used |= planner.variables_in(statement.where)
            return sorted(used), statement.where
        raise QueryError("cannot explain %r" % (statement,))

    def _plan_only(self, statement, compiled=None):
        if compiled is not None:
            # gate=False: explain never evaluates even the constant
            # conjuncts, matching the interpreter's plan-only path.
            self._prepare_compiled(compiled, gate=False)
            return self._last_plan.rows()
        used, where = self._plan_parts(statement)
        _, _, _, plan = self._build_plan(used, where)
        return plan.rows()

    def _explain_analyze(self, inner):
        """Execute *inner* fully, then report plan + actual counts/time.

        Candidate-row visits are counted by a temporary
        :class:`ExecutionLimits` (inheriting any installed deadline and
        row budget), so the steady-state join loop never carries an
        always-on per-row counter.
        """
        previous = self.limits
        self._limits_local.limits = ExecutionLimits(
            deadline=previous.deadline if previous is not None else None,
            row_budget=previous.row_budget if previous is not None else None,
        )
        started = time.monotonic()
        try:
            result = self._dispatch(inner)
            elapsed = time.monotonic() - started
            visits = self.limits.visits
        finally:
            self._limits_local.limits = previous
        plan = self._last_plan
        rows = plan.rows() if plan is not None else [{"plan": "(no plan)"}]
        count = len(result) if isinstance(result, list) else result
        rows.append({"plan": "rows: %s" % count})
        rows.append({"plan": "rows visited: %d" % visits})
        rows.append({"plan": "time: %.3f ms" % (elapsed * 1000.0)})
        return rows

    def _variable_table(self, variable):
        return self._range_for(variable).table_name

    def _with_statement_locks(self, method, statement, write_target=None,
                              compiled=None):
        """Run *method(statement, compiled)* under statement-scoped lock
        ownership.

        Pre-acquires the exclusive lock on a mutation's target table;
        range-variable tables are share-locked as the binding generator
        resolves them.  Ephemeral (no-transaction) owners release their
        locks when the statement ends, success or error; transactional
        owners keep theirs until commit/abort (strict 2PL).

        Read statements in *snapshot mode* -- the thread has a pinned
        MVCC snapshot, or the database is degraded with no transaction
        active -- skip all of that: no statement owner is allocated and
        the lock manager is never touched, because visibility comes from
        the version chains.
        """
        database = self.schema.database
        transactions = database.transactions
        if write_target is None and self._snapshot_read_mode(database):
            pin = transactions.current_snapshot() is None
            if pin:
                transactions.pin_snapshot()
            try:
                limits = self.limits
                if limits is not None:
                    limits.check_deadline()
                return method(statement, compiled)
            finally:
                if pin:
                    transactions.unpin_snapshot()
        owner, ephemeral = transactions.begin_statement()
        try:
            limits = self.limits
            if limits is not None:
                limits.check_deadline()
            if write_target is not None:
                database.write_table(write_target())
            return method(statement, compiled)
        finally:
            if ephemeral:
                transactions.end_statement(owner)

    @staticmethod
    def _snapshot_read_mode(database):
        """True when a read statement should run against a snapshot."""
        transactions = database.transactions
        if transactions.current_snapshot() is not None:
            return True
        # Degraded (read-only) databases serve every standalone read
        # lock-free: there is nothing a lock could protect against, and
        # S-lock churn on the healed path was a real regression.
        return database.degraded and transactions.current() is None

    def register_function(self, name, function, aggregate=False):
        if aggregate:
            self.functions.register_aggregate(name, function)
        else:
            self.functions.register_scalar(name, function)

    # -- range variables ----------------------------------------------------------

    def _declare_range(self, statement):
        name = statement.entity_type
        if self.schema.has_entity_type(name):
            target = _EntityRange(self.schema.entity_type(name))
        elif name in self.schema.relationships:
            target = _RelationshipRange(self.schema.relationship(name))
        else:
            raise QueryError("range over unknown type %r" % name)
        for variable in statement.variables:
            self.ranges[variable] = target
        self._ranges_version += 1
        return None

    def _range_for(self, variable):
        declared = self.ranges.get(variable)
        if declared is not None:
            return declared
        # Footnote 6: a range variable with the same name as its entity
        # type (or relationship) is implicitly declared.
        if self.schema.has_entity_type(variable):
            target = _EntityRange(self.schema.entity_type(variable))
            self.ranges[variable] = target
            self._ranges_version += 1
            return target
        if variable in self.schema.relationships:
            target = _RelationshipRange(self.schema.relationship(variable))
            self.ranges[variable] = target
            self._ranges_version += 1
            return target
        raise QueryError("undeclared range variable %r" % variable)

    # -- expression evaluation ------------------------------------------------------

    def _evaluate(self, node, bindings):
        if isinstance(node, ast.Literal):
            return node.value
        if isinstance(node, ast.AttributeRef):
            bound = bindings.get(node.variable)
            if bound is None:
                raise QueryError("unbound range variable %r" % node.variable)
            if isinstance(bound, EntityInstance):
                return bound[node.attribute]
            return bound[node.attribute]  # relationship Row
        if isinstance(node, ast.VariableRef):
            bound = bindings.get(node.variable)
            if bound is None:
                raise QueryError("unbound range variable %r" % node.variable)
            if isinstance(bound, EntityInstance):
                return bound.surrogate
            raise QueryError(
                "relationship variable %r used as a value" % node.variable
            )
        if isinstance(node, ast.BinaryOp):
            left = self._evaluate(node.left, bindings)
            right = self._evaluate(node.right, bindings)
            if left is None or right is None:
                return None
            if node.operator == "+":
                return left + right
            if node.operator == "-":
                return left - right
            if node.operator == "*":
                return left * right
            if node.operator == "/":
                if right == 0:
                    raise QueryError("division by zero")
                if isinstance(left, int) and isinstance(right, int) and left % right == 0:
                    return left // right
                return left / right
            if node.operator == "%":
                if right == 0:
                    raise QueryError("modulo by zero")
                return left % right
            raise QueryError("unknown operator %r" % node.operator)
        if isinstance(node, ast.FunctionCall):
            if node.name == "ordinal":
                return self._ordinal(node, bindings)
            function = self.functions.scalar(node.name)
            arguments = [self._evaluate(a, bindings) for a in node.arguments]
            return function(*arguments)
        raise QueryError("cannot evaluate %r" % (node,))

    def _ordinal(self, node, bindings):
        """``ordinal(var [, "order_name"])``: the 1-based position of an
        entity under its parent in a hierarchical ordering (None when it
        is not a member) -- the query-language face of "the third note
        in chord x" (section 5.4)."""
        if not 1 <= len(node.arguments) <= 2:
            raise QueryError("ordinal() takes a range variable and an "
                             "optional ordering name")
        instance = self._entity_operand(node.arguments[0], bindings)
        if instance is None:
            return None
        if len(node.arguments) == 2:
            name_node = node.arguments[1]
            if not isinstance(name_node, ast.Literal) or not isinstance(
                name_node.value, str
            ):
                raise QueryError("ordinal()'s second argument is an "
                                 "ordering name string")
            ordering = self.schema.ordering(name_node.value)
        else:
            ordering = self._resolve_ordering(None, [instance])
        return ordering.position_of(instance)

    # -- entity operand handling ------------------------------------------------------

    def _entity_operand(self, node, bindings):
        """Resolve an entity operand to an EntityInstance."""
        if isinstance(node, ast.VariableRef):
            bound = bindings.get(node.variable)
            if isinstance(bound, EntityInstance):
                return bound
            raise QueryError(
                "%r is not an entity range variable" % node.variable
            )
        if isinstance(node, ast.AttributeRef):
            value = self._evaluate(node, bindings)
            if value is None:
                return None
            if isinstance(value, int):
                return self.schema.instance(value)
            raise QueryError(
                "%s.%s is not an entity reference" % (node.variable, node.attribute)
            )
        raise QueryError("bad entity operand %r" % (node,))

    def _resolve_ordering(self, clause_name, instances, parent=None):
        """Find the ordering for before/after/under given the operands."""
        if clause_name is not None:
            return self.schema.ordering(clause_name)
        candidates = []
        for ordering in self.schema.orderings.values():
            if any(
                instance.type.name not in ordering.child_types
                for instance in instances
            ):
                continue
            if parent is not None and ordering.parent_type != parent.type.name:
                continue
            candidates.append(ordering)
        if len(candidates) == 1:
            return candidates[0]
        if not candidates:
            raise QueryError(
                "no ordering admits operand types %s"
                % ", ".join(sorted({i.type.name for i in instances}))
            )
        raise QueryError(
            "ambiguous ordering; specify 'in <order_name>' (candidates: %s)"
            % ", ".join(sorted(o.name for o in candidates))
        )

    # -- qualification evaluation ----------------------------------------------------

    def _truth(self, node, bindings):
        if isinstance(node, ast.And):
            return self._truth(node.left, bindings) and self._truth(node.right, bindings)
        if isinstance(node, ast.Or):
            return self._truth(node.left, bindings) or self._truth(node.right, bindings)
        if isinstance(node, ast.Not):
            return not self._truth(node.operand, bindings)
        if isinstance(node, ast.Comparison):
            left = self._evaluate(node.left, bindings)
            right = self._evaluate(node.right, bindings)
            if left is None or right is None:
                return False
            operator = node.operator
            if operator == "=":
                return left == right
            if operator == "!=":
                return left != right
            if operator == "<":
                return left < right
            if operator == "<=":
                return left <= right
            if operator == ">":
                return left > right
            if operator == ">=":
                return left >= right
            raise QueryError("unknown comparison %r" % operator)
        if isinstance(node, ast.IsClause):
            left = self._entity_operand(node.left, bindings)
            right = self._entity_operand(node.right, bindings)
            if left is None or right is None:
                return False
            return left.surrogate == right.surrogate
        if isinstance(node, ast.OrderClause):
            left = self._entity_operand(node.left, bindings)
            right = self._entity_operand(node.right, bindings)
            if left is None or right is None:
                return False
            ordering = self._resolve_ordering(node.order_name, [left, right])
            if node.operator == "before":
                return ordering.before(left, right)
            return ordering.after(left, right)
        if isinstance(node, ast.UnderClause):
            child = self._entity_operand(node.child, bindings)
            parent = self._entity_operand(node.parent, bindings)
            if child is None or parent is None:
                return False
            ordering = self._resolve_ordering(
                node.order_name, [child], parent=parent
            )
            return ordering.under(child, parent)
        if isinstance(node, ast.MatchClause):
            bound = bindings.get(node.variable)
            if bound is None:
                raise QueryError("unbound range variable %r" % node.variable)
            return _text_truth(
                bound[node.attribute], node.operator, node.query, node.threshold
            )
        raise QueryError("cannot evaluate qualification %r" % (node,))

    # -- the backtracking join ---------------------------------------------------------

    def _build_plan(self, used_variables, qualification):
        """Generate candidates and a binding order for the join.

        Acquires shared locks on every referenced table, answers
        indexed equality restrictions from indexes, and records the
        resulting :class:`~repro.quel.planner.QueryPlan` as the
        session's last plan.  Returns ``(conjuncts, candidates, order,
        plan)``.
        """
        plan_span = span("quel.plan") if tracing_active() else NOOP_SPAN
        try:
            conjuncts = planner.split_conjuncts(qualification)
            candidates = {}
            accesses = {}
            database = self.schema.database
            read_tables = database.read_table
            snapshot = database.transactions.current_snapshot() is not None
            for variable in used_variables:
                range_decl = self._range_for(variable)
                # Shared lock before the scan: concurrent writers cannot
                # produce torn reads of this table mid-statement.  (A
                # pinned snapshot makes this a no-op: version chains,
                # not locks, keep the read consistent.)
                read_tables(range_decl.table_name)
                restrictions = []
                text_restrictions = []
                if self.use_indexes:
                    for conjunct in conjuncts:
                        restriction = planner.equality_restriction(
                            conjunct, variable
                        )
                        if restriction is not None:
                            restrictions.append(restriction)
                        text = planner.text_restriction(conjunct, variable)
                        if text is not None:
                            text_restrictions.append(text)
                candidates[variable], accesses[variable] = range_decl.candidates(
                    restrictions,
                    snapshot=snapshot,
                    text_restrictions=text_restrictions,
                )
                if accesses[variable] == "index text":
                    self._text_searches.inc()
                    self._text_candidates.inc(len(candidates[variable]))
            counts = {v: len(c) for v, c in candidates.items()}
            order = planner.order_variables(used_variables, counts, conjuncts)
            plan = planner.build_plan(order, counts, accesses)
            self._last_plan = plan
            if plan_span is not NOOP_SPAN:
                plan_span.record("label", plan.label)
                plan_span.record("candidates", sum(counts.values()))
                plan_span.record(
                    "index_hits",
                    sum(1 for a in accesses.values() if a == "index"),
                )
        finally:
            if plan_span is not NOOP_SPAN:
                plan_span.finish()
        return conjuncts, candidates, order, plan

    def _bindings_for(self, used_variables, qualification):
        """Yield binding dicts satisfying *qualification*."""
        limits = self.limits
        if limits is not None:
            limits.check_deadline()
        conjuncts, candidates, order, _ = self._build_plan(
            used_variables, qualification
        )

        # Constant conjuncts (no range variables) gate the whole query.
        for conjunct in conjuncts:
            if not planner.variables_in(conjunct) and not self._truth(conjunct, {}):
                return

        # Assign each conjunct to the earliest prefix that binds it fully.
        remaining = list(conjuncts)

        def join(index, bindings):
            if index == len(order):
                yield dict(bindings)
                return
            variable = order[index]
            bound_now = set(order[: index + 1])
            checks = [
                conjunct
                for conjunct in remaining
                if variable in planner.variables_in(conjunct)
                and planner.variables_in(conjunct) <= bound_now
            ]
            for candidate in candidates[variable]:
                if limits is not None:
                    limits.tick()
                bindings[variable] = candidate
                if all(self._truth(check, bindings) for check in checks):
                    yield from join(index + 1, bindings)
            bindings.pop(variable, None)

        if not order:
            # No range variables at all (constant query).
            if qualification is None or self._truth(qualification, {}):
                yield {}
            return
        # The scan span brackets the whole join loop; a try/finally
        # closes it even when the caller abandons the generator early.
        visits_before = limits.visits if limits is not None else 0
        scan_span = (
            span("quel.scan", variables=len(order))
            if tracing_active()
            else NOOP_SPAN
        )
        rows_out = 0
        try:
            # Conjuncts whose variables are not a subset of any prefix
            # can't exist (every variable is in `order`), so the above
            # covers all.
            for bindings in join(0, {}):
                rows_out += 1
                yield bindings
        finally:
            if scan_span is not NOOP_SPAN:
                if limits is not None:
                    scan_span.record(
                        "rows_visited", limits.visits - visits_before
                    )
                scan_span.record("rows_out", rows_out)
                scan_span.finish()

    # -- the compiled join --------------------------------------------------------------

    def _choose_pushdowns(self, compiled):
        """Pick at most one pushdown option per order conjunct.

        The enumerated variable must not carry equality restrictions (an
        index lookup would already make it cheap) and may be enumerated
        for only one conjunct.  Among a conjunct's options, one whose
        driver is restricted wins: the driver binds early and small.
        Returns ``(dynamic, consumed)``: enum var -> option, plus the
        conjunct indices the enumeration answers by construction.
        """
        dynamic = {}
        consumed = set()
        by_conjunct = {}
        for option in compiled.pushdown_options:
            by_conjunct.setdefault(option.conjunct_index, []).append(option)
        for index in sorted(by_conjunct):
            best = None
            best_restricted = False
            for option in by_conjunct[index]:
                if option.enum_var in dynamic:
                    continue
                if compiled.restrictions.get(option.enum_var):
                    continue
                restricted = bool(compiled.restrictions.get(option.driver_var))
                if best is None or (restricted and not best_restricted):
                    best = option
                    best_restricted = restricted
            if best is not None:
                dynamic[best.enum_var] = best
                consumed.add(index)
        return dynamic, consumed

    def _prepare_compiled(self, compiled, gate=True):
        """Lock tables, materialize candidates, and order the join.

        Mirrors :meth:`_build_plan` for the compiled path, plus order-
        operator pushdown: an enumerated variable gets no static
        candidate list -- its candidates come from an index range scan
        once its driver is bound ("order range" access).  Returns
        ``(order, candidates, dynamic, checks_by_level)``, or None when
        a constant conjunct gates the whole query out (*gate*; explain
        passes False so nothing is evaluated).
        """
        plan_span = span("quel.plan") if tracing_active() else NOOP_SPAN
        try:
            ranges = {}
            database = self.schema.database
            read_table = database.read_table
            # Snapshot mode (lock-free MVCC read): no locks are taken,
            # indexes are bypassed, and order-operator pushdown -- which
            # range-scans the live (parent, order_key) index -- is
            # disabled in favor of per-row order checks.
            snapshot = database.transactions.current_snapshot() is not None
            for variable in compiled.used:
                ranges[variable] = self._range_for(variable)
                read_table(ranges[variable].table_name)
            dynamic = {}
            consumed = set()
            if (
                not snapshot
                and self.use_indexes
                and self.use_order_pushdown
                and compiled.pushdown_options
            ):
                dynamic, consumed = self._choose_pushdowns(compiled)

            def static_candidates(variable):
                restrictions = (
                    list(compiled.restrictions.get(variable, ()))
                    if self.use_indexes
                    else []
                )
                text_restrictions = (
                    compiled.text_restrictions.get(variable, ())
                    if self.use_indexes
                    else ()
                )
                instances, access = ranges[variable].candidates(
                    restrictions,
                    snapshot=snapshot,
                    text_restrictions=text_restrictions,
                )
                if access == "index text":
                    self._text_searches.inc()
                    self._text_candidates.inc(len(instances))
                return instances, access

            candidates = {}
            accesses = {}
            counts = {}
            static_vars = []
            for variable in compiled.used:
                if variable in dynamic:
                    continue
                static_vars.append(variable)
                candidates[variable], accesses[variable] = static_candidates(
                    variable
                )
                counts[variable] = len(candidates[variable])
            nodes = [conjunct.node for conjunct in compiled.conjuncts]
            order = planner.order_variables(static_vars, counts, nodes)
            placed = set(order)
            pending = dict(dynamic)
            while pending:
                advanced = None
                for variable in sorted(pending):
                    if pending[variable].driver_var in placed:
                        advanced = variable
                        break
                if advanced is None:
                    # Mutually-driven order clauses (a before b and b
                    # before a): demote the rest to static candidates
                    # and let the per-row checks decide.
                    for variable in sorted(pending):
                        option = pending[variable]
                        consumed.discard(option.conjunct_index)
                        del dynamic[variable]
                        candidates[variable], accesses[variable] = (
                            static_candidates(variable)
                        )
                        counts[variable] = len(candidates[variable])
                        order.append(variable)
                        placed.add(variable)
                    pending.clear()
                    break
                option = pending.pop(advanced)
                ordering = self.schema.ordering(option.order_name)
                counts[advanced] = len(ordering.table)
                accesses[advanced] = "order range"
                order.append(advanced)
                placed.add(advanced)
            plan = planner.build_plan(order, counts, accesses)
            self._last_plan = plan
            if plan_span is not NOOP_SPAN:
                plan_span.record("label", plan.label)
                plan_span.record("candidates", sum(counts.values()))
                plan_span.record(
                    "index_hits",
                    sum(1 for a in accesses.values() if a == "index"),
                )
        finally:
            if plan_span is not NOOP_SPAN:
                plan_span.finish()

        if gate:
            for conjunct in compiled.conjuncts:
                if not conjunct.variables and not conjunct.truth(self, {}):
                    return None

        # Conjuncts answered structurally are skipped in the join:
        # consumed order conjuncts hold by enumeration; a static
        # variable's equality restrictions already filtered its
        # candidates (only with use_indexes on -- ablation re-checks).
        skip = set(consumed)
        if self.use_indexes:
            for variable in order:
                if variable not in dynamic:
                    skip.update(
                        compiled.restriction_conjuncts.get(variable, ())
                    )
        checks_by_level = []
        bound = set()
        for variable in order:
            bound.add(variable)
            checks_by_level.append(
                [
                    conjunct.truth
                    for index, conjunct in enumerate(compiled.conjuncts)
                    if index not in skip
                    and variable in conjunct.variables
                    and conjunct.variables <= bound
                ]
            )
        return order, candidates, dynamic, checks_by_level

    def _order_range_candidates(self, option, bindings):
        """Candidates for an enumerated variable, given its bound driver.

        One (parent, order_key) range scan yields the membership rows;
        each child surrogate is materialized through the enum type's
        surrogate index, which silently drops children of other types --
        exactly the rows the fallback conjunct would have rejected.
        """
        driver = bindings.get(option.driver_var)
        if not isinstance(driver, EntityInstance):
            return []
        ordering = self.schema.ordering(option.order_name)
        if option.mode == "under":
            rows = ordering.member_rows_under(driver.surrogate)
        else:
            member = ordering.member_row_of(driver)
            if member is None:
                return []
            if option.mode == "before":
                rows = ordering.member_rows_before(member)
            else:
                rows = ordering.member_rows_after(member)
        entity_type = self._range_for(option.enum_var).entity_type
        index = entity_type.table.any_index_for(SURROGATE_COLUMN)
        out = []
        for row in rows:
            rowids = index.lookup(row["child"])
            if rowids:
                out.append(EntityInstance(entity_type, row["child"], rowids[0]))
        return out

    def _compiled_bindings(self, compiled):
        """Yield binding dicts for a compiled statement (the compiled
        counterpart of :meth:`_bindings_for`)."""
        limits = self.limits
        if limits is not None:
            limits.check_deadline()
        prepared = self._prepare_compiled(compiled)
        if prepared is None:
            return
        order, candidates, dynamic, checks_by_level = prepared
        if not order:
            # No range variables; the constant gate already passed.
            yield {}
            return
        total = len(order)

        def join(level, bindings):
            if level == total:
                yield dict(bindings)
                return
            variable = order[level]
            option = dynamic.get(variable)
            if option is None:
                pool = candidates[variable]
            else:
                pool = self._order_range_candidates(option, bindings)
            checks = checks_by_level[level]
            for candidate in pool:
                if limits is not None:
                    limits.tick()
                bindings[variable] = candidate
                passed = True
                for check in checks:
                    if not check(self, bindings):
                        passed = False
                        break
                if passed:
                    yield from join(level + 1, bindings)
            bindings.pop(variable, None)

        visits_before = limits.visits if limits is not None else 0
        scan_span = (
            span("quel.scan", variables=total)
            if tracing_active()
            else NOOP_SPAN
        )
        rows_out = 0
        try:
            for bindings in join(0, {}):
                rows_out += 1
                yield bindings
        finally:
            if scan_span is not NOOP_SPAN:
                if limits is not None:
                    scan_span.record(
                        "rows_visited", limits.visits - visits_before
                    )
                scan_span.record("rows_out", rows_out)
                scan_span.finish()

    def _evaluator(self, expression):
        """An interpreter closure with the compiled calling convention,
        so both paths share one statement loop."""
        return lambda rt, bindings: rt._evaluate(expression, bindings)

    # -- statements -------------------------------------------------------------------

    def _used_variables(self, targets, where, extra=None):
        used = set()
        for target in targets:
            used |= planner.variables_in(target)
        used |= planner.variables_in(where)
        if extra:
            used |= set(extra)
        return sorted(used)

    def _retrieve(self, statement, compiled=None):
        if compiled is not None:
            plain = compiled.targets
            aggregates = compiled.aggregates
            sort_fn = compiled.sort_fn
        else:
            used = self._used_variables(statement.targets, statement.where)
            if statement.sort_by is not None:
                used = sorted(
                    set(used) | planner.variables_in(statement.sort_by)
                )
            plain = []
            aggregates = []
            for target in statement.targets:
                call = target.expression
                if isinstance(call, ast.FunctionCall) and (
                    self.functions.is_aggregate(call.name)
                ):
                    arg_fn = (
                        self._evaluator(call.arguments[0])
                        if len(call.arguments) == 1
                        else None
                    )
                    aggregates.append(
                        CompiledAggregate(target.name, call.name, arg_fn)
                    )
                else:
                    plain.append((target.name, self._evaluator(call)))
            sort_fn = (
                self._evaluator(statement.sort_by)
                if statement.sort_by is not None
                else None
            )

        limit = statement.limit
        if limit is not None and not aggregates and not statement.unique:
            streamed = None
            if statement.sort_by is None:
                streamed = self._text_stream(statement, compiled, plain, limit)
            elif statement.descending:
                streamed = self._text_topk(statement, compiled, plain, limit)
            if streamed is not None:
                self._rows_returned.inc(len(streamed))
                return streamed

        if compiled is not None:
            bindings_iter = self._compiled_bindings(compiled)
        else:
            bindings_iter = self._bindings_for(used, statement.where)

        # Bounded execution under `limit`: an unsorted retrieve stops
        # consuming bindings as soon as enough rows exist (the join
        # generator is abandoned, so candidates after the cut are never
        # visited); a sorted one routes rows through a bounded
        # selection holding `limit` entries instead of materializing
        # and sorting everything.  `unique` and aggregates still need
        # the full row set -- only the final output is truncated.
        selector = None
        stop_after = None
        unique_seen = None
        unique_count = 0
        if limit is not None and not aggregates:
            if statement.sort_by is not None:
                if not statement.unique:
                    selector = _BoundedSort(limit, statement.descending)
            elif statement.unique:
                unique_seen = set()
            else:
                stop_after = limit

        rows = []
        for bindings in bindings_iter:
            record = {}
            for name, fn in plain:
                record[name] = fn(self, bindings)
            sort_key = sort_fn(self, bindings) if sort_fn is not None else None
            if selector is not None:
                selector.offer(record, sort_key)
                continue
            aggregate_inputs = {}
            for aggregate in aggregates:
                if aggregate.arg_fn is None:
                    raise QueryError(
                        "aggregate %s takes exactly one argument"
                        % aggregate.function_name
                    )
                aggregate_inputs[aggregate.name] = aggregate.arg_fn(
                    self, bindings
                )
            rows.append((record, sort_key, aggregate_inputs))
            if stop_after is not None and len(rows) >= stop_after:
                break
            if unique_seen is not None:
                key = _record_key(record)
                if key is None or key not in unique_seen:
                    if key is not None:
                        unique_seen.add(key)
                    unique_count += 1
                    if unique_count >= limit:
                        break

        if aggregates:
            out = self._aggregate_rows(rows, bool(plain), aggregates)
            if limit is not None:
                out = out[:limit]
            self._rows_returned.inc(len(out))
            return out

        if selector is not None:
            out = selector.records
        else:
            if statement.sort_by is not None:
                rows.sort(
                    key=lambda item: _sortable(item[1]),
                    reverse=statement.descending,
                )
            out = [record for record, _, _ in rows]
            if statement.unique:
                out = _dedupe(out)
            if limit is not None:
                out = out[:limit]
        self._rows_returned.inc(len(out))
        return out

    # -- streaming top-k text retrieval ---------------------------------------------

    def _topk_spec(self, statement):
        """Match a sort key of ``similarity(v.attr, "literal")``.

        Returns ``(variable, attribute, query)`` when the shape fits,
        else None.  Only this shape has a posting-count upper bound
        (:meth:`SimilarityScorer.bound`), which is what lets the top-k
        path stop fetching rows early.
        """
        sort_by = statement.sort_by
        if not (
            isinstance(sort_by, ast.FunctionCall)
            and sort_by.name == "similarity"
            and len(sort_by.arguments) == 2
        ):
            return None
        target, literal = sort_by.arguments
        if not (
            isinstance(target, ast.AttributeRef)
            and isinstance(literal, ast.Literal)
            and isinstance(literal.value, str)
        ):
            return None
        return target.variable, target.attribute, literal.value

    def _text_range_setup(self, statement, compiled):
        """Shared analysis for the streaming text paths.

        Both streaming operators only handle the single-entity-variable
        shape with at least one pushable text gate and no equality
        restriction (equality would change the candidate set).  Returns
        ``(variable, declared, text_restrictions, checks, gates)`` where
        *checks* are the row-level conjunct truth tests and *gates* the
        variable-free ones; None when the shape does not fit.
        """
        if compiled is not None:
            used = list(compiled.used)
        else:
            used, _ = self._plan_parts(statement)
        if len(used) != 1:
            return None
        variable = used[0]
        declared = self._range_for(variable)
        if declared.kind != "entity":
            return None
        if compiled is not None:
            if compiled.restrictions.get(variable):
                return None
            text_restrictions = compiled.text_restrictions.get(variable, ())
            checks = [c.truth for c in compiled.conjuncts if c.variables]
            gates = [c.truth for c in compiled.conjuncts if not c.variables]
        else:
            conjuncts = planner.split_conjuncts(statement.where)
            text_restrictions = []
            checks = []
            gates = []
            for conjunct in conjuncts:
                if planner.equality_restriction(conjunct, variable) is not None:
                    return None
                text = planner.text_restriction(conjunct, variable)
                if text is not None:
                    text_restrictions.append(text)
                truth = (
                    lambda rt, bindings, node=conjunct:
                    rt._truth(node, bindings)
                )
                if planner.variables_in(conjunct):
                    checks.append(truth)
                else:
                    gates.append(truth)
        if not text_restrictions:
            return None
        return variable, declared, text_restrictions, checks, gates

    def _text_stream(self, statement, compiled, plain, limit):
        """Lazy first-N for unsorted ``limit N`` text retrieves, or None.

        Applies to ``retrieve (...) where matches(v.attr, "q") ... limit
        N`` with no sort: instead of materializing the full gate
        candidate set (which grows with the table) the rarest ``matches``
        gate's posting intersection is consumed *lazily* — the galloping
        merge only advances far enough to produce N verified rows.  The
        work done is proportional to the limit, not the catalog, which
        is what keeps first-page search flat from 120k to 1M rows.

        Row order matches the generic index-text path exactly: both
        visit candidates in ascending rowid order.
        """
        if not self.use_indexes or not self.use_topk:
            return None
        database = self.schema.database
        if database.transactions.current_snapshot() is not None:
            return None
        setup = self._text_range_setup(statement, compiled)
        if setup is None:
            return None
        variable, declared, text_restrictions, checks, gates = setup
        table = declared.entity_type.table
        best = None
        for attribute, operator, query, _threshold in text_restrictions:
            if operator != "matches":
                continue
            index = table.text_index_for(attribute)
            if index is None:
                continue
            estimate = index.estimate_matching(query)
            if estimate is None:
                continue
            if best is None or estimate < best[0]:
                best = (estimate, index, query)
        if best is None:
            return None
        estimate, index, query = best
        stream = index.iter_matching(query)
        if stream is None:
            return None
        database.read_table(table.name)
        self._last_plan = planner.build_plan(
            [variable], {variable: estimate}, {variable: "index text stream"}
        )
        self._text_searches.inc()
        limits = self.limits
        entity_type = declared.entity_type
        for gate in gates:
            if not gate(self, {}):
                return []
        out = []
        batch = []
        chunk = max(limit, 64)

        def drain(batch):
            self._text_candidates.inc(len(batch))
            for row in table.get_many(batch):
                if limits is not None:
                    limits.tick()
                instance = EntityInstance(
                    entity_type, row[SURROGATE_COLUMN], row.rowid
                )
                bindings = {variable: instance}
                passed = True
                for check in checks:
                    if not check(self, bindings):
                        passed = False
                        break
                if not passed:
                    continue
                record = {}
                for name, fn in plain:
                    record[name] = fn(self, bindings)
                out.append(record)
                if len(out) >= limit:
                    return True
            return False

        for rowid in stream:
            batch.append(rowid)
            if len(batch) >= chunk:
                if drain(batch):
                    return out
                batch = []
        if batch:
            drain(batch)
        return out

    def _text_topk(self, statement, compiled, plain, limit):
        """Streaming top-k for ranked text retrieves, or None.

        Applies to ``retrieve (...) where <text gates on v> sort by
        similarity(v.attr, "q") descending limit N`` over a single
        entity variable.  Instead of materializing every candidate and
        sorting, candidates are bucketed by their *exact* trigram
        overlap with the query (posting-list counts -- no row is
        fetched), buckets are drained best-bound-first, and the scan
        stops once the Nth-best score already beats the next bucket's
        upper bound.  Low-scoring candidates are never fetched via
        ``get_many`` at all, which is where the 1M-row win comes from.

        Tie-breaking matches the materialize-then-stable-sort path
        exactly: equal scores order by rowid, which is the order the
        generic path visits index candidates in.
        """
        spec = self._topk_spec(statement)
        if spec is None or not self.use_indexes or not self.use_topk:
            return None
        variable, attribute, query = spec
        database = self.schema.database
        if database.transactions.current_snapshot() is not None:
            return None
        # The fold below replicates the *builtin* similarity();
        # sessions that rebound the name keep the generic path.
        if self.functions.scalar("similarity") is not scalar_similarity:
            return None
        setup = self._text_range_setup(statement, compiled)
        if setup is None or setup[0] != variable:
            return None
        _, declared, text_restrictions, checks, gates = setup
        table = declared.entity_type.table
        scorer_index = table.text_index_for(attribute)
        if scorer_index is None:
            return None
        scorer = SimilarityScorer(query)
        if not scorer.grams:
            return None  # sub-trigram query: no overlap bound exists
        database.read_table(table.name)
        rowids, _ = _text_rowids(table, text_restrictions)
        if rowids is None:
            return None
        self._last_plan = planner.build_plan(
            [variable], {variable: len(rowids)}, {variable: "index text topk"}
        )
        self._text_searches.inc()
        self._text_candidates.inc(len(rowids))
        for gate in gates:
            if not gate(self, {}):
                return []
        if not rowids:
            return []
        limits = self.limits
        entity_type = declared.entity_type
        # Score each candidate's upper bound from posting data alone
        # (gram overlap + stored row gram count; no row is fetched) and
        # visit candidates best-bound-first in fixed-size chunks.
        overlaps = scorer_index.overlap_counts(scorer.grams, rowids)
        ranked = sorted(
            (-scorer.bound_with(overlap, scorer_index.row_gram_count(rowid)),
             rowid)
            for rowid, overlap in overlaps.items()
        )
        # keys hold (-score, rowid): ascending order == score
        # descending, rowid ascending -- the stable-sort tie order.
        keys = []
        kept = []
        chunk = max(limit, 64)
        for start in range(0, len(ranked), chunk):
            if len(keys) >= limit and -ranked[start][0] < -keys[-1][0]:
                break  # no remaining candidate can beat the Nth score
            batch = sorted(rowid for _, rowid in ranked[start:start + chunk])
            for row in table.get_many(batch):
                if limits is not None:
                    limits.tick()
                instance = EntityInstance(
                    entity_type, row[SURROGATE_COLUMN], row.rowid
                )
                bindings = {variable: instance}
                passed = True
                for check in checks:
                    if not check(self, bindings):
                        passed = False
                        break
                if not passed:
                    continue
                entry = (-scorer(row.get(attribute)), row.rowid)
                if len(keys) >= limit and entry >= keys[-1]:
                    continue
                at = bisect_left(keys, entry)
                keys.insert(at, entry)
                kept.insert(at, bindings)
                if len(keys) > limit:
                    keys.pop()
                    kept.pop()
        out = []
        for bindings in kept:
            record = {}
            for name, fn in plain:
                record[name] = fn(self, bindings)
            out.append(record)
        return out

    def _aggregate_rows(self, rows, has_plain, aggregates):
        """Aggregate semantics: no plain targets => one global row;
        otherwise group by the plain-target values."""
        groups = {}
        order = []
        for record, _, aggregate_inputs in rows:
            key = tuple(sorted(record.items(), key=lambda kv: kv[0]))
            if key not in groups:
                groups[key] = (record, {name: [] for name in aggregate_inputs})
                order.append(key)
            for name, value in aggregate_inputs.items():
                groups[key][1][name].append(value)
        if not has_plain and not rows:
            # Aggregates over an empty result still produce one row.
            record = {}
            for aggregate in aggregates:
                function = self.functions.aggregate(aggregate.function_name)
                record[aggregate.name] = function([])
            return [record]
        out = []
        for key in order:
            record, inputs = groups[key]
            result = dict(record)
            for aggregate in aggregates:
                function = self.functions.aggregate(aggregate.function_name)
                result[aggregate.name] = function(inputs.get(aggregate.name, []))
            out.append(result)
        return out

    def _assignment_fns(self, statement, compiled):
        if compiled is not None:
            return compiled.assignments
        return [
            (name, self._evaluator(expression))
            for name, expression in statement.assignments
        ]

    def _append(self, statement, compiled=None):
        entity_type = self.schema.entity_type(statement.entity_type)
        assignments = self._assignment_fns(statement, compiled)
        if compiled is not None:
            bindings_iter = self._compiled_bindings(compiled)
        else:
            used = set()
            for _, expression in statement.assignments:
                used |= planner.variables_in(expression)
            used |= planner.variables_in(statement.where)
            bindings_iter = self._bindings_for(sorted(used), statement.where)
        count = 0
        for bindings in bindings_iter:
            values = {name: fn(self, bindings) for name, fn in assignments}
            entity_type.create(**values)
            count += 1
        return count

    def _matching_instances(self, variable, where, extra_targets=(),
                            compiled=None):
        """Distinct instances of *variable* satisfying *where*."""
        if compiled is not None:
            bindings_iter = self._compiled_bindings(compiled)
        else:
            used = {variable}
            used |= planner.variables_in(where)
            for expression in extra_targets:
                used |= planner.variables_in(expression)
            bindings_iter = self._bindings_for(sorted(used), where)
        seen = {}
        for bindings in bindings_iter:
            bound = bindings[variable]
            if not isinstance(bound, EntityInstance):
                raise QueryError("%r is not an entity range variable" % variable)
            seen.setdefault(bound.surrogate, (bound, dict(bindings)))
        return list(seen.values())

    def _replace(self, statement, compiled=None):
        expressions = [e for _, e in statement.assignments]
        assignments = self._assignment_fns(statement, compiled)
        matches = self._matching_instances(
            statement.variable, statement.where, expressions, compiled=compiled
        )
        for instance, bindings in matches:
            updates = {name: fn(self, bindings) for name, fn in assignments}
            instance.set(**updates)
        return len(matches)

    def _delete(self, statement, compiled=None):
        matches = self._matching_instances(
            statement.variable, statement.where, compiled=compiled
        )
        for instance, _ in matches:
            # Remove from orderings/relationships first so the delete is legal.
            for ordering in self.schema.orderings.values():
                if instance.type.name in ordering.child_types and ordering.contains(
                    instance
                ):
                    ordering.remove(instance)
            for relationship in self.schema.relationships.values():
                for role, type_name in relationship.roles:
                    if type_name == instance.type.name:
                        relationship.unrelate(**{role: instance})
            instance.delete()
        return len(matches)


def _sortable(value):
    from repro.storage.values import value_sort_key

    return value_sort_key(value)


def _record_key(record):
    """Hashable identity of a result record, or None (unhashable values
    never dedupe -- they are always distinct)."""
    key = tuple(sorted(record.items(), key=lambda kv: kv[0]))
    try:
        hash(key)
    except TypeError:
        return None
    return key


def _dedupe(records):
    seen = set()
    out = []
    for record in records:
        key = _record_key(record)
        if key is None:
            out.append(record)
            continue
        if key not in seen:
            seen.add(key)
            out.append(record)
    return out


class _Reversed:
    """Inverts comparisons so a descending sort key can live inside an
    ascending bounded-selection list (`functools.cmp_to_key` without
    the per-compare lambda)."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __eq__(self, other):
        return self.key == other.key

    def __ne__(self, other):
        return self.key != other.key

    def __lt__(self, other):
        return other.key < self.key

    def __le__(self, other):
        return other.key <= self.key

    def __gt__(self, other):
        return other.key > self.key

    def __ge__(self, other):
        return other.key >= self.key


class _BoundedSort:
    """Bounded selection for ``sort by ... limit N``.

    Keeps the N best ``(key, seq)`` entries in a sorted list; *seq* is
    arrival order, which reproduces the stable full-sort's tie-breaking
    exactly.  A ranked retrieve over a million bindings holds N records
    instead of materializing everything and sorting at the end.
    """

    __slots__ = ("limit", "keys", "records", "descending", "_seq")

    def __init__(self, limit, descending):
        self.limit = limit
        self.descending = descending
        self.keys = []
        self.records = []
        self._seq = 0

    def offer(self, record, sort_key):
        key = _sortable(sort_key)
        if self.descending:
            key = _Reversed(key)
        entry = (key, self._seq)
        self._seq += 1
        if len(self.keys) >= self.limit and not entry < self.keys[-1]:
            return
        at = bisect_left(self.keys, entry)
        self.keys.insert(at, entry)
        self.records.insert(at, record)
        if len(self.keys) > self.limit:
            self.keys.pop()
            self.records.pop()


def execute_quel(source, schema):
    """One-shot convenience: run a QUEL program against *schema*."""
    return QuelSession(schema).execute(source)
