"""Statement and plan caches for the compiled QUEL pipeline.

Two layers, mirroring System R's compile-once/execute-many split:

* :class:`StatementCache` -- per session.  Maps raw source text to its
  parsed statement list, so repeated traffic skips the parser entirely.
* :class:`PlanCache` -- per database, shared by every session.  Maps a
  (statement fingerprint, range-binding shape, function-registry
  version) key to a compiled plan, pinned to the database's schema
  epoch.  DDL -- ``define entity``/``define relationship``/``define
  ordering``, index creation, attribute widening -- bumps the epoch, so
  a stale entry is detected on the next lookup, counted as an
  invalidation, and recompiled.

Counters surface through the shared MetricsRegistry as
``quel.cache.{hits,misses,invalidations}`` (plan cache) and
``quel.cache.statement_{hits,misses}`` (statement cache).
"""

import threading
from collections import OrderedDict


class PlanSlot:
    """A session-local fast path: the last (epoch, functions-version,
    ranges-version, compiled plan) seen for one cached statement,
    letting the hot loop skip fingerprinting entirely when nothing
    changed."""

    __slots__ = ("epoch", "functions_version", "ranges_version", "compiled")

    def __init__(self):
        self.epoch = None
        self.functions_version = None
        self.ranges_version = None
        self.compiled = None


class StatementCacheEntry:
    """One cached parse: the statement list plus a plan slot apiece."""

    __slots__ = ("statements", "slots")

    def __init__(self, statements):
        self.statements = statements
        # One PlanSlot per statement, same order.
        self.slots = [PlanSlot() for _ in statements]


class StatementCache:
    """LRU source-text -> parsed-statements cache (one per session)."""

    def __init__(self, metrics, capacity=256):
        self._entries = OrderedDict()
        self._capacity = capacity
        self._lock = threading.Lock()
        self.hits = metrics.counter("quel.cache.statement_hits")
        self.misses = metrics.counter("quel.cache.statement_misses")

    def __len__(self):
        return len(self._entries)

    def lookup(self, source):
        with self._lock:
            entry = self._entries.get(source)
            if entry is None:
                self.misses.inc()
                return None
            self._entries.move_to_end(source)
            self.hits.inc()
            return entry

    def store(self, source, statements):
        entry = StatementCacheEntry(statements)
        with self._lock:
            self._entries[source] = entry
            self._entries.move_to_end(source)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
        return entry

    def clear(self):
        with self._lock:
            self._entries.clear()


class PlanCache:
    """LRU compiled-plan cache (one per database, epoch-validated)."""

    def __init__(self, metrics, capacity=512):
        self._entries = OrderedDict()
        self._capacity = capacity
        self._lock = threading.Lock()
        self.hits = metrics.counter("quel.cache.hits")
        self.misses = metrics.counter("quel.cache.misses")
        self.invalidations = metrics.counter("quel.cache.invalidations")

    def __len__(self):
        return len(self._entries)

    def get(self, key, epoch):
        """The cached plan for *key* at *epoch*, or None.  A stale entry
        (compiled under an older epoch) counts as an invalidation plus a
        miss and is dropped."""
        with self._lock:
            found = self._entries.get(key)
            if found is None:
                self.misses.inc()
                return None
            entry_epoch, compiled = found
            if entry_epoch != epoch:
                del self._entries[key]
                self.invalidations.inc()
                self.misses.inc()
                return None
            self._entries.move_to_end(key)
            self.hits.inc()
            return compiled

    def put(self, key, epoch, compiled):
        with self._lock:
            self._entries[key] = (epoch, compiled)
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def clear(self):
        with self._lock:
            self._entries.clear()


def plan_cache_for(database, metrics):
    """The database-wide plan cache, created on first use.  Falls back
    to a private cache when the schema has no backing database (bare
    in-memory schemas in tests)."""
    if database is None:
        return PlanCache(metrics)
    cache = getattr(database, "_quel_plan_cache", None)
    if cache is None:
        cache = PlanCache(metrics)
        database._quel_plan_cache = cache
    return cache
