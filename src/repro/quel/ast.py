"""AST nodes for QUEL statements, expressions, and qualifications."""


class RangeStatement:
    """``range of v1, v2 is TYPE``"""

    __slots__ = ("variables", "entity_type")

    def __init__(self, variables, entity_type):
        self.variables = list(variables)
        self.entity_type = entity_type

    def __repr__(self):
        return "range of %s is %s" % (", ".join(self.variables), self.entity_type)


class RetrieveStatement:
    """``retrieve [unique] (targets) [where qual]
    [sort by expr [descending]] [limit N]``"""

    __slots__ = ("targets", "where", "unique", "sort_by", "descending", "limit")

    def __init__(self, targets, where=None, unique=False, sort_by=None,
                 descending=False, limit=None):
        self.targets = list(targets)
        self.where = where
        self.unique = unique
        self.sort_by = sort_by
        self.descending = descending
        self.limit = limit

    def __repr__(self):
        return "retrieve (%d targets)" % len(self.targets)


class AppendStatement:
    """``append to TYPE (attr = expr, ...) [where qual]``"""

    __slots__ = ("entity_type", "assignments", "where")

    def __init__(self, entity_type, assignments, where=None):
        self.entity_type = entity_type
        self.assignments = list(assignments)
        self.where = where


class ReplaceStatement:
    """``replace var (attr = expr, ...) [where qual]``"""

    __slots__ = ("variable", "assignments", "where")

    def __init__(self, variable, assignments, where=None):
        self.variable = variable
        self.assignments = list(assignments)
        self.where = where


class DeleteStatement:
    """``delete var [where qual]``"""

    __slots__ = ("variable", "where")

    def __init__(self, variable, where=None):
        self.variable = variable
        self.where = where


class ExplainStatement:
    """``explain [analyze] <statement>`` -- show the plan; with
    ``analyze``, also execute and report actual rows/visits/timing."""

    __slots__ = ("statement", "analyze")

    def __init__(self, statement, analyze=False):
        self.statement = statement
        self.analyze = analyze

    def __repr__(self):
        return "explain%s %r" % (" analyze" if self.analyze else "", self.statement)


class Target:
    """One retrieve target: an expression with an optional result name."""

    __slots__ = ("name", "expression")

    def __init__(self, name, expression):
        self.name = name
        self.expression = expression


# -- expressions ------------------------------------------------------------


class Literal:
    """A constant value (number or string)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return "Literal(%r)" % (self.value,)


class AttributeRef:
    """``variable.attribute``"""

    __slots__ = ("variable", "attribute")

    def __init__(self, variable, attribute):
        self.variable = variable
        self.attribute = attribute

    def __repr__(self):
        return "%s.%s" % (self.variable, self.attribute)


class VariableRef:
    """A bare range variable used as an entity operand."""

    __slots__ = ("variable",)

    def __init__(self, variable):
        self.variable = variable

    def __repr__(self):
        return "VariableRef(%s)" % self.variable


class BinaryOp:
    """Arithmetic: ``left (+|-|*|/|%) right``"""

    __slots__ = ("operator", "left", "right")

    def __init__(self, operator, left, right):
        self.operator = operator
        self.left = left
        self.right = right


class FunctionCall:
    """Scalar or aggregate function application."""

    __slots__ = ("name", "arguments")

    def __init__(self, name, arguments):
        self.name = name
        self.arguments = list(arguments)

    def __repr__(self):
        return "%s(%d args)" % (self.name, len(self.arguments))


# -- qualifications ------------------------------------------------------------


class Comparison:
    """``left (=|!=|<|<=|>|>=) right`` over value expressions."""

    __slots__ = ("operator", "left", "right")

    def __init__(self, operator, left, right):
        self.operator = operator
        self.left = left
        self.right = right


class IsClause:
    """``a is b`` -- entity equivalence (GEM's operator)."""

    __slots__ = ("left", "right")

    def __init__(self, left, right):
        self.left = left
        self.right = right


class OrderClause:
    """``a before|after b [in order_name]`` (section 5.6)."""

    __slots__ = ("operator", "left", "right", "order_name")

    def __init__(self, operator, left, right, order_name=None):
        self.operator = operator  # "before" or "after"
        self.left = left
        self.right = right
        self.order_name = order_name


class UnderClause:
    """``child under parent [in order_name]`` (section 5.6)."""

    __slots__ = ("child", "parent", "order_name")

    def __init__(self, child, parent, order_name=None):
        self.child = child
        self.parent = parent
        self.order_name = order_name


class MatchClause:
    """Text-search gate: ``matches(v.attr, "q")`` or
    ``similar_to(v.attr, "q", threshold)`` used as a qualification.

    *operator* is ``"matches"`` (normalized substring containment) or
    ``"similar_to"`` (trigram Jaccard >= *threshold*; threshold is
    None for ``matches``).  The query and threshold are literals, so
    the planner can lower the gate onto a trigram index at compile
    time.
    """

    __slots__ = ("operator", "variable", "attribute", "query", "threshold")

    def __init__(self, operator, variable, attribute, query, threshold=None):
        self.operator = operator
        self.variable = variable
        self.attribute = attribute
        self.query = query
        self.threshold = threshold

    def __repr__(self):
        if self.operator == "matches":
            return "matches(%s.%s, %r)" % (
                self.variable, self.attribute, self.query
            )
        return "similar_to(%s.%s, %r, %r)" % (
            self.variable, self.attribute, self.query, self.threshold
        )


class And:
    """Conjunction of two qualifications."""

    __slots__ = ("left", "right")

    def __init__(self, left, right):
        self.left = left
        self.right = right


class Or:
    """Disjunction of two qualifications."""

    __slots__ = ("left", "right")

    def __init__(self, left, right):
        self.left = left
        self.right = right


class Not:
    """Negation of a qualification."""

    __slots__ = ("operand",)

    def __init__(self, operand):
        self.operand = operand
