"""Recursive-descent parser for QUEL with the ordering extensions."""

from repro.errors import ParseError
from repro.lang.lexer import Lexer, TokenStream, TokenType
from repro.quel import ast

_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}
_KEYWORDS = {
    "range", "of", "is", "retrieve", "unique", "where", "append", "to",
    "replace", "delete", "and", "or", "not", "before", "after", "under",
    "in", "sort", "by", "descending", "limit", "explain", "analyze",
}


def parse_quel(source):
    """Parse a QUEL program; returns a list of statement AST nodes."""
    stream = TokenStream(Lexer(source).tokens())
    statements = []
    while not stream.at_end():
        while stream.accept_symbol(";"):
            pass
        if stream.at_end():
            break
        statements.append(_statement(stream))
    return statements


def _statement(stream):
    token = stream.peek()
    if token.matches_keyword("explain"):
        return _explain_statement(stream)
    if token.matches_keyword("range"):
        return _range_statement(stream)
    if token.matches_keyword("retrieve"):
        return _retrieve_statement(stream)
    if token.matches_keyword("append"):
        return _append_statement(stream)
    if token.matches_keyword("replace"):
        return _replace_statement(stream)
    if token.matches_keyword("delete"):
        return _delete_statement(stream)
    raise ParseError(
        "expected a QUEL statement, found %r" % token.value, token.line, token.column
    )


def _explain_statement(stream):
    token = stream.expect_keyword("explain")
    analyze = stream.accept_keyword("analyze") is not None
    if stream.peek().matches_keyword("explain"):
        raise ParseError(
            "explain cannot be nested", token.line, token.column
        )
    return ast.ExplainStatement(_statement(stream), analyze)


def _range_statement(stream):
    stream.expect_keyword("range")
    stream.expect_keyword("of")
    variables = [stream.expect_identifier("range variable").value]
    while stream.accept_symbol(","):
        variables.append(stream.expect_identifier("range variable").value)
    stream.expect_keyword("is")
    entity_type = stream.expect_identifier("entity type").value
    return ast.RangeStatement(variables, entity_type)


def _retrieve_statement(stream):
    stream.expect_keyword("retrieve")
    unique = stream.accept_keyword("unique") is not None
    stream.expect_symbol("(")
    targets = [_target(stream)]
    while stream.accept_symbol(","):
        targets.append(_target(stream))
    stream.expect_symbol(")")
    where = None
    if stream.accept_keyword("where"):
        where = _qualification(stream)
    sort_by = None
    descending = False
    if stream.accept_keyword("sort"):
        stream.expect_keyword("by")
        sort_by = _expression(stream)
        descending = stream.accept_keyword("descending") is not None
    limit = None
    if stream.accept_keyword("limit"):
        limit = _limit_count(stream)
    return ast.RetrieveStatement(
        targets, where, unique, sort_by, descending, limit
    )


def _limit_count(stream):
    """The ``limit`` operand: a positive integer literal, nothing else."""
    token = stream.peek()
    if token.type is TokenType.NUMBER and isinstance(token.value, int):
        if token.value > 0:
            stream.next()
            return token.value
    raise ParseError(
        "limit takes a positive integer, found %r" % (token.value,),
        token.line, token.column,
    )


def _target(stream):
    # Either  name = expression  or a bare expression.
    token = stream.peek()
    if (
        token.type is TokenType.IDENT
        and token.value.lower() not in _KEYWORDS
        and stream.peek(1).type is TokenType.SYMBOL
        and stream.peek(1).value == "="
    ):
        name = stream.next().value
        stream.next()  # "="
        return ast.Target(name, _expression(stream))
    expression = _expression(stream)
    return ast.Target(_default_target_name(expression), expression)


def _default_target_name(expression):
    if isinstance(expression, ast.AttributeRef):
        return "%s.%s" % (expression.variable, expression.attribute)
    if isinstance(expression, ast.VariableRef):
        return expression.variable
    if isinstance(expression, ast.FunctionCall):
        return expression.name
    return "expr"


def _assignment_list(stream):
    stream.expect_symbol("(")
    assignments = []
    while True:
        name = stream.expect_identifier("attribute name").value
        stream.expect_symbol("=")
        assignments.append((name, _expression(stream)))
        if stream.accept_symbol(","):
            continue
        stream.expect_symbol(")")
        return assignments


def _append_statement(stream):
    stream.expect_keyword("append")
    stream.expect_keyword("to")
    entity_type = stream.expect_identifier("entity type").value
    assignments = _assignment_list(stream)
    where = None
    if stream.accept_keyword("where"):
        where = _qualification(stream)
    return ast.AppendStatement(entity_type, assignments, where)


def _replace_statement(stream):
    stream.expect_keyword("replace")
    variable = stream.expect_identifier("range variable").value
    assignments = _assignment_list(stream)
    where = None
    if stream.accept_keyword("where"):
        where = _qualification(stream)
    return ast.ReplaceStatement(variable, assignments, where)


def _delete_statement(stream):
    stream.expect_keyword("delete")
    variable = stream.expect_identifier("range variable").value
    where = None
    if stream.accept_keyword("where"):
        where = _qualification(stream)
    return ast.DeleteStatement(variable, where)


# -- qualifications ---------------------------------------------------------


def _qualification(stream):
    return _or_expression(stream)


def _or_expression(stream):
    left = _and_expression(stream)
    while stream.accept_keyword("or"):
        left = ast.Or(left, _and_expression(stream))
    return left


def _and_expression(stream):
    left = _not_expression(stream)
    while stream.accept_keyword("and"):
        left = ast.And(left, _not_expression(stream))
    return left


def _not_expression(stream):
    if stream.accept_keyword("not"):
        return ast.Not(_not_expression(stream))
    return _condition(stream)


def _condition(stream):
    # Parenthesized sub-qualification vs parenthesized value expression:
    # try the qualification reading first; a value expression alone is
    # not a valid condition anyway.
    if stream.accept_symbol("("):
        inner = _qualification(stream)
        stream.expect_symbol(")")
        return inner
    left = _expression(stream)
    token = stream.peek()
    if token.matches_keyword("is"):
        stream.next()
        right = _expression(stream)
        return ast.IsClause(_as_entity_operand(left, token), _as_entity_operand(right, token))
    if token.matches_keyword("before") or token.matches_keyword("after"):
        operator = stream.next().value.lower()
        right = _expression(stream)
        order_name = _optional_order_name(stream)
        return ast.OrderClause(
            operator,
            _as_entity_operand(left, token),
            _as_entity_operand(right, token),
            order_name,
        )
    if token.matches_keyword("under"):
        stream.next()
        right = _expression(stream)
        order_name = _optional_order_name(stream)
        return ast.UnderClause(
            _as_entity_operand(left, token), _as_entity_operand(right, token), order_name
        )
    if token.type is TokenType.SYMBOL and token.value in _COMPARISON_OPS:
        operator = stream.next().value
        right = _expression(stream)
        return ast.Comparison(operator, left, right)
    if (
        isinstance(left, ast.FunctionCall)
        and left.name in ("matches", "similar_to")
    ):
        return _match_clause(left, token)
    raise ParseError(
        "expected a comparison or entity operator, found %r" % token.value,
        token.line,
        token.column,
    )


def _match_clause(call, token):
    """Validate a bare ``matches``/``similar_to`` call as a gate.

    The strict literal shape — ``matches(v.attr, "q")`` /
    ``similar_to(v.attr, "q", t)`` — is what lets the compiler lower
    the gate onto a trigram index; anything looser parses as an error
    here rather than silently becoming an unlowerable predicate.
    """
    expected = 2 if call.name == "matches" else 3
    if len(call.arguments) != expected:
        raise ParseError(
            "%s takes %d arguments, got %d"
            % (call.name, expected, len(call.arguments)),
            token.line, token.column,
        )
    target = call.arguments[0]
    if not isinstance(target, ast.AttributeRef):
        raise ParseError(
            "%s needs a variable.attribute first argument" % call.name,
            token.line, token.column,
        )
    query = call.arguments[1]
    if not isinstance(query, ast.Literal) or not isinstance(query.value, str):
        raise ParseError(
            "%s needs a string-literal query" % call.name,
            token.line, token.column,
        )
    threshold = None
    if call.name == "similar_to":
        arg = call.arguments[2]
        if not isinstance(arg, ast.Literal) or isinstance(arg.value, str):
            raise ParseError(
                "similar_to needs a numeric-literal threshold",
                token.line, token.column,
            )
        threshold = float(arg.value)
    return ast.MatchClause(
        call.name, target.variable, target.attribute, query.value, threshold
    )


def _optional_order_name(stream):
    if stream.accept_keyword("in"):
        return stream.expect_identifier("ordering name").value
    return None


def _as_entity_operand(expression, token):
    """Entity operators take range variables (or role references).

    ``COMPOSER.composition is COMPOSITION`` uses a relationship range
    variable's role as an entity operand, so AttributeRef is admitted
    alongside bare range variables; literals and arithmetic are not.
    """
    if isinstance(expression, (ast.VariableRef, ast.AttributeRef)):
        return expression
    raise ParseError(
        "entity operators take range variables, not %r" % (expression,),
        token.line,
        token.column,
    )


# -- value expressions ------------------------------------------------------------


def _expression(stream):
    return _additive(stream)


def _additive(stream):
    left = _multiplicative(stream)
    while True:
        token = stream.peek()
        if token.type is TokenType.SYMBOL and token.value in ("+", "-"):
            stream.next()
            left = ast.BinaryOp(token.value, left, _multiplicative(stream))
        else:
            return left


def _multiplicative(stream):
    left = _unary(stream)
    while True:
        token = stream.peek()
        if token.type is TokenType.SYMBOL and token.value in ("*", "/", "%"):
            stream.next()
            left = ast.BinaryOp(token.value, left, _unary(stream))
        else:
            return left


def _unary(stream):
    token = stream.peek()
    if token.type is TokenType.SYMBOL and token.value == "-":
        stream.next()
        return ast.BinaryOp("-", ast.Literal(0), _unary(stream))
    return _primary(stream)


def _primary(stream):
    token = stream.peek()
    if token.type is TokenType.NUMBER:
        stream.next()
        return ast.Literal(token.value)
    if token.type is TokenType.STRING:
        stream.next()
        return ast.Literal(token.value)
    if token.type is TokenType.SYMBOL and token.value == "(":
        stream.next()
        inner = _expression(stream)
        stream.expect_symbol(")")
        return inner
    if token.type is TokenType.IDENT:
        name = stream.next().value
        if stream.accept_symbol("("):
            arguments = []
            if not stream.accept_symbol(")"):
                arguments.append(_expression(stream))
                while stream.accept_symbol(","):
                    arguments.append(_expression(stream))
                stream.expect_symbol(")")
            return ast.FunctionCall(name.lower(), arguments)
        if stream.accept_symbol("."):
            attribute = stream.expect_identifier("attribute name").value
            return ast.AttributeRef(name, attribute)
        return ast.VariableRef(name)
    raise ParseError(
        "expected an expression, found %r" % token.value, token.line, token.column
    )
