"""Score time vs performance time (section 7.2).

Score time is measured in rhythmic units (beats, exact rationals);
performance time in seconds.  The mapping between them "may be
arbitrarily complex" -- tempo directives (accelerando / ritardando),
style-inherent rubato -- and is established by the :class:`Conductor`.
"""

from repro.temporal.time import ScoreTime, ScoreDuration, PerformanceTime
from repro.temporal.meter import MeterSignature
from repro.temporal.tempo import TempoMap, TempoSegment
from repro.temporal.conductor import Conductor, RubatoWarp

__all__ = [
    "ScoreTime",
    "ScoreDuration",
    "PerformanceTime",
    "MeterSignature",
    "TempoMap",
    "TempoSegment",
    "Conductor",
    "RubatoWarp",
]
