"""Multiple independent time lines and virtual time.

Section 3 grounds the temporal design in systems concerned with
"multiple independent time lines, and virtual time" ([DeK85, MaM70,
Pru84a]).  A :class:`VirtualTimeline` embeds a local score-time frame
into a parent frame by an affine map (offset + rate) -- enough to model
an ossia at double speed, a canon entering two measures later at half
tempo, or nested time frames (a cadenza inside a movement).

Timelines compose: resolving a local time walks up to the root frame,
after which a Conductor maps root score time to performance seconds.
"""

from fractions import Fraction

from repro.errors import NotationError
from repro.temporal.time import ScoreTime


def _fraction(value, what):
    if isinstance(value, ScoreTime):
        return value.beats
    if isinstance(value, bool):
        raise NotationError("%s must be rational" % what)
    if isinstance(value, (int, Fraction)):
        return Fraction(value)
    if isinstance(value, str):
        return Fraction(value)
    raise NotationError("%s must be rational, got %r" % (what, value))


class VirtualTimeline:
    """One time frame; children embed into it affinely.

    A local time ``t`` maps to ``offset + t * rate`` in the parent
    frame: ``rate < 1`` means the local material plays faster (its
    beats occupy less parent time).
    """

    def __init__(self, name="root", parent=None, offset=0, rate=1):
        self.name = name
        self.parent = parent
        self.offset = _fraction(offset, "offset")
        self.rate = _fraction(rate, "rate")
        if self.rate <= 0:
            raise NotationError("timeline rate must be positive")
        self.children = []
        if parent is not None:
            parent.children.append(self)

    def sub_timeline(self, name, offset=0, rate=1):
        """Create a child frame starting at *offset* (parent beats)."""
        return VirtualTimeline(name, parent=self, offset=offset, rate=rate)

    # -- resolution ---------------------------------------------------------------

    def to_parent(self, local_beats):
        return self.offset + _fraction(local_beats, "time") * self.rate

    def from_parent(self, parent_beats):
        return (_fraction(parent_beats, "time") - self.offset) / self.rate

    def to_root(self, local_beats):
        """Resolve a local time all the way up to the root frame."""
        beats = _fraction(local_beats, "time")
        frame = self
        while frame.parent is not None:
            beats = frame.to_parent(beats)
            frame = frame.parent
        return beats

    def from_root(self, root_beats):
        """Inverse of :meth:`to_root`."""
        chain = []
        frame = self
        while frame.parent is not None:
            chain.append(frame)
            frame = frame.parent
        beats = _fraction(root_beats, "time")
        for frame in reversed(chain):
            beats = frame.from_parent(beats)
        return beats

    def root(self):
        frame = self
        while frame.parent is not None:
            frame = frame.parent
        return frame

    def depth(self):
        depth = 0
        frame = self
        while frame.parent is not None:
            depth += 1
            frame = frame.parent
        return depth

    # -- event embedding ---------------------------------------------------------------

    def embed_events(self, events):
        """Map (start_beats, duration_beats, payload) triples from this
        frame into root-frame triples."""
        out = []
        for start, duration, payload in events:
            root_start = self.to_root(start)
            root_end = self.to_root(_fraction(start, "time") +
                                    _fraction(duration, "time"))
            out.append((root_start, root_end - root_start, payload))
        return out

    def performance_schedule(self, events, conductor):
        """Embed local events and convert to seconds via *conductor*."""
        return conductor.schedule(self.embed_events(events))

    def __repr__(self):
        return "VirtualTimeline(%r, offset=%s, rate=%s)" % (
            self.name, self.offset, self.rate,
        )


def independent_timelines(count, root=None, names=None):
    """*count* sibling frames over one root: the "multiple independent
    time lines" configuration."""
    if root is None:
        root = VirtualTimeline("root")
    out = []
    for index in range(count):
        name = names[index] if names else "line %d" % (index + 1)
        out.append(root.sub_timeline(name))
    return root, out
