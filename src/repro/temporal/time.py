"""Exact score time and performance time values.

Score time is a rational number of *beats* (quarter-note units unless a
meter says otherwise) so that triplets and dotted rhythms stay exact;
performance time is a float number of seconds.
"""

from fractions import Fraction
from numbers import Rational

from repro.errors import NotationError


def _as_fraction(value, what):
    if isinstance(value, bool):
        raise NotationError("%s must be rational, got a boolean" % what)
    if isinstance(value, (int, Fraction)):
        return Fraction(value)
    if isinstance(value, Rational):
        return Fraction(value.numerator, value.denominator)
    if isinstance(value, str):
        return Fraction(value)
    if isinstance(value, tuple) and len(value) == 2:
        return Fraction(value[0], value[1])
    raise NotationError("%s must be rational, got %r" % (what, value))


class ScoreTime:
    """A point in score time: beats from the start of the composition."""

    __slots__ = ("beats",)

    def __init__(self, beats):
        self.beats = _as_fraction(beats, "score time")

    def __add__(self, other):
        if isinstance(other, ScoreDuration):
            return ScoreTime(self.beats + other.beats)
        return NotImplemented

    def __sub__(self, other):
        if isinstance(other, ScoreTime):
            return ScoreDuration(self.beats - other.beats)
        if isinstance(other, ScoreDuration):
            return ScoreTime(self.beats - other.beats)
        return NotImplemented

    def __eq__(self, other):
        return isinstance(other, ScoreTime) and self.beats == other.beats

    def __lt__(self, other):
        self._check(other)
        return self.beats < other.beats

    def __le__(self, other):
        self._check(other)
        return self.beats <= other.beats

    def __gt__(self, other):
        self._check(other)
        return self.beats > other.beats

    def __ge__(self, other):
        self._check(other)
        return self.beats >= other.beats

    def _check(self, other):
        if not isinstance(other, ScoreTime):
            raise NotationError("cannot compare ScoreTime with %r" % (other,))

    def __hash__(self):
        return hash(("ScoreTime", self.beats))

    def __repr__(self):
        return "ScoreTime(%s)" % self.beats


class ScoreDuration:
    """A span of score time, in beats (may be zero, never negative)."""

    __slots__ = ("beats",)

    def __init__(self, beats):
        beats = _as_fraction(beats, "score duration")
        if beats < 0:
            raise NotationError("score duration cannot be negative: %s" % beats)
        self.beats = beats

    @classmethod
    def whole_note_fraction(cls, fraction, meter=None):
        """Build from a notated duration (1/4 = quarter note).

        With *meter*, the result is expressed in that meter's beat unit;
        without, quarter-note beats are assumed.
        """
        fraction = _as_fraction(fraction, "duration")
        beat_unit = Fraction(1, 4) if meter is None else meter.beat_unit
        return cls(fraction / beat_unit)

    def __add__(self, other):
        if isinstance(other, ScoreDuration):
            return ScoreDuration(self.beats + other.beats)
        if isinstance(other, ScoreTime):
            return ScoreTime(self.beats + other.beats)
        return NotImplemented

    def __sub__(self, other):
        if isinstance(other, ScoreDuration):
            return ScoreDuration(self.beats - other.beats)
        return NotImplemented

    def __mul__(self, factor):
        return ScoreDuration(self.beats * _as_fraction(factor, "factor"))

    __rmul__ = __mul__

    def __eq__(self, other):
        return isinstance(other, ScoreDuration) and self.beats == other.beats

    def __lt__(self, other):
        return self.beats < other.beats

    def __le__(self, other):
        return self.beats <= other.beats

    def __gt__(self, other):
        return self.beats > other.beats

    def __ge__(self, other):
        return self.beats >= other.beats

    def __hash__(self):
        return hash(("ScoreDuration", self.beats))

    def __repr__(self):
        return "ScoreDuration(%s)" % self.beats


class PerformanceTime:
    """A point in performance time: seconds from the performance start."""

    __slots__ = ("seconds",)

    def __init__(self, seconds):
        seconds = float(seconds)
        if seconds < 0:
            raise NotationError("performance time cannot be negative")
        self.seconds = seconds

    def __eq__(self, other):
        return isinstance(other, PerformanceTime) and self.seconds == other.seconds

    def __lt__(self, other):
        return self.seconds < other.seconds

    def __le__(self, other):
        return self.seconds <= other.seconds

    def __hash__(self):
        return hash(("PerformanceTime", self.seconds))

    def __repr__(self):
        return "PerformanceTime(%.6fs)" % self.seconds
