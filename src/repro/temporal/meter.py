"""Meter signatures: the rhythmic division of measures.

"Where a musical passage has a rhythmic pulse (i.e. a beat), each
measure consists of an integral number of such pulses" (section 7.2).
"""

from fractions import Fraction

from repro.errors import NotationError
from repro.temporal.time import ScoreDuration


class MeterSignature:
    """A meter such as 4/4 or 6/8.

    *numerator* counts pulses per measure; *denominator* names the note
    value of one pulse (4 = quarter, 8 = eighth).  Beats throughout the
    package are quarter-note units, so a 6/8 measure spans 3 beats.
    """

    __slots__ = ("numerator", "denominator")

    def __init__(self, numerator, denominator):
        if numerator < 1:
            raise NotationError("meter numerator must be positive")
        if denominator < 1 or denominator & (denominator - 1):
            raise NotationError(
                "meter denominator must be a positive power of two, got %d"
                % denominator
            )
        self.numerator = numerator
        self.denominator = denominator

    @property
    def beat_unit(self):
        """The notated value of one pulse, as a whole-note fraction."""
        return Fraction(1, self.denominator)

    @property
    def pulses(self):
        """Pulses per measure."""
        return self.numerator

    def measure_duration(self):
        """The span of one measure in quarter-note beats."""
        return ScoreDuration(Fraction(self.numerator * 4, self.denominator))

    def beat_offsets(self):
        """Quarter-note-beat offset of each pulse within the measure."""
        pulse = Fraction(4, self.denominator)
        return [pulse * index for index in range(self.numerator)]

    def contains_offset(self, offset_beats):
        """True iff a quarter-note-beat offset falls inside the measure."""
        return 0 <= offset_beats < self.measure_duration().beats

    @classmethod
    def parse(cls, text):
        """Parse ``"3/4"``-style text."""
        try:
            numerator, denominator = text.strip().split("/")
            return cls(int(numerator), int(denominator))
        except (ValueError, AttributeError):
            raise NotationError("bad meter signature %r" % (text,))

    def __eq__(self, other):
        return (
            isinstance(other, MeterSignature)
            and self.numerator == other.numerator
            and self.denominator == other.denominator
        )

    def __hash__(self):
        return hash((self.numerator, self.denominator))

    def __str__(self):
        return "%d/%d" % (self.numerator, self.denominator)

    def __repr__(self):
        return "MeterSignature(%d, %d)" % (self.numerator, self.denominator)


COMMON_TIME = MeterSignature(4, 4)
CUT_TIME = MeterSignature(2, 2)
