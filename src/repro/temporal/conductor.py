"""The Conductor: "when an orchestra performs, it is the role of the
conductor to establish this relationship between score time and
performance time" (section 7.2).

A Conductor composes a :class:`~repro.temporal.tempo.TempoMap` with
optional expressive warps (rubato) into a bijection between score time
(beats) and performance time (seconds).
"""

import math

from repro.errors import NotationError
from repro.temporal.tempo import TempoMap, _beat_value
from repro.temporal.time import PerformanceTime, ScoreTime


class RubatoWarp:
    """Deterministic rubato: a bounded periodic push-and-pull of time.

    The warp displaces performance time by ``depth * sin(2*pi * beat /
    period)`` seconds.  With ``depth`` small relative to the beat
    duration the composite map stays strictly monotonic; the constructor
    enforces this against the tempo map's fastest tempo so the inverse
    mapping is well defined ("rubato" literally means *robbed* time --
    what is stolen must be given back, hence zero mean).
    """

    def __init__(self, depth_seconds, period_beats=4.0):
        if period_beats <= 0:
            raise NotationError("rubato period must be positive")
        self.depth_seconds = float(depth_seconds)
        self.period_beats = float(period_beats)

    def displacement(self, beat):
        return self.depth_seconds * math.sin(
            2.0 * math.pi * float(beat) / self.period_beats
        )

    def max_slope_seconds_per_beat(self):
        """The steepest |d displacement / d beat|."""
        return abs(self.depth_seconds) * 2.0 * math.pi / self.period_beats


class Conductor:
    """Score-time <-> performance-time mapping with expressive warps."""

    def __init__(self, tempo_map=None, rubato=None):
        self.tempo_map = tempo_map if tempo_map is not None else TempoMap()
        self.rubato = rubato
        if rubato is not None:
            self._check_monotonic()

    def _check_monotonic(self):
        # Fastest tempo bounds the smallest seconds-per-beat slope of the
        # base map; rubato must not steal more than that.
        fastest = max(
            float(max(segment.start_bpm, segment.end_bpm))
            for segment in self.tempo_map.segments()
        )
        min_base_slope = 60.0 / fastest
        if self.rubato.max_slope_seconds_per_beat() >= min_base_slope:
            raise NotationError(
                "rubato depth %.3fs/period %.2f beats would make time "
                "non-monotonic at %g bpm"
                % (self.rubato.depth_seconds, self.rubato.period_beats, fastest)
            )

    # -- forward ---------------------------------------------------------------

    def performance_seconds(self, score_time):
        """Map score time (beats / ScoreTime) to seconds."""
        beat = _beat_value(score_time)
        seconds = self.tempo_map.seconds_at(beat)
        if self.rubato is not None:
            seconds += self.rubato.displacement(beat) - self.rubato.displacement(0.0)
        if seconds < 0:
            seconds = 0.0
        return seconds

    def performance_time(self, score_time):
        return PerformanceTime(self.performance_seconds(score_time))

    # -- inverse -----------------------------------------------------------------

    def score_beats(self, seconds):
        """Map performance seconds back to score beats.

        Exact inverse of the tempo map; with rubato the strictly
        monotonic composite is inverted by bisection.
        """
        if isinstance(seconds, PerformanceTime):
            seconds = seconds.seconds
        if self.rubato is None:
            return self.tempo_map.beat_at(seconds)
        low = 0.0
        high = max(self.tempo_map.beat_at(seconds) * 2.0 + 1.0, 1.0)
        while self.performance_seconds(high) < seconds:
            high *= 2.0
        for _ in range(80):
            middle = (low + high) / 2.0
            if self.performance_seconds(middle) < seconds:
                low = middle
            else:
                high = middle
        return (low + high) / 2.0

    def score_time(self, seconds):
        return ScoreTime_from_float(self.score_beats(seconds))

    # -- schedules ----------------------------------------------------------------

    def schedule(self, events):
        """Convert (start_beats, duration_beats, payload) triples into
        (start_seconds, end_seconds, payload) triples."""
        out = []
        for start_beats, duration_beats, payload in events:
            start = self.performance_seconds(start_beats)
            end = self.performance_seconds(
                _beat_value(start_beats) + _beat_value(duration_beats)
            )
            out.append((start, end, payload))
        return out


def ScoreTime_from_float(beats):
    """A ScoreTime approximating a float beat count (inverse mappings)."""
    from fractions import Fraction

    return ScoreTime(Fraction(beats).limit_denominator(1_000_000))
