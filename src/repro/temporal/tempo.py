"""Tempo maps: the score-time -> performance-time relationship.

A tempo map is a piecewise function of beats.  Constant segments come
from metronome marks; linearly changing segments model *accelerando*
and *ritardando* directives.  Over a linear segment the elapsed seconds
integrate to the classic logarithmic form; both directions of the
mapping are exact and strictly monotonic, which is what makes the map
invertible (the conductor needs both directions).
"""

import math
from fractions import Fraction

from repro.errors import NotationError
from repro.temporal.time import PerformanceTime, ScoreTime


class TempoSegment:
    """Tempo over [start_beat, end_beat): linear bpm interpolation."""

    __slots__ = ("start_beat", "end_beat", "start_bpm", "end_bpm", "start_seconds")

    def __init__(self, start_beat, end_beat, start_bpm, end_bpm, start_seconds):
        self.start_beat = start_beat
        self.end_beat = end_beat  # None = open-ended final segment
        self.start_bpm = start_bpm
        self.end_bpm = end_bpm
        self.start_seconds = start_seconds

    def bpm_at(self, beat):
        if self.end_beat is None or self.start_bpm == self.end_bpm:
            return float(self.start_bpm)
        span = float(self.end_beat - self.start_beat)
        progress = float(beat - self.start_beat) / span
        return float(self.start_bpm) + progress * float(self.end_bpm - self.start_bpm)

    def seconds_into(self, beat):
        """Seconds elapsed from segment start to *beat*."""
        delta = float(beat - self.start_beat)
        if delta <= 0:
            return 0.0
        bpm0 = float(self.start_bpm)
        if self.end_beat is None or self.start_bpm == self.end_bpm:
            return 60.0 * delta / bpm0
        span = float(self.end_beat - self.start_beat)
        bpm1 = float(self.end_bpm)
        slope = (bpm1 - bpm0) / span  # bpm per beat
        bpm_here = bpm0 + slope * delta
        # Integral of 60 / (bpm0 + slope * b) db from 0 to delta.
        return (60.0 / slope) * math.log(bpm_here / bpm0)

    def beats_into(self, seconds):
        """Inverse of :meth:`seconds_into`."""
        if seconds <= 0:
            return 0.0
        bpm0 = float(self.start_bpm)
        if self.end_beat is None or self.start_bpm == self.end_bpm:
            return seconds * bpm0 / 60.0
        span = float(self.end_beat - self.start_beat)
        bpm1 = float(self.end_bpm)
        slope = (bpm1 - bpm0) / span
        return bpm0 * (math.exp(seconds * slope / 60.0) - 1.0) / slope

    def duration_seconds(self):
        if self.end_beat is None:
            return math.inf
        return self.seconds_into(self.end_beat)


class TempoMap:
    """A piecewise tempo function built from directives.

    Directives are added in any order; the map is compiled lazily.
    """

    def __init__(self, initial_bpm=120):
        if initial_bpm <= 0:
            raise NotationError("tempo must be positive")
        self.initial_bpm = Fraction(initial_bpm)
        self._marks = []  # (beat, bpm) metronome marks
        self._ramps = []  # (start_beat, end_beat, end_bpm) accel/rit
        self._segments = None

    # -- directives ---------------------------------------------------------

    def set_tempo(self, beat, bpm):
        """A metronome mark: from *beat* on, play at *bpm*."""
        if bpm <= 0:
            raise NotationError("tempo must be positive")
        self._marks.append((Fraction(beat), Fraction(bpm)))
        self._segments = None
        return self

    def linear_change(self, start_beat, end_beat, end_bpm):
        """*accelerando*/*ritardando*: reach *end_bpm* over the interval."""
        start_beat, end_beat = Fraction(start_beat), Fraction(end_beat)
        if end_beat <= start_beat:
            raise NotationError("tempo change interval must be non-empty")
        if end_bpm <= 0:
            raise NotationError("tempo must be positive")
        self._ramps.append((start_beat, end_beat, Fraction(end_bpm)))
        self._segments = None
        return self

    def accelerando(self, start_beat, end_beat, end_bpm):
        return self.linear_change(start_beat, end_beat, end_bpm)

    def ritardando(self, start_beat, end_beat, end_bpm):
        return self.linear_change(start_beat, end_beat, end_bpm)

    # -- compilation --------------------------------------------------------------

    def _compile(self):
        if self._segments is not None:
            return self._segments
        events = []
        for beat, bpm in self._marks:
            events.append((beat, "mark", bpm, None))
        for start, end, end_bpm in self._ramps:
            events.append((start, "ramp", end_bpm, end))
        events.sort(key=lambda e: (e[0], e[1]))
        segments = []
        current_bpm = self.initial_bpm
        cursor = Fraction(0)
        elapsed = 0.0

        def emit(end_beat, end_bpm):
            nonlocal cursor, current_bpm, elapsed
            if end_beat is not None and end_beat <= cursor:
                current_bpm = end_bpm if end_bpm is not None else current_bpm
                return
            segment = TempoSegment(
                cursor,
                end_beat,
                current_bpm,
                end_bpm if end_bpm is not None else current_bpm,
                elapsed,
            )
            segments.append(segment)
            if end_beat is not None:
                elapsed += segment.duration_seconds()
                cursor = end_beat
                current_bpm = segment.end_bpm if end_bpm is not None else current_bpm

        for beat, kind, bpm, ramp_end in events:
            if beat > cursor:
                emit(beat, None)  # constant run up to the event
            if kind == "mark":
                current_bpm = bpm
            else:
                emit(ramp_end, bpm)
                current_bpm = bpm
        emit(None, None)  # open-ended tail
        self._segments = segments
        return segments

    def segments(self):
        return list(self._compile())

    # -- evaluation ---------------------------------------------------------------------

    def _segment_for_beat(self, beat):
        segments = self._compile()
        for segment in segments:
            if segment.end_beat is None or beat < segment.end_beat:
                if beat >= segment.start_beat:
                    return segment
        return segments[-1]

    def bpm_at(self, beat):
        beat = _beat_value(beat)
        if beat < 0:
            raise NotationError("negative score time")
        return self._segment_for_beat(beat).bpm_at(beat)

    def seconds_at(self, beat):
        """Performance seconds at score-time *beat*."""
        beat = _beat_value(beat)
        if beat < 0:
            raise NotationError("negative score time")
        segment = self._segment_for_beat(beat)
        return segment.start_seconds + segment.seconds_into(beat)

    def beat_at(self, seconds):
        """Score-time beat at performance time *seconds* (inverse map)."""
        if isinstance(seconds, PerformanceTime):
            seconds = seconds.seconds
        if seconds < 0:
            raise NotationError("negative performance time")
        segments = self._compile()
        for segment in segments:
            duration = segment.duration_seconds()
            if seconds < segment.start_seconds + duration or segment.end_beat is None:
                return float(segment.start_beat) + segment.beats_into(
                    seconds - segment.start_seconds
                )
        tail = segments[-1]
        return float(tail.start_beat) + tail.beats_into(seconds - tail.start_seconds)

    def performance_time(self, score_time):
        return PerformanceTime(self.seconds_at(score_time))


def _beat_value(beat):
    if isinstance(beat, ScoreTime):
        return beat.beats
    if isinstance(beat, Fraction):
        return beat
    if isinstance(beat, bool):
        raise NotationError("beats must be numeric")
    if isinstance(beat, (int, float)):
        return Fraction(beat).limit_denominator(1_000_000)
    raise NotationError("bad score time %r" % (beat,))
