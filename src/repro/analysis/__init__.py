"""Music analysis algorithms: the section 2 "music analysis systems"
client archetype, made concrete.

"Systems that perform various sorts of harmonic analysis, or those
that determine melodic structure are examples" -- so this package
provides both: triad identification over syncs (harmonic), melodic
profiles / motif and imitation finding (melodic), and
Krumhansl-Schmuckler key estimation, all computed from the shared
entity representation.
"""

from repro.analysis.harmony import (
    Triad,
    analyze_sync_harmony,
    identify_triad,
    sounding_keys_at,
)
from repro.analysis.melody import (
    find_imitations,
    find_motif,
    interval_profile,
    melodic_contour,
)
from repro.analysis.key_finding import estimate_key, pitch_class_weights
from repro.analysis.roman import progression, roman_numeral, roman_numeral_analysis

__all__ = [
    "Triad",
    "identify_triad",
    "sounding_keys_at",
    "analyze_sync_harmony",
    "interval_profile",
    "melodic_contour",
    "find_motif",
    "find_imitations",
    "estimate_key",
    "pitch_class_weights",
    "roman_numeral",
    "roman_numeral_analysis",
    "progression",
]
