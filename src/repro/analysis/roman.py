"""Roman-numeral labels: triads interpreted in an estimated key.

The classical harmonic-analysis output format: each identified triad is
expressed as a scale-degree numeral (upper case major, lower case
minor, ``o``/``+`` for diminished/augmented) relative to the key the
Krumhansl-Schmuckler estimator finds.
"""

from repro.analysis.harmony import analyze_sync_harmony
from repro.analysis.key_finding import estimate_key

_NUMERALS = ["I", "II", "III", "IV", "V", "VI", "VII"]

#: Semitone offsets of the diatonic degrees.
_MAJOR_DEGREES = {0: 0, 2: 1, 4: 2, 5: 3, 7: 4, 9: 5, 11: 6}
_MINOR_DEGREES = {0: 0, 2: 1, 3: 2, 5: 3, 7: 4, 8: 5, 10: 6, 11: 6}

_PITCH_CLASS = {
    "C": 0, "C#": 1, "Db": 1, "D": 2, "Eb": 3, "E": 4, "F": 5, "F#": 6,
    "Gb": 6, "G": 7, "Ab": 8, "A": 9, "Bb": 10, "B": 11,
}


def roman_numeral(triad, tonic_pc, mode):
    """The numeral of *triad* in the key (None when chromatic)."""
    offset = (triad.root_pc - tonic_pc) % 12
    degrees = _MAJOR_DEGREES if mode == "major" else _MINOR_DEGREES
    degree = degrees.get(offset)
    if degree is None:
        return None
    numeral = _NUMERALS[degree]
    if triad.quality in ("minor", "diminished"):
        numeral = numeral.lower()
    if triad.quality == "diminished":
        numeral += "o"
    elif triad.quality == "augmented":
        numeral += "+"
    return numeral


def roman_numeral_analysis(cmn, score, key=None):
    """Per-sync numerals for *score*.

    *key* is ``(tonic name, mode)``; estimated when omitted.  Returns
    ``[(measure, offset, numeral-or-None)]`` for syncs with triads.
    """
    if key is None:
        tonic_name, mode, _ = estimate_key(cmn, score)
    else:
        tonic_name, mode = key
    tonic_pc = _PITCH_CLASS[tonic_name]
    out = []
    for measure, offset, _, triad in analyze_sync_harmony(cmn, score):
        if triad is None:
            continue
        out.append((measure, offset, roman_numeral(triad, tonic_pc, mode)))
    return out


def progression(cmn, score, key=None):
    """The numeral sequence with consecutive repeats collapsed."""
    out = []
    for _, _, numeral in roman_numeral_analysis(cmn, score, key):
        if numeral is not None and (not out or out[-1] != numeral):
            out.append(numeral)
    return out
