"""Harmonic analysis: triads over syncs.

Each SYNC is a vertical slice (figure 14); the notes *sounding* there
(chords starting at it plus earlier events still ringing) form a
sonority, identified as a triad (major / minor / diminished /
augmented, with inversions) where possible.
"""

from fractions import Fraction

from repro.cmn.events import all_events
from repro.cmn.score import ScoreView

_PITCH_NAMES = ["C", "C#", "D", "Eb", "E", "F", "F#", "G", "Ab", "A", "Bb", "B"]

#: Interval patterns from the root, in semitones.
_TRIAD_PATTERNS = {
    (0, 4, 7): "major",
    (0, 3, 7): "minor",
    (0, 3, 6): "diminished",
    (0, 4, 8): "augmented",
}


class Triad:
    """An identified triad: root pitch class, quality, inversion."""

    __slots__ = ("root_pc", "quality", "inversion")

    def __init__(self, root_pc, quality, inversion):
        self.root_pc = root_pc
        self.quality = quality
        self.inversion = inversion  # 0 root position, 1 first, 2 second

    def name(self):
        base = _PITCH_NAMES[self.root_pc]
        if self.quality in ("minor", "diminished"):
            base = base.lower()
        suffix = {"diminished": "o", "augmented": "+"}.get(self.quality, "")
        inversion = {0: "", 1: " (1st inv)", 2: " (2nd inv)"}[self.inversion]
        return base + suffix + inversion

    def __eq__(self, other):
        if not isinstance(other, Triad):
            return NotImplemented
        return (self.root_pc, self.quality, self.inversion) == (
            other.root_pc, other.quality, other.inversion,
        )

    def __repr__(self):
        return "Triad(%s)" % self.name()


def identify_triad(midi_keys):
    """Identify the triad formed by *midi_keys*, or None.

    Octave doublings are ignored; the bass note determines inversion.
    """
    if not midi_keys:
        return None
    pitch_classes = sorted({key % 12 for key in midi_keys})
    if len(pitch_classes) != 3:
        return None
    bass_pc = min(midi_keys) % 12
    for rotation in range(3):
        candidate_root = pitch_classes[rotation]
        intervals = tuple(
            sorted((pc - candidate_root) % 12 for pc in pitch_classes)
        )
        quality = _TRIAD_PATTERNS.get(intervals)
        if quality is not None:
            ordered = [(candidate_root + step) % 12 for step in intervals]
            inversion = ordered.index(bass_pc)
            return Triad(candidate_root, quality, inversion)
    return None


def sounding_keys_at(cmn, score, beat):
    """MIDI keys of every event sounding at absolute *beat*."""
    beat = Fraction(beat)
    return sorted(
        event["midi_key"]
        for event in all_events(cmn, score)
        if event["start_beats"] <= beat
        < event["start_beats"] + event["duration_beats"]
    )


def analyze_sync_harmony(cmn, score):
    """Per-sync harmonic labels for a whole score.

    Returns ``[(measure number, offset, sounding keys, Triad-or-None)]``
    in temporal order -- a simple harmonic reduction.
    """
    view = ScoreView(cmn, score)
    out = []
    for movement in view.movements():
        starts = view.measure_starts(movement)
        movement_start = view.movement_starts()[movement.surrogate]
        for measure in view.measures(movement):
            measure_start = movement_start + starts[measure.surrogate]
            for sync in view.syncs(measure):
                beat = measure_start + sync["offset_beats"]
                keys = sounding_keys_at(cmn, score, beat)
                out.append(
                    (
                        measure["number"],
                        sync["offset_beats"],
                        keys,
                        identify_triad(keys),
                    )
                )
    return out


def harmonic_summary(cmn, score):
    """Counter of triad names over the score's syncs (None excluded)."""
    summary = {}
    for _, _, _, triad in analyze_sync_harmony(cmn, score):
        if triad is not None:
            summary[triad.name()] = summary.get(triad.name(), 0) + 1
    return summary
