"""Key estimation: the Krumhansl-Schmuckler profile-matching algorithm.

Duration-weighted pitch-class usage is correlated against the
Krumhansl-Kessler major and minor key profiles; the best-correlating
tonic/mode wins.  On the BWV 578 opening this finds G minor -- the key
figure 2's title ("Fuge g-moll") declares.
"""

import math

from repro.cmn.events import all_events

#: Krumhansl-Kessler probe-tone profiles.
_MAJOR_PROFILE = [6.35, 2.23, 3.48, 2.33, 4.38, 4.09,
                  2.52, 5.19, 2.39, 3.66, 2.29, 2.88]
_MINOR_PROFILE = [6.33, 2.68, 3.52, 5.38, 2.60, 3.53,
                  2.54, 4.75, 3.98, 2.69, 3.34, 3.17]

_PITCH_NAMES = ["C", "C#", "D", "Eb", "E", "F", "F#", "G", "Ab", "A", "Bb", "B"]


def pitch_class_weights(cmn, score):
    """Duration-weighted pitch-class histogram of a score's events."""
    weights = [0.0] * 12
    for event in all_events(cmn, score):
        weights[event["midi_key"] % 12] += float(event["duration_beats"])
    return weights


def _correlation(xs, ys):
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    denominator = math.sqrt(
        sum((x - mean_x) ** 2 for x in xs) * sum((y - mean_y) ** 2 for y in ys)
    )
    if denominator == 0:
        return 0.0
    return numerator / denominator


def estimate_key(cmn, score, top=1):
    """Estimate the key; returns ``(name, mode, correlation)`` tuples.

    *name* is like ``"G"``; *mode* is ``"major"`` or ``"minor"``.  With
    ``top > 1``, the best *top* candidates are returned in order.
    """
    weights = pitch_class_weights(cmn, score)
    candidates = []
    for tonic in range(12):
        rotated = weights[tonic:] + weights[:tonic]
        candidates.append(
            (_PITCH_NAMES[tonic], "major", _correlation(rotated, _MAJOR_PROFILE))
        )
        candidates.append(
            (_PITCH_NAMES[tonic], "minor", _correlation(rotated, _MINOR_PROFILE))
        )
    candidates.sort(key=lambda item: -item[2])
    return candidates[:top] if top > 1 else candidates[0]
