"""Melodic structure: profiles, motif search, imitation finding.

"...those that determine melodic structure" (section 2).  Melodies are
read from derived events per voice; matching is interval-based, so
transposed recurrences (fugal answers, sequences) are found.
"""

from repro.cmn.events import events_of_voice
from repro.cmn.score import ScoreView


def voice_keys(cmn, voice):
    """The MIDI key sequence of a voice's events, in order."""
    return [event["midi_key"] for event in events_of_voice(cmn, voice)]


def interval_profile(keys):
    """Successive semitone intervals of a key sequence."""
    return [b - a for a, b in zip(keys, keys[1:])]


def melodic_contour(keys):
    """Up/down/repeat string of a key sequence."""
    out = []
    for interval in interval_profile(keys):
        out.append("U" if interval > 0 else ("D" if interval < 0 else "R"))
    return "".join(out)


def find_motif(keys, motif_intervals):
    """Start indices where *motif_intervals* occurs in *keys* (possibly
    transposed -- interval matching)."""
    haystack = interval_profile(keys)
    needle = list(motif_intervals)
    if not needle:
        return list(range(len(keys)))
    hits = []
    for start in range(len(haystack) - len(needle) + 1):
        if haystack[start:start + len(needle)] == needle:
            hits.append(start)
    return hits


class Imitation:
    """A recurrence of the subject in some voice."""

    __slots__ = ("voice_name", "event_index", "start_beats", "transposition")

    def __init__(self, voice_name, event_index, start_beats, transposition):
        self.voice_name = voice_name
        self.event_index = event_index
        self.start_beats = start_beats
        self.transposition = transposition

    def __repr__(self):
        return "Imitation(%s @ beat %s, %+d semitones)" % (
            self.voice_name, self.start_beats, self.transposition,
        )


def find_imitations(cmn, score, subject_length=8, subject_voice=None):
    """Find transposed statements of the opening subject across voices.

    The subject is the first *subject_length* events of *subject_voice*
    (default: the first voice).  Returns Imitations sorted by start
    time; the original statement is included (transposition 0).
    """
    view = ScoreView(cmn, score)
    voices = view.voices()
    if not voices:
        return []
    if subject_voice is None:
        subject_voice = voices[0]
    subject_keys = voice_keys(cmn, subject_voice)[:subject_length]
    if len(subject_keys) < 2:
        return []
    subject = interval_profile(subject_keys)
    out = []
    for voice in voices:
        events = events_of_voice(cmn, voice)
        keys = [event["midi_key"] for event in events]
        for index in find_motif(keys, subject):
            out.append(
                Imitation(
                    voice["name"],
                    index,
                    events[index]["start_beats"],
                    keys[index] - subject_keys[0],
                )
            )
    out.sort(key=lambda imitation: imitation.start_beats)
    return out
