"""Exception hierarchy for the Music Data Manager.

Every error raised by this package derives from :class:`MDMError`, so a
client can catch one type to isolate itself from data-manager failures --
the service-style isolation the paper's figure 1 architecture calls for.
"""


class MDMError(Exception):
    """Base class for all Music Data Manager errors."""


class StorageError(MDMError):
    """Failure in the relational storage substrate."""


class PageError(StorageError):
    """Malformed or out-of-range page access."""


class TransactionError(StorageError):
    """Illegal transaction state transition (e.g. write after commit)."""


class DeadlockError(TransactionError):
    """Transaction aborted by the wait-die deadlock avoidance policy."""


class LockTimeoutError(TransactionError):
    """A lock could not be granted within the configured bound."""


class RecoveryError(StorageError):
    """The write-ahead log could not be replayed."""


class ReadOnlyError(StorageError):
    """Write refused: the database is in read-only degraded mode.

    Entered after a storage I/O failure so reads keep serving from the
    consistent in-memory state instead of trusting a half-broken WAL.
    """


class ServiceError(MDMError):
    """Failure in the session/service layer (admission, retry, deadlines)."""


class OverloadError(ServiceError):
    """Admission control shed this request: too many concurrent transactions."""


class RetryExhaustedError(ServiceError):
    """A transaction kept aborting (wait-die / lock timeout) past its budget."""

    def __init__(self, message, attempts=None, last_error=None):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class QueryTimeoutError(ServiceError):
    """Query execution ran past its deadline."""


class ResourceLimitError(ServiceError):
    """Query execution exceeded its row budget."""


class ShutdownError(ServiceError):
    """Request refused: the data manager is draining for shutdown."""


class NetworkError(MDMError):
    """Failure on the wire: torn connection, unreadable peer, short send."""


class ProtocolError(NetworkError):
    """A frame violated the wire protocol (bad CRC, oversize, bad version)."""


class NetworkTimeoutError(NetworkError):
    """No complete frame arrived within the receive deadline."""


class ReplicationError(MDMError):
    """Failure in the WAL-shipping replication layer."""


class ReplicaLagError(ReplicationError):
    """A replica could not serve the requested read view in time."""


class SchemaError(MDMError):
    """Invalid schema definition (entities, relationships, orderings)."""


class UnknownEntityTypeError(SchemaError):
    """Reference to an entity type absent from the schema."""


class UnknownAttributeError(SchemaError):
    """Reference to an attribute absent from an entity/relationship type."""


class UnknownOrderingError(SchemaError):
    """Reference to an ordering absent from the schema."""


class UnknownRelationshipError(SchemaError):
    """Reference to a relationship type absent from the schema."""


class IntegrityError(MDMError):
    """A data operation would violate model invariants."""


class OrderingCycleError(IntegrityError):
    """An operation would create a P-edge or S-edge cycle (section 5.5)."""


class OrderingMembershipError(IntegrityError):
    """An instance is not (or already is) a member of an ordering."""


class TypeMismatchError(IntegrityError):
    """A value does not belong to an attribute's domain."""


class ParseError(MDMError):
    """Syntax error in DDL, QUEL, or DARMS input."""

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = " at line %d" % line
            if column is not None:
                location += ", column %d" % column
        super().__init__(message + location)
        self.line = line
        self.column = column


class QueryError(MDMError):
    """Semantic error while planning or executing a QUEL query."""


class NotationError(MDMError):
    """Invalid musical notation (pitch, meter, score structure)."""


class DarmsError(ParseError):
    """Invalid DARMS encoding."""


class MidiError(MDMError):
    """Invalid MIDI data or event stream."""


class SoundError(MDMError):
    """Invalid digitized-sound parameters or data."""


class BiblioError(MDMError):
    """Invalid bibliographic or thematic-index data."""
