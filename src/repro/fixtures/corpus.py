"""Deterministic library-catalog corpus for text-search benchmarks.

A synthetic but realistic slice of a music library's catalog: works by
composers whose names carry diacritics, titles that appear in several
noisy edition variants (case changes, folded accents, reordered tokens,
publisher suffixes -- the messiness ``matches``/``similar_to`` exist
for), and a short DARMS incipit per row in the section 4.2 sense of
"sufficient musical material to identify the composition".

Everything is driven by one ``random.Random(seed)``: the same
``(count, seed)`` always yields byte-identical rows, so benchmark and
property runs are reproducible.

``load_catalog`` bulk-loads rows through the COPY-style
:meth:`~repro.storage.database.Database.bulk_ingest` path with
pre-allocated surrogates.  Deliberate trade-off: rows are NOT
registered in the ``_instances`` system table (one extra insert per
row), so schema-wide surrogate lookup (``schema.instance``) and
ordering membership do not see them.  QUEL retrieves, joins on the
entity's own surrogate index, and text search -- everything the
catalog-search workload exercises -- are unaffected.
"""

import random

from repro.core.entity import SURROGATE_COLUMN

COMPOSERS = [
    "Antonín Dvořák", "Béla Bartók", "Camille Saint-Saëns",
    "Charles Gounod", "Claude Debussy", "Edvard Grieg",
    "Frédéric Chopin", "Gabriel Fauré", "Georg Friedrich Händel",
    "Gustav Mahler", "Johann Sebastian Bach", "Leoš Janáček",
    "Franz Schubert", "Maurice Ravel", "Modest Musorgskij",
    "Wolfgang Amadeus Mozart", "Zoltán Kodály", "Érik Satie",
]

FORMS = [
    "Prélude", "Étude", "Nocturne", "Mazurka", "Symphony", "Concerto",
    "Sonata", "Fugue", "Toccata", "Variations", "Impromptu", "Rhapsody",
    "Suite", "Berceuse", "Scherzo", "Ballade",
]

KEYS = [
    "C major", "C minor", "C-sharp minor", "D major", "D minor",
    "E-flat major", "E major", "E minor", "F major", "F minor",
    "F-sharp major", "G major", "G minor", "A-flat major", "A major",
    "A minor", "B-flat major", "B minor",
]

EDITIONS = [
    "Breitkopf & Härtel", "Edition Peters", "Henle Urtext",
    "Bärenreiter", "Durand", "Universal Edition", "Schirmer",
    "Editio Musica Budapest",
]

#: DARMS pitch codes a synthetic incipit random-walks over (treble
#: staff steps; see repro.darms for the real encoding).
_DARMS_STEPS = ["19", "20", "21", "22", "23", "24", "25", "26", "27"]
_DARMS_DURATIONS = ["W", "H", "Q", "E"]


def _incipit(rng):
    """A short DARMS-style incipit string: ``!G 22Q 24E 23Q ...``."""
    length = rng.randint(4, 8)
    position = rng.randint(1, len(_DARMS_STEPS) - 2)
    notes = []
    for _ in range(length):
        position = min(
            len(_DARMS_STEPS) - 1, max(0, position + rng.randint(-2, 2))
        )
        notes.append(_DARMS_STEPS[position] + rng.choice(_DARMS_DURATIONS))
    return "!G " + " ".join(notes)


def _base_title(rng):
    form = rng.choice(FORMS)
    key = rng.choice(KEYS)
    number = rng.randint(1, 24)
    opus = rng.randint(1, 120)
    return "%s No. %d in %s, Op. %d" % (form, number, key, opus)


def _strip_diacritics(text):
    from repro.text import normalize  # canonical folding rules

    # normalize() also lowercases/strips punctuation; for a title
    # variant we only want the accents gone, so fold per word and
    # restore capitalization crudely -- catalogs really do this.
    return " ".join(
        word.capitalize() for word in normalize(text).split()
    )


def _variant(rng, title, edition):
    """One noisy catalog appearance of *title*."""
    style = rng.randint(0, 5)
    if style == 0:
        return title
    if style == 1:
        return title.lower()
    if style == 2:
        return _strip_diacritics(title)
    if style == 3:
        return title.replace("No.", "no").replace(",", "")
    if style == 4:
        return "%s [%s]" % (title, edition)
    head, _, tail = title.partition(" in ")
    if tail:
        return "In %s: %s" % (tail, head)
    return title


def corpus_rows(count, seed=0):
    """Yield *count* catalog row dicts, deterministically from *seed*.

    Each synthetic work appears as 1-4 edition variants of the same
    underlying title, so substring and similarity queries both have
    non-trivial result sets.
    """
    rng = random.Random(seed)
    emitted = 0
    while emitted < count:
        composer = rng.choice(COMPOSERS)
        title = _base_title(rng)
        incipit = _incipit(rng)
        variants = min(rng.randint(1, 4), count - emitted)
        for _ in range(variants):
            edition = "%s, %d" % (rng.choice(EDITIONS), rng.randint(1860, 2020))
            yield {
                "title": _variant(rng, title, edition),
                "composer": composer,
                "edition": edition,
                "incipit": incipit,
            }
            emitted += 1


CATALOG_ATTRIBUTES = [
    ("title", "string"),
    ("composer", "string"),
    ("edition", "string"),
    ("incipit", "string"),
]


def load_catalog(schema, count, seed=0, name="TRACK", batch_rows=2000,
                 chunk_rows=50_000):
    """Define (or reuse) entity *name* and bulk-load a *count*-row corpus.

    Returns the entity type.  Surrogates are pre-allocated from the
    schema counter and the rows go through ``bulk_ingest`` (see the
    module docstring for the ``_instances`` trade-off).

    The generator is drained in *chunk_rows* slices so a million-track
    load never holds more than one chunk of pending dicts on top of the
    table itself; the row *content* depends only on ``(count, seed)``,
    never on the chunking.
    """
    if schema.has_entity_type(name):
        entity = schema.entity_type(name)
    else:
        entity = schema.define_entity(name, CATALOG_ATTRIBUTES)
    ingest = schema.database.bulk_ingest
    table_name = entity.table.name
    rows = []
    for row in corpus_rows(count, seed):
        row[SURROGATE_COLUMN] = schema.next_surrogate()
        rows.append(row)
        if len(rows) >= chunk_rows:
            ingest(table_name, rows, batch_rows=batch_rows)
            rows = []
    if rows:
        ingest(table_name, rows, batch_rows=batch_rows)
    return entity
