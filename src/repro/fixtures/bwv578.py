"""BWV 578, the "little" Fugue in G minor: the paper's running example.

Figure 2 shows its thematic-index entry; figure 3 its piano roll with
the fugue entrances shaded.  We encode the fugue subject (slightly
simplified rhythm) and a two-voice opening: the subject in the soprano,
the answer entering two measures later in the alto -- enough to
regenerate both figures.  The bibliographic text is transcribed from
the figure 2 entry.
"""

from fractions import Fraction

from repro.cmn.builder import ScoreBuilder
from repro.pitch.key import KeySignature
from repro.pitch.pitch import Pitch

#: The fugue subject: (pitch name, whole-note duration) pairs, 4 measures
#: of 4/4 in G minor (rhythm simplified from the engraving).
SUBJECT = [
    ("G4", Fraction(1, 4)),
    ("D5", Fraction(1, 4)),
    ("Bb4", Fraction(3, 8)),
    ("A4", Fraction(1, 8)),
    ("G4", Fraction(1, 8)),
    ("Bb4", Fraction(1, 8)),
    ("A4", Fraction(1, 8)),
    ("G4", Fraction(1, 8)),
    ("F#4", Fraction(1, 8)),
    ("A4", Fraction(1, 8)),
    ("D4", Fraction(1, 4)),
    ("G4", Fraction(1, 8)),
    ("A4", Fraction(1, 8)),
    ("Bb4", Fraction(1, 8)),
    ("C5", Fraction(1, 8)),
    ("D5", Fraction(1, 8)),
    ("Eb5", Fraction(1, 8)),
    ("F#4", Fraction(1, 8)),
    ("G4", Fraction(1, 8)),
    ("A4", Fraction(1, 4)),
    ("D4", Fraction(1, 4)),
    ("G4", Fraction(1, 2)),
]

#: The subject as a DARMS incipit (first two measures), for the
#: thematic index.
SUBJECT_INCIPIT_DARMS = (
    "!G !K2- !M4:4 "
    "23Q 27Q 25Q. 24E / (23E 25E) (24E 23E) (22#E 24E) 20Q //"
)

#: The figure 2 entry, transcribed.
BWV578_ENTRY = {
    "number": 578,
    "title": "Fuge g-moll",
    "setting": "Orgel",
    "composed_when": "um 1709 (oder schon in Arnstadt?)",
    "composed_where": "Weimar",
    "measure_count": 68,
    "copies": [
        "2 Seiten im Andreas Bach Buch (S 657-677) B Lpz III 8 4",
        "In Konvolut quer 6 aus Krebs Nachlass BB in Mus ms Bach P 803 (S 805-811)",
        "Weiterhin in zahlreichen Einzelhandschriften u Smlbdn von der 2 Haelfte "
        "des 18 bis zur 1 Haelfte des 19 Jhs",
    ],
    "editions": [
        "In C F Beckers Caecilia Bd. II S 91, veroeffentl nach e Hs vom Jahre 1754",
        "Peters Orgelwerke Bd. IV S 46",
        "Breitkopf & Haertel EB 3174 S 72",
        "Hofmeister (Joh Schreyer)",
    ],
    "literature": [
        "Spitta I 399f",
        "Spitta VA 110",
        "Schweitzer 248",
        "Frotscher II 877f",
        "Neumann 51",
        "Keller 73f",
        "BJ 1912 131; 1930 4 44 125; 1937 62",
    ],
}


def _transpose(subject, semitones):
    """The answer: the subject transposed (real answer, flat-spelled)."""
    out = []
    for name, duration in subject:
        pitch = Pitch.parse(name).transposed(semitones)
        if pitch.alter == 1:  # prefer flat spellings in G minor
            pitch = Pitch.from_midi(pitch.midi_key, prefer_flats=True)
        out.append((pitch, duration))
    return out


def build_bwv578_score(cmn=None, measures_of_rest=2, with_answer=True):
    """Build the fugue opening; returns the finished builder.

    Soprano: the subject (measures 1-4) then held tonic.  Alto: two
    measures of rest, then the answer a fourth below.  The answer
    voice's entrance is what figure 3 shades in the piano roll.
    """
    builder = ScoreBuilder(
        "Fuge g-moll",
        catalogue_id="BWV 578",
        key=KeySignature.flats(2),
        meter="4/4",
        bpm=84,
        cmn=cmn,
    )
    soprano = builder.add_voice("soprano", clef="treble", instrument="Organ",
                                midi_program=19)
    for name, duration in SUBJECT:
        builder.note(soprano, name, duration)
    # Continuation while the answer states the subject.
    if with_answer:
        continuation = [
            ("Bb4", Fraction(1, 4)), ("A4", Fraction(1, 4)),
            ("G4", Fraction(1, 4)), ("F#4", Fraction(1, 4)),
            ("G4", Fraction(1, 2)), ("A4", Fraction(1, 4)),
            ("Bb4", Fraction(1, 4)),
            ("C5", Fraction(1, 4)), ("Bb4", Fraction(1, 4)),
            ("A4", Fraction(1, 4)), ("G4", Fraction(1, 4)),
            ("F#4", Fraction(1, 2)), ("G4", Fraction(1, 2)),
        ]
        for name, duration in continuation:
            builder.note(soprano, name, duration)

        alto = builder.add_voice("alto", clef="treble", instrument="Organ",
                                 midi_program=19)
        for _ in range(measures_of_rest):
            builder.rest(alto, Fraction(1, 1))
        for pitch, duration in _transpose(SUBJECT, -5):
            builder.note(alto, pitch, duration, stem="D")
    builder.pad_with_rests()
    builder.finish()
    return builder


def build_bwv_index(schema=None):
    """A small BWV thematic index containing entry 578 (figure 2)."""
    from repro.biblio.thematic import ThematicIndex
    from repro.core.schema import Schema

    if schema is None:
        schema = Schema("bwv")
    index = ThematicIndex(
        schema,
        name="Bach-Werke-Verzeichnis",
        abbreviation="BWV",
        composer="Johann Sebastian Bach",
        ordering_principle="chronological",
    )
    entry = index.add_entry(
        BWV578_ENTRY["number"],
        BWV578_ENTRY["title"],
        setting=BWV578_ENTRY["setting"],
        composed_when=BWV578_ENTRY["composed_when"],
        composed_where=BWV578_ENTRY["composed_where"],
        measure_count=BWV578_ENTRY["measure_count"],
        incipits=[("subject", SUBJECT_INCIPIT_DARMS)],
        copies=BWV578_ENTRY["copies"],
        editions=BWV578_ENTRY["editions"],
        literature=BWV578_ENTRY["literature"],
    )
    return index, entry
