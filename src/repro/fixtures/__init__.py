"""Shared musical material for examples, tests, and benchmarks."""

from repro.fixtures.bwv578 import (
    BWV578_ENTRY,
    SUBJECT,
    SUBJECT_INCIPIT_DARMS,
    build_bwv578_score,
    build_bwv_index,
)
from repro.fixtures.corpus import (
    CATALOG_ATTRIBUTES,
    corpus_rows,
    load_catalog,
)
from repro.fixtures.gloria import GLORIA_USER_DARMS, build_gloria_score
from repro.fixtures.examples import make_scale_score, make_demo_index

__all__ = [
    "BWV578_ENTRY",
    "SUBJECT",
    "SUBJECT_INCIPIT_DARMS",
    "build_bwv578_score",
    "build_bwv_index",
    "CATALOG_ATTRIBUTES",
    "corpus_rows",
    "load_catalog",
    "GLORIA_USER_DARMS",
    "build_gloria_score",
    "make_scale_score",
    "make_demo_index",
]
