"""Deterministic generated material for tests and benchmarks."""

from fractions import Fraction

from repro.cmn.builder import ScoreBuilder
from repro.pitch.clef import TREBLE, BASS
from repro.pitch.key import KeySignature
from repro.pitch.pitch import Pitch

#: A diatonic pitch cycle used by the generators (C major).
_CYCLE = ["C4", "D4", "E4", "F4", "G4", "A4", "B4", "C5", "B4", "A4", "G4",
          "F4", "E4", "D4"]


def make_scale_score(measures=8, voices=2, notes_per_measure=8, title=None,
                     cmn=None, bpm=120):
    """A deterministic multi-voice score of eighth-note scales.

    Voice *v* starts *v* steps into the pitch cycle (simple canon), so
    syncs are shared across voices while contents differ.
    """
    builder = ScoreBuilder(
        title or ("scale score %dx%d" % (measures, voices)),
        key=KeySignature(0),
        meter="4/4",
        bpm=bpm,
        cmn=cmn,
    )
    duration = Fraction(1, notes_per_measure)
    for voice_index in range(voices):
        clef = TREBLE if voice_index % 2 == 0 else BASS
        shift = -12 * (voice_index % 2)
        voice = builder.add_voice(
            "voice %d" % (voice_index + 1),
            clef=clef,
            instrument="Instrument %d" % (voice_index + 1),
            midi_program=voice_index,
        )
        position = voice_index * 2
        for _ in range(measures * notes_per_measure):
            name = _CYCLE[position % len(_CYCLE)]
            pitch = Pitch.parse(name)
            if shift:
                pitch = Pitch(pitch.step, pitch.alter, pitch.octave - 1)
            builder.note(voice, pitch, duration)
            position += 1
    builder.finish()
    return builder


#: Incipit patterns (DARMS bodies) cycled by the demo index generator.
_INCIPIT_PATTERNS = [
    "21Q 23Q 25Q 27Q //",
    "27Q 25Q 23Q 21Q //",
    "21E 22E 23E 24E 25Q 25Q //",
    "25Q 21Q 25Q 21Q //",
    "21Q 25Q 24E 23E 22E 21E //",
    "23Q. 24E 25H //",
]


def make_demo_index(entries=25, schema=None):
    """A generated thematic index with *entries* numbered works."""
    from repro.biblio.thematic import ThematicIndex
    from repro.core.schema import Schema

    if schema is None:
        schema = Schema("demo-index")
    index = ThematicIndex(
        schema,
        name="Demo-Werke-Verzeichnis",
        abbreviation="DWV",
        composer="Composer Demo",
    )
    for number in range(1, entries + 1):
        pattern = _INCIPIT_PATTERNS[number % len(_INCIPIT_PATTERNS)]
        index.add_entry(
            number,
            "Work %d" % number,
            setting="Orgel" if number % 2 else "Cembalo",
            composed_when="17%02d" % (number % 50),
            composed_where="Weimar" if number % 3 else "Leipzig",
            measure_count=24 + number,
            incipits=[("theme", "!G !K0# !M4:4 " + pattern)],
            copies=["Copy %d-1" % number],
            editions=["Edition %d" % number],
            literature=["Ref %d" % number],
        )
    return index
