"""The figure 4 fragment: a tenor "Gloria in excelsis Deo" line.

The paper's DARMS example (figure 4) is reproduced here as valid user
DARMS for our parser.  The published figure is an OCR-degraded punch
card listing; we transcribe its structure -- instrument definition,
treble clef, two sharps, an annotation, two whole rests, beamed eighth
notes with nested beam groups, syllables, barlines -- with measure fills
made exact (the substitution is documented in DESIGN.md).
"""

from repro.darms.decode import darms_to_score

#: User DARMS for the fragment: note durations are carried forward and
#: short positions used, so canonization has real work to do.
GLORIA_USER_DARMS = (
    "I4 !G !K2# !M4:4 00@^TENOR$ "
    "R2W / "
    "(7E,@^GLO-$ 8) (9 8 7 8) 9Q,@RI-$ / "
    "8Q,@A$ (7E,@IN$ 6) 7H,@EX-$ / "
    "(4E,@CEL-$ 5) (6 (7S 8) 8E) 4Q.,@SIS$ / "
    "7H,@^DE-$ 7,@O$ //"
)

#: The abbreviation key of figure 4(c).
ABBREVIATION_KEY = [
    ("I4", "Instrument (or voice) definition #4"),
    ("!G", "G (treble) clef"),
    ("!K", "Key signature (!K2# two sharps)"),
    ("00", "Annotation above the staff"),
    ("R", "Rest (two whole rests)"),
    ("@text$", "Literal string"),
    ("^", "Capitalize next letter"),
    ("(notes)", "Beam grouping"),
    ("W", "Whole duration"),
    ("Q", "Quarter duration"),
    ("E", "Eighth duration"),
    ("D", "Stems down"),
    ("/", "Bar line"),
]


def build_gloria_score(cmn=None, title="Gloria in excelsis"):
    """Decode the fragment; returns ``(builder, score)``."""
    return darms_to_score(GLORIA_USER_DARMS, title=title, cmn=cmn,
                          instrument="Tenor")
