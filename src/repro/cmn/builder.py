"""A cursor-based builder that writes scores into the CMN schema.

The builder creates the full entity web the paper's figure 13
describes: SCORE / MOVEMENT / MEASURE / SYNC / CHORD / NOTE plus the
timbral chain (ORCHESTRA / SECTION / INSTRUMENT / PART / VOICE / STAFF)
and voice streams.  Syncs are shared across voices: two chords sounding
at the same measure offset land on the same SYNC instance -- exactly
figure 14's "dividing a measure into syncs".
"""

from bisect import bisect_left
from fractions import Fraction

from repro.errors import NotationError
from repro.cmn.schema import CmnSchema
from repro.cmn.score import ScoreView
from repro.pitch.accidental import Accidental, AccidentalState
from repro.pitch.clef import TREBLE, Clef
from repro.pitch.key import KeySignature
from repro.pitch.pitch import Pitch
from repro.temporal.meter import MeterSignature


def _as_duration(value):
    """Notated durations are whole-note fractions (1/4 = quarter)."""
    if isinstance(value, Fraction):
        duration = value
    elif isinstance(value, int) and not isinstance(value, bool):
        duration = Fraction(value)
    elif isinstance(value, str):
        try:
            duration = Fraction(value)
        except (ValueError, ZeroDivisionError):
            raise NotationError("bad duration %r" % (value,))
    elif isinstance(value, tuple) and len(value) == 2:
        duration = Fraction(value[0], value[1])
    else:
        raise NotationError("bad duration %r" % (value,))
    if duration <= 0:
        raise NotationError("duration must be positive: %s" % duration)
    return duration


class _VoiceState:
    """Per-voice build cursor."""

    __slots__ = ("voice", "clef", "cursor_beats", "accidental_state",
                 "current_measure_number", "chords")

    def __init__(self, voice, clef, key):
        self.voice = voice
        self.clef = clef
        self.cursor_beats = Fraction(0)  # from movement start
        self.accidental_state = AccidentalState(key)
        self.current_measure_number = 1
        self.chords = []


class ScoreBuilder:
    """Build one score (optionally into an existing CmnSchema)."""

    def __init__(self, title, catalogue_id="", key=None, meter="4/4",
                 bpm=96, cmn=None, movement_name="I"):
        self.cmn = cmn if cmn is not None else CmnSchema()
        self.key = key if key is not None else KeySignature(0)
        self.meter = (
            meter if isinstance(meter, MeterSignature) else MeterSignature.parse(meter)
        )
        self.score = self.cmn.SCORE.create(title=title, catalogue_id=catalogue_id)
        self.movement = self.cmn.MOVEMENT.create(
            number=1,
            name=movement_name,
            key_fifths=self.key.fifths,
            initial_bpm=bpm,
        )
        self.cmn.movement_in_score.append(self.score, self.movement)
        self.orchestra = self.cmn.ORCHESTRA.create(name="%s orchestra" % title)
        self.cmn.PERFORMS.relate(orchestra=self.orchestra, score=self.score)
        self.section = self.cmn.SECTION.create(name="default")
        self.cmn.section_in_orchestra.append(self.orchestra, self.section)
        self._instruments = {}
        self._voices = {}
        self._staff_of = {}  # voice surrogate -> STAFF instance
        self._measures = {}  # number -> (measure instance, MeterSignature)
        self._measure_meters = {}  # explicit per-measure meters
        self._syncs = {}  # (measure number, offset) -> sync instance
        self.view = ScoreView(self.cmn, self.score)

    # -- timbral chain ------------------------------------------------------------

    def add_instrument(self, name, midi_program=0):
        if name in self._instruments:
            return self._instruments[name]
        instrument = self.cmn.INSTRUMENT.create(name=name, midi_program=midi_program)
        self.cmn.instrument_in_section.append(self.section, instrument)
        self._instruments[name] = instrument
        return instrument

    def add_voice(self, name, clef=TREBLE, instrument="Piano", midi_program=0):
        """Create a voice (with its part and staff) and return its handle."""
        if name in self._voices:
            raise NotationError("voice %r already exists" % name)
        if isinstance(clef, str):
            from repro.pitch.clef import clef_by_name

            clef = clef_by_name(clef)
        if not isinstance(clef, Clef):
            raise NotationError("bad clef %r" % (clef,))
        instrument_instance = self.add_instrument(instrument, midi_program)
        part = self.cmn.PART.create(name=name)
        self.cmn.part_in_instrument.append(instrument_instance, part)
        staff_number = len(self.cmn.staff_in_instrument.children(instrument_instance)) + 1
        staff = self.cmn.STAFF.create(number=staff_number, clef=clef.name)
        self.cmn.staff_in_instrument.append(instrument_instance, staff)
        voice = self.cmn.VOICE.create(number=len(self._voices) + 1, name=name)
        self.cmn.voice_in_part.append(part, voice)
        state = _VoiceState(voice, clef, self.key)
        self._voices[name] = state
        self._staff_of[voice.surrogate] = staff
        return voice

    def _state(self, voice):
        for state in self._voices.values():
            if state.voice == voice:
                return state
        raise NotationError("unknown voice %r" % (voice,))

    # -- movements --------------------------------------------------------------

    def new_movement(self, name, meter=None, key=None, bpm=None):
        """Close the current movement and start the next one.

        "A movement is a somewhat arbitrary (though widely used) unit of
        performance" (section 7.2): voices restart at the new movement's
        first measure; meter/key default to the previous movement's.
        """
        self.pad_with_rests()
        if meter is not None:
            self.meter = (
                meter
                if isinstance(meter, MeterSignature)
                else MeterSignature.parse(meter)
            )
        if key is not None:
            self.key = key
        number = len(self.cmn.movement_in_score.children(self.score)) + 1
        movement = self.cmn.MOVEMENT.create(
            number=number,
            name=name,
            key_fifths=self.key.fifths,
            initial_bpm=bpm if bpm is not None else self.movement["initial_bpm"],
        )
        self.cmn.movement_in_score.append(self.score, movement)
        self.movement = movement
        self._measures = {}
        self._measure_meters = {}
        self._syncs = {}
        for state in self._voices.values():
            state.cursor_beats = Fraction(0)
            state.current_measure_number = 1
            state.accidental_state = AccidentalState(self.key)
        return movement

    # -- measures and syncs --------------------------------------------------------------

    def set_meter(self, measure_number, meter):
        """Override the meter of a (future) measure."""
        meter = (
            meter if isinstance(meter, MeterSignature) else MeterSignature.parse(meter)
        )
        if measure_number in self._measures:
            raise NotationError(
                "measure %d already created; set meters up front" % measure_number
            )
        self._measure_meters[measure_number] = meter
        return self

    def _meter_for(self, measure_number):
        return self._measure_meters.get(measure_number, self.meter)

    def _measure(self, number):
        if number in self._measures:
            return self._measures[number][0]
        # Create intervening measures so the ordering stays contiguous.
        last = max(self._measures) if self._measures else 0
        for missing in range(last + 1, number + 1):
            meter = self._meter_for(missing)
            measure = self.cmn.MEASURE.create(number=missing, meter=str(meter))
            self.cmn.measure_in_movement.append(self.movement, measure)
            self._measures[missing] = (measure, meter)
        return self._measures[number][0]

    def _measure_bounds(self, beats_from_start):
        """(measure number, offset in measure) for an absolute beat."""
        cursor = Fraction(0)
        number = 1
        while True:
            meter = self._meter_for(number)
            span = meter.measure_duration().beats
            if beats_from_start < cursor + span:
                return number, beats_from_start - cursor, meter
            cursor += span
            number += 1

    def _sync(self, measure_number, offset_beats):
        key = (measure_number, offset_beats)
        if key in self._syncs:
            return self._syncs[key]
        measure = self._measure(measure_number)
        sync = self.cmn.SYNC.create(offset_beats=offset_beats)
        # Keep syncs ordered by offset within the measure.  Siblings are
        # already offset-sorted, so the slot is a bisect, not a scan.
        ordering = self.cmn.sync_in_measure
        offsets = [s["offset_beats"] for s in ordering.children(measure)]
        position = 1 + bisect_left(offsets, offset_beats)
        ordering.insert(measure, sync, position)
        self._syncs[key] = sync
        return sync

    # -- notes and rests -----------------------------------------------------------------

    def note(self, voice, pitches, duration, tied=False, articulation=None,
             dynamic=None, lyric=None, stem=None):
        """Append a chord of *pitches* (a name, Pitch, or list) at the
        voice cursor.  Returns the CHORD instance."""
        state = self._state(voice)
        duration = _as_duration(duration)
        if isinstance(pitches, (str, Pitch)):
            pitches = [pitches]
        pitches = [Pitch.parse(p) if isinstance(p, str) else p for p in pitches]
        if not pitches:
            raise NotationError("a chord needs at least one pitch")

        measure_number, offset, meter = self._measure_bounds(state.cursor_beats)
        beats = duration * 4
        if offset + beats > meter.measure_duration().beats:
            raise NotationError(
                "duration %s crosses the barline of measure %d (use a tie)"
                % (duration, measure_number)
            )
        if measure_number != state.current_measure_number:
            state.accidental_state.barline()
            state.current_measure_number = measure_number
        sync = self._sync(measure_number, offset)
        chord = self.cmn.CHORD.create(
            duration=duration,
            stem_direction=stem,
            articulation=articulation,
            dynamic=dynamic,
        )
        self.cmn.chord_in_sync.append(sync, chord)
        self.cmn.chord_rest_in_voice.append(state.voice, chord)
        staff = self._staff_of[state.voice.surrogate]
        # Notes ordered high to low within the chord, as in section 5.5.
        notes = []
        for pitch in sorted(pitches, key=lambda p: -p.midi_key):
            degree = state.clef.pitch_to_degree(pitch)
            accidental = self._accidental_needed(state, degree, pitch)
            notes.append(self.cmn.NOTE.create(
                degree=degree,
                accidental=None if accidental is None else accidental.symbol,
                tied_to_next=bool(tied),
            ))
        self.cmn.note_in_chord.extend(chord, notes)
        self.cmn.note_on_staff.extend(staff, notes)
        if lyric is not None:
            self._attach_lyric(state, chord, lyric)
        state.cursor_beats += beats
        state.chords.append(chord)
        return chord

    def _accidental_needed(self, state, degree, pitch):
        """The explicit accidental (if any) that makes *pitch* sound at
        *degree* given the accidental state -- the inverse of the
        section 4.3 derivation."""
        base = state.clef.degree_to_pitch(degree)
        if base.step != pitch.step or base.octave != pitch.octave:
            raise NotationError(
                "pitch %s does not sit on degree %d under the %s clef"
                % (pitch.name(), degree, state.clef.name)
            )
        implied = state.accidental_state.apply(degree, base.step, None)
        if implied == pitch.alter:
            return None
        accidental = Accidental(pitch.alter)
        state.accidental_state.apply(degree, base.step, accidental)
        return accidental

    def rest(self, voice, duration):
        """Append a rest at the voice cursor.  Returns the REST instance."""
        state = self._state(voice)
        duration = _as_duration(duration)
        measure_number, offset, meter = self._measure_bounds(state.cursor_beats)
        beats = duration * 4
        if offset + beats > meter.measure_duration().beats:
            raise NotationError(
                "rest %s crosses the barline of measure %d" % (duration, measure_number)
            )
        self._measure(measure_number)
        rest = self.cmn.REST.create(duration=duration)
        self.cmn.chord_rest_in_voice.append(state.voice, rest)
        state.cursor_beats += beats
        return rest

    def _attach_lyric(self, state, chord, lyric):
        part = self.cmn.voice_in_part.parent_of(state.voice)
        texts = self.cmn.text_in_part.children(part)
        if texts:
            text = texts[0]
        else:
            text = self.cmn.TEXT.create(language="la")
            self.cmn.text_in_part.append(part, text)
        hyphenated = lyric.endswith("-")
        syllable = self.cmn.SYLLABLE.create(
            text=lyric.rstrip("-"), hyphenated=hyphenated
        )
        self.cmn.syllable_in_text.append(text, syllable)
        self.cmn.SETTING.relate(syllable=syllable, chord=chord)

    # -- layout (graphical aspect skeleton) -------------------------------------------------

    def layout(self, systems_per_page=1):
        """Create a single-page layout and attach every staff to it."""
        page = self.cmn.PAGE.create(number=1)
        self.cmn.page_in_score.append(self.score, page)
        system = self.cmn.SYSTEM.create(number=1)
        self.cmn.system_in_page.append(page, system)
        for state in self._voices.values():
            staff = self._staff_of[state.voice.surrogate]
            if self.cmn.staff_in_system.parent_of(staff) is None:
                self.cmn.staff_in_system.append(system, staff)
        return page

    # -- finishing ------------------------------------------------------------------------

    def pad_with_rests(self):
        """Fill every voice to the end of the last measure with rests."""
        if not self._measures:
            return
        total = Fraction(0)
        for number in range(1, max(self._measures) + 1):
            total += self._meter_for(number).measure_duration().beats
        for state in self._voices.values():
            while state.cursor_beats < total:
                number, offset, meter = self._measure_bounds(state.cursor_beats)
                remaining = meter.measure_duration().beats - offset
                self.rest(state.voice, Fraction(remaining, 4))

    def finish(self, derive=True):
        """Complete the build; optionally derive EVENT entities.

        Returns the SCORE instance; use ``builder.view`` for traversal.
        """
        if derive:
            from repro.cmn.events import derive_events

            derive_events(self.cmn, self.score)
        self.cmn.check_invariants()
        return self.score

    def voices(self):
        return [state.voice for state in self._voices.values()]

    def voice(self, name):
        return self._voices[name].voice

    def chords_of(self, voice):
        return list(self._state(voice).chords)
