"""Read-side traversal of a CMN score stored as ordered entities.

The builder writes scores into the schema; :class:`ScoreView` walks the
orderings back out: movements, measures, syncs, chords, notes, voice
streams, and the derived temporal attributes of section 7.2 (measure
start times, chord start times inherited from syncs, performance
pitches resolved through the meta-musical rules).
"""

from fractions import Fraction

from repro.errors import NotationError
from repro.pitch.accidental import Accidental, AccidentalState
from repro.pitch.clef import clef_by_name
from repro.pitch.key import KeySignature
from repro.pitch.spelling import performance_pitch
from repro.temporal.meter import MeterSignature


class ScoreView:
    """Traversal helpers over one SCORE instance."""

    def __init__(self, cmn, score):
        self.cmn = cmn
        self.score = score

    # -- temporal hierarchy -------------------------------------------------

    def movements(self):
        return self.cmn.movement_in_score.children(self.score)

    def measures(self, movement):
        return self.cmn.measure_in_movement.children(movement)

    def syncs(self, measure):
        return self.cmn.sync_in_measure.children(measure)

    def chords_at(self, sync):
        return self.cmn.chord_in_sync.children(sync)

    def notes_of(self, chord):
        return self.cmn.note_in_chord.children(chord)

    def voice_stream(self, voice):
        """The ordered chords and rests of a voice (inhomogeneous)."""
        return self.cmn.chord_rest_in_voice.children(voice)

    def voices(self):
        out = []
        for part in self._parts():
            out.extend(self.cmn.voice_in_part.children(part))
        return out

    def _parts(self):
        out = []
        for orchestra in self._orchestras():
            for section in self.cmn.section_in_orchestra.children(orchestra):
                for instrument in self.cmn.instrument_in_section.children(section):
                    out.extend(self.cmn.part_in_instrument.children(instrument))
        return out

    def _orchestras(self):
        performs = self.cmn.PERFORMS
        return performs.related("score", self.score, fetch_role="orchestra")

    def instruments(self):
        out = []
        for orchestra in self._orchestras():
            for section in self.cmn.section_in_orchestra.children(orchestra):
                out.extend(self.cmn.instrument_in_section.children(section))
        return out

    def instrument_of_voice(self, voice):
        part = self.cmn.voice_in_part.parent_of(voice)
        if part is None:
            return None
        return self.cmn.part_in_instrument.parent_of(part)

    def staff_of_voice(self, voice):
        """The staff a voice is notated on (via its instrument).

        Parts and staves are ordered pairwise under the instrument (one
        staff created per part), so the voice's part ordinal selects the
        matching staff; a lone staff serves every part.
        """
        part = self.cmn.voice_in_part.parent_of(voice)
        if part is None:
            return None
        instrument = self.cmn.part_in_instrument.parent_of(part)
        if instrument is None:
            return None
        staves = self.cmn.staff_in_instrument.children(instrument)
        if not staves:
            return None
        position = self.cmn.part_in_instrument.position_of(part)
        if position is not None and position <= len(staves):
            return staves[position - 1]
        return staves[0]

    # -- temporal attributes (section 7.2) ----------------------------------------

    def meter_of(self, measure):
        return MeterSignature.parse(measure["meter"])

    def key_of(self, movement):
        fifths = movement["key_fifths"]
        return KeySignature(fifths if fifths is not None else 0)

    def measure_starts(self, movement):
        """measure surrogate -> start beat (from the movement start)."""
        starts = {}
        cursor = Fraction(0)
        for measure in self.measures(movement):
            starts[measure.surrogate] = cursor
            cursor += self.meter_of(measure).measure_duration().beats
        return starts

    def movement_duration_beats(self, movement):
        """The movement's duration: the sum of its measures' durations."""
        total = Fraction(0)
        for measure in self.measures(movement):
            total += self.meter_of(measure).measure_duration().beats
        return total

    def score_duration_beats(self):
        """"This duration is the sum of the durations of its constituent
        movements" (section 7.2)."""
        return sum(
            (self.movement_duration_beats(m) for m in self.movements()),
            Fraction(0),
        )

    def movement_starts(self):
        """movement surrogate -> start beat (from the score start)."""
        starts = {}
        cursor = Fraction(0)
        for movement in self.movements():
            starts[movement.surrogate] = cursor
            cursor += self.movement_duration_beats(movement)
        return starts

    def chord_start_beats(self, chord):
        """A chord's start: inherited from its parent sync and measure."""
        sync = self.cmn.chord_in_sync.parent_of(chord)
        if sync is None:
            raise NotationError("chord %r has no sync" % chord)
        measure = self.cmn.sync_in_measure.parent_of(sync)
        movement = self.cmn.measure_in_movement.parent_of(measure)
        measure_start = self.measure_starts(movement)[measure.surrogate]
        movement_start = self.movement_starts()[movement.surrogate]
        return movement_start + measure_start + sync["offset_beats"]

    def chord_duration_beats(self, chord):
        return chord["duration"] * 4  # whole-note fraction -> quarter beats

    # -- pitch resolution (section 4.3 applied to stored notes) ----------------------

    def clef_of_voice(self, voice):
        staff = self.staff_of_voice(voice)
        if staff is None or staff["clef"] is None:
            return clef_by_name("treble")
        return clef_by_name(staff["clef"])

    def resolve_pitches(self, voice):
        """note surrogate -> sounding Pitch for every note in *voice*.

        Walks the voice stream measure by measure, maintaining the
        accidental state the meta-musical rules require.
        """
        clef = self.clef_of_voice(voice)
        out = {}
        current_measure = None
        state = None
        for item in self.voice_stream(voice):
            if item.type.name != "CHORD":
                continue
            sync = self.cmn.chord_in_sync.parent_of(item)
            measure = self.cmn.sync_in_measure.parent_of(sync)
            if state is None or (
                current_measure is not None
                and measure.surrogate != current_measure
            ):
                if state is None:
                    movement = self.cmn.measure_in_movement.parent_of(measure)
                    state = AccidentalState(self.key_of(movement))
                else:
                    state.barline()
            current_measure = measure.surrogate
            for note in self.notes_of(item):
                accidental = Accidental.from_symbol(note["accidental"])
                out[note.surrogate] = performance_pitch(
                    note["degree"], clef, state, accidental
                )
        return out

    # -- groups -----------------------------------------------------------------------

    def groups_of_voice(self, voice):
        return self.cmn.group_in_voice.children(voice)

    def group_duration_beats(self, group):
        """A group's duration "is a function of the duration of its
        constituent chords and rests" (figure 15).

        Members carry *sounding* durations (a triplet quarter is stored
        as 1/12 whole), so the function is the plain sum; the tuplet's
        actual:normal ratio is notation metadata for rendering.
        """
        total = Fraction(0)
        for member in self.cmn.group_member.children(group):
            if member.type.name == "GROUP":
                total += self.group_duration_beats(member)
            else:
                total += member["duration"] * 4
        return total

    # -- statistics ---------------------------------------------------------------------

    def counts(self):
        """Entity counts below this score (movements/measures/syncs/...)."""
        movements = self.movements()
        measures = [m for mv in movements for m in self.measures(mv)]
        syncs = [s for m in measures for s in self.syncs(m)]
        chords = [c for s in syncs for c in self.chords_at(s)]
        notes = [n for c in chords for n in self.notes_of(c)]
        return {
            "movements": len(movements),
            "measures": len(measures),
            "syncs": len(syncs),
            "chords": len(chords),
            "notes": len(notes),
        }
