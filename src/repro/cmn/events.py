"""Deriving EVENT entities: the notated/performed split of section 7.2.

"An event ... has a unique start and end time, and is performed by a
specific voice.  An event is thus a unit of performance.  A note, on
the other hand, is the notated unit of music.  These two are not
necessarily the same, as, for example, when two notes are tied
together.  The Tie is a musical construct that binds multiple note
entities under a single event entity."

:func:`derive_events` walks each voice stream, merges tied notes, and
creates one EVENT per sounding pitch with exact start/duration in score
time; the notes of the event are ordered under it by ``note_in_event``.
"""

from fractions import Fraction

from repro.errors import NotationError
from repro.cmn.score import ScoreView


def clear_events(cmn, score):
    """Remove previously derived EVENT (and their MIDI) entities."""
    view = ScoreView(cmn, score)
    for voice in view.voices():
        for event in cmn.event_in_voice.children(voice):
            for note in list(cmn.note_in_event.children(event)):
                cmn.note_in_event.remove(note)
            for midi in list(cmn.midi_in_event.children(event)):
                cmn.midi_in_event.remove(midi)
                midi.delete()
            cmn.event_in_voice.remove(event)
            event.delete()


def derive_events(cmn, score):
    """Create EVENT entities for *score*; returns voice -> [EVENT].

    Idempotent: previously derived events are cleared first.
    """
    clear_events(cmn, score)
    view = ScoreView(cmn, score)
    out = {}
    for voice in view.voices():
        out[voice.surrogate] = _derive_voice_events(cmn, view, voice)
    return out


def _chord_notes_by_key(cmn, view, chord, pitches):
    notes = {}
    for note in view.notes_of(chord):
        key = pitches[note.surrogate].midi_key
        if key in notes:
            raise NotationError(
                "chord %r notates MIDI key %d twice" % (chord, key)
            )
        notes[key] = note
    return notes


def _derive_voice_events(cmn, view, voice):
    pitches = view.resolve_pitches(voice)
    stream = [
        item for item in view.voice_stream(voice) if item.type.name == "CHORD"
    ]
    consumed = set()  # note surrogates already absorbed into an event
    events = []
    for index, chord in enumerate(stream):
        start = view.chord_start_beats(chord)
        base_duration = view.chord_duration_beats(chord)
        notes_by_key = _chord_notes_by_key(cmn, view, chord, pitches)
        for key, note in sorted(notes_by_key.items(), reverse=True):
            if note.surrogate in consumed:
                continue
            tied_notes = [note]
            duration = base_duration
            cursor = index
            current = note
            while current["tied_to_next"]:
                if cursor + 1 >= len(stream):
                    raise NotationError(
                        "tie from %r dangles at the end of the voice" % current
                    )
                next_chord = stream[cursor + 1]
                expected_start = view.chord_start_beats(stream[cursor]) + (
                    view.chord_duration_beats(stream[cursor])
                )
                actual_start = view.chord_start_beats(next_chord)
                if actual_start != expected_start:
                    raise NotationError(
                        "tie crosses a gap: %s != %s" % (actual_start, expected_start)
                    )
                next_notes = _chord_notes_by_key(cmn, view, next_chord, pitches)
                if key not in next_notes:
                    raise NotationError(
                        "tie from MIDI key %d finds no continuation" % key
                    )
                current = next_notes[key]
                tied_notes.append(current)
                duration += view.chord_duration_beats(next_chord)
                cursor += 1
            event = cmn.EVENT.create(
                start_beats=start,
                duration_beats=duration,
                midi_key=key,
            )
            for tied in tied_notes:
                consumed.add(tied.surrogate)
                cmn.note_in_event.append(event, tied)
            cmn.event_in_voice.append(voice, event)
            events.append(event)
    # Keep events ordered by (start, -key) within the voice.
    events.sort(key=lambda e: (e["start_beats"], -e["midi_key"]))
    for position, event in enumerate(events, start=1):
        cmn.event_in_voice.move(event, position)
    return events


def events_of_voice(cmn, voice):
    """The derived events of a voice, in temporal order."""
    return cmn.event_in_voice.children(voice)


def all_events(cmn, score):
    """Every event of the score, ordered by start time then pitch."""
    view = ScoreView(cmn, score)
    events = []
    for voice in view.voices():
        events.extend(events_of_voice(cmn, voice))
    events.sort(key=lambda e: (e["start_beats"], -e["midi_key"], e.surrogate))
    return events


def total_duration_beats(cmn, score):
    """End of the last event, in beats (0 for an empty score)."""
    events = all_events(cmn, score)
    if not events:
        return Fraction(0)
    return max(e["start_beats"] + e["duration_beats"] for e in events)
