"""Aspects of musical entities (figure 12).

"Musical entities in the CMN score have several aspects and
subaspects...  These may be thought of as different views on the
musical schema."
"""

import enum


class Aspect(enum.Enum):
    """The figure 12 aspects and subaspects of musical entities."""

    TEMPORAL = "temporal"
    TIMBRAL = "timbral"
    PITCH = "pitch"
    ARTICULATION = "articulation"
    DYNAMIC = "dynamic"
    GRAPHICAL = "graphical"
    TEXTUAL = "textual"


#: The figure 12 tree: aspect -> subaspects.
ASPECT_TREE = {
    Aspect.TEMPORAL: [],
    Aspect.TIMBRAL: [Aspect.PITCH, Aspect.ARTICULATION, Aspect.DYNAMIC],
    Aspect.GRAPHICAL: [Aspect.TEXTUAL],
}


def top_level_aspects():
    return list(ASPECT_TREE.keys())


def parent_aspect(aspect):
    """The enclosing aspect of a subaspect, or None for a top level."""
    for parent, children in ASPECT_TREE.items():
        if aspect in children:
            return parent
    return None


def render_tree():
    """Deterministic ASCII rendering of figure 12."""
    lines = ["Aspects of Musical Entities"]
    for aspect, children in ASPECT_TREE.items():
        lines.append("|-- %s" % aspect.value)
        for child in children:
            lines.append("|   |-- %s" % child.value)
    return "\n".join(lines)


def aspect_matrix(entities=None):
    """Entity-name -> sorted list of participating aspect names.

    Built from the per-entity aspect declarations in
    :mod:`repro.cmn.entities` (the "not every entity has attributes in
    every aspect" point -- e.g. MIDI events have no graphical aspect).
    """
    from repro.cmn.entities import CMN_ENTITIES

    rows = entities if entities is not None else CMN_ENTITIES
    return {
        definition.name: sorted(a.value for a in definition.aspects)
        for definition in rows
    }
