"""The entities of the CMN schema (figure 11).

Every row of the paper's figure 11 table is declared here with its
description verbatim, its attributes, and the aspects it participates
in.  :func:`entity_table_rows` regenerates the table; the schema module
instantiates the types.
"""

from repro.cmn.aspects import Aspect

_T = Aspect.TEMPORAL
_TI = Aspect.TIMBRAL
_P = Aspect.PITCH
_A = Aspect.ARTICULATION
_D = Aspect.DYNAMIC
_G = Aspect.GRAPHICAL
_X = Aspect.TEXTUAL


class EntityDefinition:
    """One CMN entity type: name, figure-11 description, attributes,
    participating aspects."""

    __slots__ = ("name", "description", "attributes", "aspects")

    def __init__(self, name, description, attributes, aspects):
        self.name = name
        self.description = description
        self.attributes = list(attributes)
        self.aspects = set(aspects)

    def __repr__(self):
        return "EntityDefinition(%r)" % self.name


CMN_ENTITIES = [
    EntityDefinition(
        "SCORE",
        "The unit of musical composition",
        [("title", "string"), ("catalogue_id", "string")],
        {_T, _G, _X},
    ),
    EntityDefinition(
        "MOVEMENT",
        "A temporal subsection of the score",
        [("number", "integer"), ("name", "string"), ("key_fifths", "integer"),
         ("initial_bpm", "integer")],
        {_T},
    ),
    EntityDefinition(
        "MEASURE",
        "A temporal subsection of the movement",
        [("number", "integer"), ("meter", "string")],
        {_T, _G},
    ),
    EntityDefinition(
        "SYNC",
        "Sets of simultaneous events",
        [("offset_beats", "rational")],
        {_T, _G, _X},
    ),
    EntityDefinition(
        "GROUP",
        "A group of contiguous chords and rests in a voice",
        [("kind", "string"), ("label", "string"),
         ("tuplet_actual", "integer"), ("tuplet_normal", "integer")],
        {_T, _A, _G},
    ),
    EntityDefinition(
        "CHORD",
        "A set of notes in one voice at one sync",
        [("duration", "rational"), ("stem_direction", "string"),
         ("articulation", "string"), ("dynamic", "string")],
        {_T, _TI, _A, _D, _G, _X},
    ),
    EntityDefinition(
        "EVENT",
        "An atomic unit of sound, one or more notes",
        [("start_beats", "rational"), ("duration_beats", "rational"),
         ("midi_key", "integer")],
        {_T, _TI, _P},
    ),
    EntityDefinition(
        "NOTE",
        "An atomic unit of music, a pitch in a chord",
        [("degree", "integer"), ("accidental", "string"),
         ("tied_to_next", "boolean")],
        {_T, _TI, _P, _A, _D, _G},
    ),
    EntityDefinition(
        "REST",
        'A "chord" containing no notes',
        [("duration", "rational")],
        {_T, _G},
    ),
    EntityDefinition(
        "MIDI",
        "A MIDI note event.",
        [("key", "integer"), ("velocity", "integer"), ("channel", "integer"),
         ("start_seconds", "float"), ("end_seconds", "float")],
        {_T, _TI, _P, _D},
    ),
    EntityDefinition(
        "MIDI_CONTROL",
        "A MIDI control event at a point in time",
        [("controller", "integer"), ("value", "integer"),
         ("channel", "integer"), ("time_seconds", "float")],
        {_T, _TI},
    ),
    EntityDefinition(
        "ORCHESTRA",
        "A Set of Instruments performing a Score",
        [("name", "string")],
        {_TI},
    ),
    EntityDefinition(
        "SECTION",
        "A family of instruments",
        [("name", "string")],
        {_TI},
    ),
    EntityDefinition(
        "INSTRUMENT",
        "The unit of timbral definition",
        [("name", "string"), ("midi_program", "integer")],
        {_TI, _P, _A, _D, _G},
    ),
    EntityDefinition(
        "PART",
        "Music assigned to an individual performer",
        [("name", "string")],
        {_T, _TI, _G},
    ),
    EntityDefinition(
        "VOICE",
        "The unit of homophony",
        [("number", "integer"), ("name", "string")],
        {_T, _TI, _G},
    ),
    EntityDefinition(
        "TEXT",
        "In vocal music, a line of text associated with the notes",
        [("language", "string")],
        {_G, _X},
    ),
    EntityDefinition(
        "SYLLABLE",
        "The piece of text associated with a single note",
        [("text", "string"), ("hyphenated", "boolean")],
        {_G, _X},
    ),
    EntityDefinition(
        "PAGE",
        "One graphical page of the score",
        [("number", "integer")],
        {_G},
    ),
    EntityDefinition(
        "SYSTEM",
        "One line of the score on a page",
        [("number", "integer")],
        {_G},
    ),
    EntityDefinition(
        "STAFF",
        "A division of the system, associated with an instrument",
        [("number", "integer"), ("clef", "string")],
        {_P, _G},
    ),
    EntityDefinition(
        "DEGREE",
        "A division of the staff (line and space)",
        [("index", "integer"), ("is_line", "boolean")],
        {_P, _G},
    ),
    EntityDefinition(
        "GRAPHICAL_DEFINITION",
        "All the graphical icons and linears",
        [("name", "string"), ("postscript", "string")],
        {_G},
    ),
    EntityDefinition(
        "INSTRUMENT_DEFINITION",
        "Instrument patches and specifications",
        [("name", "string"), ("patch", "string")],
        {_TI},
    ),
    # Figure 11's final row enumerates the many small graphical-attribute
    # entities; we model the ones exercised by the paper's own figures
    # (the STEM example of figure 10 in particular) plus the common set.
    EntityDefinition(
        "STEM",
        "Graphical attribute: a chord's stem",
        [("xpos", "integer"), ("ypos", "integer"), ("length", "integer"),
         ("direction", "integer")],
        {_G},
    ),
    EntityDefinition(
        "NOTEHEAD",
        "Graphical attribute: a note's head",
        [("xpos", "integer"), ("ypos", "integer"), ("shape", "string"),
         ("filled", "boolean")],
        {_G},
    ),
    EntityDefinition(
        "BEAM",
        "Graphical attribute: a beam linking stems",
        [("x1", "integer"), ("y1", "integer"), ("x2", "integer"),
         ("y2", "integer"), ("thickness", "integer")],
        {_G},
    ),
    EntityDefinition(
        "CLEF_SIGN",
        "Graphical attribute: a clef icon on a staff",
        [("name", "string"), ("xpos", "integer")],
        {_P, _G},
    ),
    EntityDefinition(
        "KEY_SIGNATURE_SIGN",
        "Graphical attribute: a key signature on a staff",
        [("fifths", "integer"), ("xpos", "integer")],
        {_P, _G},
    ),
    EntityDefinition(
        "METER_SIGNATURE_SIGN",
        "Graphical attribute: a meter signature on a staff",
        [("text", "string"), ("xpos", "integer")],
        {_T, _G},
    ),
    EntityDefinition(
        "BARLINE",
        "Graphical attribute: a barline",
        [("xpos", "integer"), ("style", "string")],
        {_T, _G},
    ),
    EntityDefinition(
        "ACCIDENTAL_SIGN",
        "Graphical attribute: an accidental before a note",
        [("symbol", "string"), ("xpos", "integer")],
        {_P, _G},
    ),
    EntityDefinition(
        "SLUR_MARK",
        "Graphical attribute: a slur or tie arc",
        [("x1", "integer"), ("y1", "integer"), ("x2", "integer"),
         ("y2", "integer"), ("is_tie", "boolean")],
        {_A, _G},
    ),
    EntityDefinition(
        "ANNOTATION",
        "Graphical attribute: a textual annotation on the score",
        [("text", "string"), ("xpos", "integer"), ("ypos", "integer")],
        {_D, _G, _X},
    ),
]

#: The figure 11 rows proper (name, description) in paper order.
_FIGURE_11_ORDER = [
    "SCORE", "MOVEMENT", "MEASURE", "SYNC", "GROUP", "CHORD", "EVENT",
    "NOTE", "REST", "MIDI", "MIDI_CONTROL", "ORCHESTRA", "SECTION",
    "INSTRUMENT", "PART", "VOICE", "TEXT", "SYLLABLE", "PAGE", "SYSTEM",
    "STAFF", "DEGREE", "GRAPHICAL_DEFINITION", "INSTRUMENT_DEFINITION",
]

BY_NAME = {definition.name: definition for definition in CMN_ENTITIES}


def entity_table_rows():
    """(name, description) rows reproducing figure 11, paper order, with
    the graphical-attribute entities folded into a final summary row."""
    rows = [(name, BY_NAME[name].description) for name in _FIGURE_11_ORDER]
    graphical = [
        definition.name
        for definition in CMN_ENTITIES
        if definition.name not in _FIGURE_11_ORDER
    ]
    rows.append(
        (
            "Other graphical attributes",
            ", ".join(sorted(graphical)),
        )
    )
    return rows
