"""Melodic groups: phrasing and timing structure (figures 8 and 15).

"Groups have a variety of semantic functions in music ... these include
phrasing (e.g. notes covered by a slur) and timing (e.g. beams and
tuplets)."  Groups use the recursive, inhomogeneous ordering

    define ordering group_member (GROUP, CHORD, REST) under GROUP

so a beam group may contain smaller beam groups intermixed with chords,
exactly as in figure 8.
"""

import enum

from repro.errors import NotationError


class GroupKind(enum.Enum):
    """The semantic functions a GROUP may carry (figure 15)."""

    BEAM = "beam"
    SLUR = "slur"
    TUPLET = "tuplet"
    PHRASE = "phrase"


def make_group(cmn, voice, kind, members, label=None, tuplet=None):
    """Create a GROUP of *kind* over *members* in *voice*.

    Members may be CHORD/REST instances or previously created GROUPs
    (which are re-rooted under the new group, building the recursive
    structure).  Returns the GROUP instance.
    """
    if isinstance(kind, GroupKind):
        kind = kind.value
    if kind not in {k.value for k in GroupKind}:
        raise NotationError("unknown group kind %r" % kind)
    if not members:
        raise NotationError("a group needs at least one member")
    actual, normal = (tuplet if tuplet is not None else (None, None))
    # Validate every member before creating anything, so a bad member
    # leaves no half-built group behind.
    for member in members:
        if member.type.name == "GROUP":
            continue
        if member.type.name in ("CHORD", "REST"):
            _check_member_in_voice(cmn, voice, member)
        else:
            raise NotationError(
                "group members must be GROUP/CHORD/REST, got %s" % member.type.name
            )
    group = cmn.GROUP.create(
        kind=kind,
        label=label,
        tuplet_actual=actual,
        tuplet_normal=normal,
    )
    for member in members:
        # Nested group: detach from the voice level if present.
        if member.type.name == "GROUP" and cmn.group_in_voice.contains(member):
            cmn.group_in_voice.remove(member)
    cmn.group_member.extend(group, members)
    cmn.group_in_voice.append(voice, group)
    return group


def _check_member_in_voice(cmn, voice, member):
    parent = cmn.chord_rest_in_voice.parent_of(member)
    if parent is None or parent.surrogate != voice.surrogate:
        raise NotationError("%r is not in voice %r" % (member, voice))


def beam(cmn, voice, members, label=None):
    """A beam group (figure 8's recursive example)."""
    return make_group(cmn, voice, GroupKind.BEAM, members, label)


def slur(cmn, voice, members, label=None):
    """A phrasing slur (figure 15)."""
    return make_group(cmn, voice, GroupKind.SLUR, members, label)


def tuplet(cmn, voice, members, actual, normal, label=None):
    """A tuplet: *actual* notes in the time of *normal* (e.g. 3, 2)."""
    if actual < 1 or normal < 1:
        raise NotationError("tuplet ratio must be positive")
    return make_group(
        cmn, voice, GroupKind.TUPLET, members, label, tuplet=(actual, normal)
    )


def members_of(cmn, group):
    """The ordered members (chords, rests, nested groups) of a group."""
    return cmn.group_member.children(group)


def flatten(cmn, group):
    """Pre-order leaves (chords and rests) of a possibly nested group."""
    out = []
    for member in members_of(cmn, group):
        if member.type.name == "GROUP":
            out.extend(flatten(cmn, member))
        else:
            out.append(member)
    return out


def depth(cmn, group):
    """Nesting depth of a group (1 = no nested groups)."""
    nested = [m for m in members_of(cmn, group) if m.type.name == "GROUP"]
    if not nested:
        return 1
    return 1 + max(depth(cmn, child) for child in nested)
