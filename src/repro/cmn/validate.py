"""Score well-formedness checks beyond the ordering invariants.

These are the CMN-level integrity rules a Music Data Manager would
enforce for its clients: voices fill measures exactly, sync offsets lie
inside their measures, ties connect adjacent chords, chords in one sync
belong to distinct voices.
"""

from fractions import Fraction

from repro.cmn.score import ScoreView


class ValidationIssue:
    """One discovered problem; ``severity`` is "error" or "warning"."""

    __slots__ = ("severity", "code", "message")

    def __init__(self, severity, code, message):
        self.severity = severity
        self.code = code
        self.message = message

    def __repr__(self):
        return "[%s] %s: %s" % (self.severity, self.code, self.message)


def validate_score(cmn, score):
    """Run every check; returns a list of ValidationIssues (empty = ok)."""
    view = ScoreView(cmn, score)
    issues = []
    issues.extend(_check_sync_offsets(cmn, view))
    issues.extend(_check_voice_fill(cmn, view))
    issues.extend(_check_sync_voice_uniqueness(cmn, view))
    issues.extend(_check_ties(cmn, view))
    try:
        cmn.check_invariants()
    except Exception as exc:  # ordering-level corruption
        issues.append(ValidationIssue("error", "ordering", str(exc)))
    return issues


def _check_sync_offsets(cmn, view):
    issues = []
    for movement in view.movements():
        for measure in view.measures(movement):
            meter = view.meter_of(measure)
            for sync in view.syncs(measure):
                offset = sync["offset_beats"]
                if not meter.contains_offset(offset):
                    issues.append(
                        ValidationIssue(
                            "error",
                            "sync-offset",
                            "sync at %s outside measure %d (%s)"
                            % (offset, measure["number"], meter),
                        )
                    )
    return issues


def _check_voice_fill(cmn, view):
    """Each voice's stream should account for a whole number of measures."""
    issues = []
    for voice in view.voices():
        total = Fraction(0)
        for item in view.voice_stream(voice):
            total += item["duration"] * 4
        boundaries = Fraction(0)
        for movement in view.movements():
            for measure in view.measures(movement):
                boundaries += view.meter_of(measure).measure_duration().beats
        if total > boundaries:
            issues.append(
                ValidationIssue(
                    "error",
                    "voice-overflow",
                    "voice %s holds %s beats but the score has %s"
                    % (voice["name"], total, boundaries),
                )
            )
        elif total < boundaries:
            issues.append(
                ValidationIssue(
                    "warning",
                    "voice-underfull",
                    "voice %s holds %s of %s beats (pad with rests?)"
                    % (voice["name"], total, boundaries),
                )
            )
    return issues


def _check_sync_voice_uniqueness(cmn, view):
    """"A chord is a set of notes in one voice at one sync": two chords
    of the same voice must not share a sync."""
    issues = []
    for movement in view.movements():
        for measure in view.measures(movement):
            for sync in view.syncs(measure):
                seen = set()
                for chord in view.chords_at(sync):
                    voice = cmn.chord_rest_in_voice.parent_of(chord)
                    key = None if voice is None else voice.surrogate
                    if key in seen:
                        issues.append(
                            ValidationIssue(
                                "error",
                                "sync-voice",
                                "two chords of one voice share the sync at %s "
                                "in measure %d"
                                % (sync["offset_beats"], measure["number"]),
                            )
                        )
                    seen.add(key)
    return issues


def _check_ties(cmn, view):
    """Ties must find an adjacent continuation chord in the voice."""
    issues = []
    for voice in view.voices():
        stream = [
            item for item in view.voice_stream(voice) if item.type.name == "CHORD"
        ]
        for index, chord in enumerate(stream):
            for note in view.notes_of(chord):
                if note["tied_to_next"] and index + 1 >= len(stream):
                    issues.append(
                        ValidationIssue(
                            "error",
                            "dangling-tie",
                            "tie at the end of voice %s" % voice["name"],
                        )
                    )
    return issues


def errors_only(issues):
    return [issue for issue in issues if issue.severity == "error"]
