"""The database schema for common musical notation (section 7).

- :mod:`repro.cmn.aspects` -- the aspect taxonomy of figure 12.
- :mod:`repro.cmn.entities` -- the entity inventory of figure 11.
- :mod:`repro.cmn.schema` -- the live schema with its HO graphs.
- :mod:`repro.cmn.score` / :mod:`repro.cmn.builder` -- a high-level API
  for building scores as ordered entities.
- :mod:`repro.cmn.events` -- Note/Tie -> Event unification and the
  temporal attributes of section 7.2.
- :mod:`repro.cmn.groups` -- melodic groups, beams, slurs, tuplets.
"""

from repro.cmn.aspects import Aspect, ASPECT_TREE, aspect_matrix
from repro.cmn.entities import CMN_ENTITIES, entity_table_rows
from repro.cmn.schema import CmnSchema, TEMPORAL_ORDERINGS
from repro.cmn.builder import ScoreBuilder
from repro.cmn.events import derive_events
from repro.cmn.groups import GroupKind

__all__ = [
    "Aspect",
    "ASPECT_TREE",
    "aspect_matrix",
    "CMN_ENTITIES",
    "entity_table_rows",
    "CmnSchema",
    "TEMPORAL_ORDERINGS",
    "ScoreBuilder",
    "derive_events",
    "GroupKind",
]
