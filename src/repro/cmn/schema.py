"""The assembled CMN schema: every figure-11 entity type, the orderings
of the temporal HO graph (figure 13), and the timbral / graphical
orderings the paper's section 5.5 examples come from.
"""

from repro.core.hograph import HOGraph
from repro.core.schema import Schema
from repro.cmn.entities import CMN_ENTITIES

# Ordering names, grouped by aspect. ------------------------------------------

#: The temporal-aspect HO graph (figure 13).
TEMPORAL_ORDERINGS = {
    "movement_in_score": (["MOVEMENT"], "SCORE"),
    "measure_in_movement": (["MEASURE"], "MOVEMENT"),
    "sync_in_measure": (["SYNC"], "MEASURE"),
    "chord_in_sync": (["CHORD"], "SYNC"),
    "note_in_chord": (["NOTE"], "CHORD"),
    # Melodic groups: recursive and inhomogeneous (figures 8 and 15).
    "group_member": (["GROUP", "CHORD", "REST"], "GROUP"),
    "group_in_voice": (["GROUP"], "VOICE"),
    # A voice is an ordered sequence of chords and rests intermixed
    # (the section 5.5 inhomogeneous example).
    "chord_rest_in_voice": (["CHORD", "REST"], "VOICE"),
    # The Tie binds multiple notes under a single event (section 7.2).
    "note_in_event": (["NOTE"], "EVENT"),
    "midi_in_event": (["MIDI"], "EVENT"),
    "event_in_voice": (["EVENT"], "VOICE"),
}

#: Timbral organization (the "multiple orderings under a parent" example
#: comes from PART and STAFF both ordered under INSTRUMENT).
TIMBRAL_ORDERINGS = {
    "section_in_orchestra": (["SECTION"], "ORCHESTRA"),
    "instrument_in_section": (["INSTRUMENT"], "SECTION"),
    "part_in_instrument": (["PART"], "INSTRUMENT"),
    "staff_in_instrument": (["STAFF"], "INSTRUMENT"),
    "voice_in_part": (["VOICE"], "PART"),
}

#: Graphical organization.  NOTE under STAFF alongside NOTE under CHORD
#: is the section 5.5 "multiple parents" example.
GRAPHICAL_ORDERINGS = {
    "page_in_score": (["PAGE"], "SCORE"),
    "system_in_page": (["SYSTEM"], "PAGE"),
    "staff_in_system": (["STAFF"], "SYSTEM"),
    "note_on_staff": (["NOTE"], "STAFF"),
    "degree_in_staff": (["DEGREE"], "STAFF"),
    "text_in_part": (["TEXT"], "PART"),
    "syllable_in_text": (["SYLLABLE"], "TEXT"),
}

ALL_ORDERINGS = {}
ALL_ORDERINGS.update(TEMPORAL_ORDERINGS)
ALL_ORDERINGS.update(TIMBRAL_ORDERINGS)
ALL_ORDERINGS.update(GRAPHICAL_ORDERINGS)

#: aspect name -> ordering-name tuple, for HO-graph views.
ORDERINGS_BY_ASPECT = {
    "temporal": tuple(sorted(TEMPORAL_ORDERINGS)),
    "timbral": tuple(sorted(TIMBRAL_ORDERINGS)),
    "graphical": tuple(sorted(GRAPHICAL_ORDERINGS)),
}

RELATIONSHIPS = {
    # "Orchestra: a Set of Instruments performing a Score".
    "PERFORMS": [("orchestra", "ORCHESTRA"), ("score", "SCORE")],
    # Lyrics: a syllable is sung on a chord.
    "SETTING": [("syllable", "SYLLABLE"), ("chord", "CHORD")],
    # Timbre assignment: an instrument realized by a patch definition.
    "PATCHED_AS": [("instrument", "INSTRUMENT"), ("definition", "INSTRUMENT_DEFINITION")],
}


class CmnSchema:
    """The live CMN schema plus convenience accessors.

    Wraps a :class:`~repro.core.schema.Schema` populated with every
    figure-11 entity type and every ordering above.  The wrapped schema
    is exposed as ``.schema``; orderings as attributes
    (``cmn.note_in_chord`` etc.).
    """

    def __init__(self, database=None, name="cmn"):
        self.schema = Schema(name, database=database)
        for definition in CMN_ENTITIES:
            self.schema.define_entity(definition.name, definition.attributes)
        for order_name, (children, parent) in sorted(ALL_ORDERINGS.items()):
            self.schema.define_ordering(order_name, children, under=parent)
        for relationship_name, roles in sorted(RELATIONSHIPS.items()):
            self.schema.define_relationship(relationship_name, roles)

    def __getattr__(self, name):
        # Orderings, relationships and entity types by bare name.
        schema = self.__dict__["schema"]
        if name in schema.orderings:
            return schema.orderings[name]
        if name in schema.relationships:
            return schema.relationships[name]
        if name in schema.entity_types:
            return schema.entity_types[name]
        raise AttributeError(name)

    def entity(self, name):
        return self.schema.entity_type(name)

    def ordering(self, name):
        return self.schema.ordering(name)

    def ho_graph(self, aspect=None):
        """The HO graph of the whole schema or of one aspect's view."""
        if aspect is None:
            names = sorted(ALL_ORDERINGS)
        else:
            names = list(ORDERINGS_BY_ASPECT[aspect])
        return HOGraph(self.schema, names)

    def temporal_ho_graph(self):
        """Figure 13: the HO graph for the temporal aspect."""
        return self.ho_graph("temporal")

    def check_invariants(self):
        self.schema.check_invariants()

    def statistics(self):
        return self.schema.statistics()
