"""Accidentals and their within-measure scope.

In CMN an accidental applies to its own note and to later notes at the
same staff position until the next barline (or a contradicting
accidental).  :class:`AccidentalState` tracks that state while a
measure is read left to right -- more of the meta-musical, procedural
knowledge of section 4.3.
"""

import enum

from repro.errors import NotationError


class Accidental(enum.Enum):
    """An explicit accidental sign; the value is its alteration."""

    DOUBLE_FLAT = -2
    FLAT = -1
    NATURAL = 0
    SHARP = 1
    DOUBLE_SHARP = 2

    @property
    def alteration(self):
        return self.value

    @property
    def symbol(self):
        return {
            Accidental.DOUBLE_FLAT: "bb",
            Accidental.FLAT: "b",
            Accidental.NATURAL: "n",
            Accidental.SHARP: "#",
            Accidental.DOUBLE_SHARP: "##",
        }[self]

    @classmethod
    def from_symbol(cls, symbol):
        if symbol is None or symbol == "":
            return None
        mapping = {
            "bb": cls.DOUBLE_FLAT,
            "b": cls.FLAT,
            "-": cls.FLAT,  # DARMS uses '-' for flat
            "n": cls.NATURAL,
            "*": cls.NATURAL,  # DARMS natural
            "#": cls.SHARP,
            "##": cls.DOUBLE_SHARP,
            "x": cls.DOUBLE_SHARP,
        }
        try:
            return mapping[symbol]
        except KeyError:
            raise NotationError("unknown accidental symbol %r" % symbol)


class AccidentalState:
    """Accidentals in force within the current measure, per staff degree."""

    def __init__(self, key_signature=None):
        self.key_signature = key_signature
        self._in_force = {}  # staff degree -> alteration

    def barline(self):
        """Cross a barline: measure-scoped accidentals expire."""
        self._in_force.clear()

    def apply(self, degree, step, accidental=None):
        """The alteration for a note at *degree* (letter *step*).

        If the note carries an explicit *accidental*, it takes effect
        now and persists for the rest of the measure at this degree.
        Otherwise an earlier accidental at the same degree applies;
        failing that, the key signature's alteration for the step.
        """
        if accidental is not None:
            alteration = accidental.alteration
            self._in_force[degree] = alteration
            return alteration
        if degree in self._in_force:
            return self._in_force[degree]
        if self.key_signature is not None:
            return self.key_signature.alteration_of(step)
        return 0

    def in_force(self):
        """Snapshot of degree -> alteration currently in force."""
        return dict(self._in_force)
