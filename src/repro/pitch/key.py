"""Key signatures: declarative and procedural meaning (section 4.3).

A key signature of three sharps *declares* "the piece is in A major (or
f# minor)" and *prescribes* "perform all notes notated as F, C, or G one
semitone higher than written".  :class:`KeySignature` exposes both
readings.
"""

from repro.errors import NotationError

#: Order in which sharps are added to a signature.
_SHARP_ORDER = "FCGDAEB"
#: Order in which flats are added.
_FLAT_ORDER = "BEADGCF"

_MAJOR_BY_FIFTHS = {
    -7: "Cb", -6: "Gb", -5: "Db", -4: "Ab", -3: "Eb", -2: "Bb", -1: "F",
    0: "C", 1: "G", 2: "D", 3: "A", 4: "E", 5: "B", 6: "F#", 7: "C#",
}
_MINOR_BY_FIFTHS = {
    -7: "ab", -6: "eb", -5: "bb", -4: "f", -3: "c", -2: "g", -1: "d",
    0: "a", 1: "e", 2: "b", 3: "f#", 4: "c#", 5: "g#", 6: "d#", 7: "a#",
}


class KeySignature:
    """A key signature, identified by its position on the circle of
    fifths: positive = sharps, negative = flats."""

    __slots__ = ("fifths",)

    def __init__(self, fifths):
        if not -7 <= fifths <= 7:
            raise NotationError("key signature %r out of range -7..7" % (fifths,))
        self.fifths = fifths

    @classmethod
    def sharps(cls, count):
        return cls(count)

    @classmethod
    def flats(cls, count):
        return cls(-count)

    @classmethod
    def of_major(cls, tonic):
        for fifths, name in _MAJOR_BY_FIFTHS.items():
            if name.lower() == tonic.lower():
                return cls(fifths)
        raise NotationError("no major key %r" % tonic)

    @classmethod
    def of_minor(cls, tonic):
        for fifths, name in _MINOR_BY_FIFTHS.items():
            if name.lower() == tonic.lower():
                return cls(fifths)
        raise NotationError("no minor key %r" % tonic)

    # -- declarative meaning ----------------------------------------------------

    def major_key(self):
        """The major tonality this signature declares (e.g. ``"A"``)."""
        return _MAJOR_BY_FIFTHS[self.fifths]

    def minor_key(self):
        """The relative minor (e.g. ``"f#"``)."""
        return _MINOR_BY_FIFTHS[self.fifths]

    def declarative_meaning(self):
        """The paper's declarative reading, as text."""
        return "The piece is in the key of %s major (or %s minor)" % (
            self.major_key(),
            self.minor_key(),
        )

    # -- procedural meaning ------------------------------------------------------

    def altered_steps(self):
        """The step letters the signature alters, in signature order."""
        if self.fifths > 0:
            return list(_SHARP_ORDER[: self.fifths])
        if self.fifths < 0:
            return list(_FLAT_ORDER[: -self.fifths])
        return []

    def alteration_of(self, step):
        """+1, -1, or 0: how the signature alters notes on *step*."""
        step = step.upper()
        if self.fifths > 0 and step in _SHARP_ORDER[: self.fifths]:
            return 1
        if self.fifths < 0 and step in _FLAT_ORDER[: -self.fifths]:
            return -1
        return 0

    def procedural_meaning(self):
        """The paper's procedural reading, as text."""
        steps = self.altered_steps()
        if not steps:
            return "Perform all notes as written"
        direction = "higher" if self.fifths > 0 else "lower"
        return "Perform all notes notated as %s one semitone %s than written" % (
            ", ".join(steps),
            direction,
        )

    def accidental_count(self):
        return abs(self.fifths)

    def __eq__(self, other):
        return isinstance(other, KeySignature) and self.fifths == other.fifths

    def __hash__(self):
        return hash(self.fifths)

    def __repr__(self):
        if self.fifths >= 0:
            return "KeySignature(%d sharps)" % self.fifths
        return "KeySignature(%d flats)" % -self.fifths
