"""Pitches: spelled note names with MIDI keys and frequencies."""

from repro.errors import NotationError

STEP_NAMES = "CDEFGAB"

#: Semitone offset of each step above C.
_STEP_SEMITONES = {"C": 0, "D": 2, "E": 4, "F": 5, "G": 7, "A": 9, "B": 11}

_ALTER_SUFFIX = {-2: "bb", -1: "b", 0: "", 1: "#", 2: "##"}


class PitchClass:
    """A spelled pitch class: step letter plus alteration (octave-free)."""

    __slots__ = ("step", "alter")

    def __init__(self, step, alter=0):
        step = step.upper()
        if step not in _STEP_SEMITONES:
            raise NotationError("bad pitch step %r" % step)
        if alter not in _ALTER_SUFFIX:
            raise NotationError("alteration %r out of range -2..2" % (alter,))
        self.step = step
        self.alter = alter

    @property
    def semitone(self):
        """Semitones above C, modulo 12."""
        return (_STEP_SEMITONES[self.step] + self.alter) % 12

    def name(self):
        return self.step + _ALTER_SUFFIX[self.alter]

    def __eq__(self, other):
        return (
            isinstance(other, PitchClass)
            and self.step == other.step
            and self.alter == other.alter
        )

    def __hash__(self):
        return hash((self.step, self.alter))

    def __repr__(self):
        return "PitchClass(%r)" % self.name()


class Pitch:
    """A spelled pitch with octave (scientific pitch notation).

    ``Pitch("G", 0, 4)`` is the G above middle C; MIDI key 67.
    """

    __slots__ = ("step", "alter", "octave")

    def __init__(self, step, alter=0, octave=4):
        pitch_class = PitchClass(step, alter)  # validates
        self.step = pitch_class.step
        self.alter = pitch_class.alter
        self.octave = int(octave)

    @classmethod
    def parse(cls, text):
        """Parse names like ``"C4"``, ``"F#3"``, ``"Bb-1"``, ``"G##2"``."""
        if not text:
            raise NotationError("empty pitch name")
        step = text[0].upper()
        rest = text[1:]
        alter = 0
        while rest.startswith("#"):
            alter += 1
            rest = rest[1:]
        while rest.startswith("b") and not _looks_like_octave(rest):
            alter -= 1
            rest = rest[1:]
        try:
            octave = int(rest)
        except ValueError:
            raise NotationError("bad pitch name %r" % text)
        return cls(step, alter, octave)

    @classmethod
    def from_midi(cls, key, prefer_flats=False):
        """Spell a MIDI key number (sharp spellings unless *prefer_flats*)."""
        if not 0 <= key <= 127:
            raise NotationError("MIDI key %r out of range 0..127" % (key,))
        octave, semitone = divmod(key, 12)
        octave -= 1  # MIDI 60 = C4
        sharps = ["C", "C#", "D", "D#", "E", "F", "F#", "G", "G#", "A", "A#", "B"]
        flats = ["C", "Db", "D", "Eb", "E", "F", "Gb", "G", "Ab", "A", "Bb", "B"]
        name = (flats if prefer_flats else sharps)[semitone]
        alter = name.count("#") - name.count("b")
        return cls(name[0], alter, octave)

    @property
    def pitch_class(self):
        return PitchClass(self.step, self.alter)

    @property
    def midi_key(self):
        """MIDI key number (C4 = 60)."""
        key = (self.octave + 1) * 12 + _STEP_SEMITONES[self.step] + self.alter
        if not 0 <= key <= 127:
            raise NotationError("pitch %s outside MIDI range" % self.name())
        return key

    def frequency(self, a4=440.0):
        """Equal-tempered frequency in Hz."""
        return a4 * 2.0 ** ((self.midi_key - 69) / 12.0)

    def name(self):
        return "%s%s%d" % (self.step, _ALTER_SUFFIX[self.alter], self.octave)

    def transposed(self, semitones):
        """The enharmonic respelling *semitones* away (sharp-spelled)."""
        return Pitch.from_midi(self.midi_key + semitones)

    def diatonic_index(self):
        """Steps above C0 ignoring alteration (staff-position arithmetic)."""
        return self.octave * 7 + STEP_NAMES.index(self.step)

    @classmethod
    def from_diatonic_index(cls, index, alter=0):
        octave, step_index = divmod(index, 7)
        return cls(STEP_NAMES[step_index], alter, octave)

    def __eq__(self, other):
        return (
            isinstance(other, Pitch)
            and self.step == other.step
            and self.alter == other.alter
            and self.octave == other.octave
        )

    def __lt__(self, other):
        return self.midi_key < other.midi_key

    def __hash__(self):
        return hash((self.step, self.alter, self.octave))

    def __repr__(self):
        return "Pitch(%r)" % self.name()


def _looks_like_octave(rest):
    """Disambiguate 'b' flats from octave digits in Pitch.parse input."""
    return rest[:1].lstrip("-").isdigit()
