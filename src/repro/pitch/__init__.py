"""Pitch substrate and the section 4.3 meta-musical rules.

A note's *performance pitch* is not stored directly: it is derived
procedurally from its staff degree, the governing clef ("Every Good Boy
Does Fine"), the key signature, and any accidentals earlier in the
measure.  This package implements that derivation.
"""

from repro.pitch.pitch import Pitch, PitchClass, STEP_NAMES
from repro.pitch.clef import Clef, TREBLE, BASS, ALTO, TENOR
from repro.pitch.key import KeySignature
from repro.pitch.accidental import Accidental, AccidentalState
from repro.pitch.spelling import performance_pitch, spell_midi_key

__all__ = [
    "Pitch",
    "PitchClass",
    "STEP_NAMES",
    "Clef",
    "TREBLE",
    "BASS",
    "ALTO",
    "TENOR",
    "KeySignature",
    "Accidental",
    "AccidentalState",
    "performance_pitch",
    "spell_midi_key",
]
