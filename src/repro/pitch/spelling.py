"""Deriving performance pitch from notation (section 4.3).

"The performance pitch of a note depends procedurally ... on other
elements on the same staff line, such as clefs and key signatures."
:func:`performance_pitch` is that procedure: staff degree + clef + key
signature + accidental state -> a concrete :class:`Pitch`.
"""

from repro.pitch.accidental import Accidental, AccidentalState
from repro.pitch.clef import Clef
from repro.pitch.pitch import Pitch


def performance_pitch(degree, clef, accidental_state=None, accidental=None):
    """The sounding pitch of a note at staff *degree* under *clef*.

    *accidental_state* carries the key signature and the accidentals
    already seen this measure; *accidental* is the note's own explicit
    accidental, if any.  Without a state, notes sound as the bare scale
    degree (C-major reading).
    """
    if accidental_state is None:
        accidental_state = AccidentalState()
    if isinstance(accidental, str):
        accidental = Accidental.from_symbol(accidental)
    base = clef.degree_to_pitch(degree)
    alteration = accidental_state.apply(degree, base.step, accidental)
    return Pitch(base.step, alteration, base.octave)


def spell_midi_key(degree, clef, accidental_state=None, accidental=None):
    """Like :func:`performance_pitch` but returns the MIDI key number."""
    return performance_pitch(degree, clef, accidental_state, accidental).midi_key


def degree_for_pitch(pitch, clef):
    """Where *pitch* sits on the staff under *clef* (inverse mapping)."""
    if not isinstance(clef, Clef):
        raise TypeError("clef required")
    return clef.pitch_to_degree(pitch)
