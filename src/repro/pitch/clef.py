"""Clefs: the mapping from staff degree to scale pitch (section 4.3).

"All subsequent notes on the same staff as the treble clef have a
mapping from staff degree to scale pitch which is 'Every Good Boy Does
Fine'."  A staff *degree* here counts diatonic steps from the bottom
line of the five-line staff: 0 = bottom line, 1 = the space above it,
... 8 = top line.  Ledger lines extend the range in both directions.
"""

from repro.errors import NotationError
from repro.pitch.pitch import Pitch


class Clef:
    """A clef positioned on a staff line.

    *reference_degree* is the staff degree of *reference_pitch*: the
    treble (G) clef curls around line 2 (degree 2), marking it G4.
    """

    __slots__ = ("name", "symbol", "reference_degree", "reference_pitch")

    def __init__(self, name, symbol, reference_degree, reference_pitch):
        self.name = name
        self.symbol = symbol
        self.reference_degree = reference_degree
        self.reference_pitch = reference_pitch

    def degree_to_pitch(self, degree, alter=0):
        """The (unaltered scale) pitch at a staff degree, with *alter*."""
        index = self.reference_pitch.diatonic_index() + (
            degree - self.reference_degree
        )
        if index < 0:
            raise NotationError("degree %d is below pitch space" % degree)
        return Pitch.from_diatonic_index(index, alter)

    def pitch_to_degree(self, pitch):
        """The staff degree where *pitch* is notated under this clef."""
        return self.reference_degree + (
            pitch.diatonic_index() - self.reference_pitch.diatonic_index()
        )

    def line_pitches(self):
        """The pitches of the five staff lines, bottom to top.

        For the treble clef: E4 G4 B4 D5 F5 -- "Every Good Boy Does
        Fine".
        """
        return [self.degree_to_pitch(degree) for degree in (0, 2, 4, 6, 8)]

    def mnemonic(self):
        """The line letters, e.g. ``"E G B D F"`` for treble."""
        return " ".join(p.step for p in self.line_pitches())

    def __eq__(self, other):
        return isinstance(other, Clef) and self.name == other.name

    def __hash__(self):
        return hash(self.name)

    def __repr__(self):
        return "Clef(%r)" % self.name


TREBLE = Clef("treble", "G", 2, Pitch("G", 0, 4))
BASS = Clef("bass", "F", 6, Pitch("F", 0, 3))
ALTO = Clef("alto", "C", 4, Pitch("C", 0, 4))
TENOR = Clef("tenor", "C", 6, Pitch("C", 0, 4))

BY_NAME = {clef.name: clef for clef in (TREBLE, BASS, ALTO, TENOR)}


def clef_by_name(name):
    try:
        return BY_NAME[name.lower()]
    except KeyError:
        raise NotationError("unknown clef %r" % name)
