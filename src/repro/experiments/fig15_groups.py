"""Figure 15: groups.

"Groups have a variety of semantic functions in music ... these include
phrasing (e.g. notes covered by a slur) and timing (e.g. beams and
tuplets).  A group has the temporal attribute 'duration', which is a
function of the duration of its constituent chords and rests."

We build a voice carrying a slur group, a beam group, and a triplet,
and verify the derived durations -- including the tuplet scaling.
"""

from fractions import Fraction

from repro.cmn.builder import ScoreBuilder
from repro.cmn.groups import beam, flatten, slur, tuplet
from repro.experiments.registry import ExperimentResult


def run():
    builder = ScoreBuilder("fig15", meter="4/4")
    voice = builder.add_voice("melody")
    cmn = builder.cmn

    # Measure 1: a slurred phrase of two quarters and a half.
    phrase_chords = [
        builder.note(voice, "E4", Fraction(1, 4)),
        builder.note(voice, "F4", Fraction(1, 4)),
        builder.note(voice, "G4", Fraction(1, 2)),
    ]
    phrase = slur(cmn, voice, phrase_chords, label="phrase")

    # Measure 2: a beamed run, then a quarter triplet (3 in the time
    # of 2), then a rest.
    beamed_chords = [
        builder.note(voice, "A4", Fraction(1, 8)),
        builder.note(voice, "B4", Fraction(1, 8)),
        builder.note(voice, "C5", Fraction(1, 8)),
        builder.note(voice, "D5", Fraction(1, 8)),
    ]
    beamed = beam(cmn, voice, beamed_chords, label="run")
    triplet_chords = [
        builder.note(voice, "E5", Fraction(1, 12)),
        builder.note(voice, "D5", Fraction(1, 12)),
        builder.note(voice, "C5", Fraction(1, 12)),
    ]
    # Three eighth-triplet notes in the time of two eighths: stored at
    # their sounding duration (1/12 whole each), ratio 3:2 recorded as
    # notation metadata.
    builder.rest(voice, Fraction(1, 4))
    trip = tuplet(cmn, voice, triplet_chords, actual=3, normal=2, label="triplet")
    builder.finish(derive=False)

    view = builder.view
    durations = {
        "phrase": view.group_duration_beats(phrase),
        "beamed run": view.group_duration_beats(beamed),
        "triplet": view.group_duration_beats(trip),
    }

    lines = ["Groups over voice 'melody':"]
    for group, label in ((phrase, "slur/phrase"), (beamed, "beam"),
                         (trip, "tuplet 3:2")):
        leaves = flatten(cmn, group)
        member_durations = " + ".join(
            str(leaf["duration"] * 4) for leaf in leaves
        )
        lines.append(
            "  %-12s %d members, duration = f(%s) = %s beats"
            % (
                label,
                len(leaves),
                member_durations,
                view.group_duration_beats(group),
            )
        )
    lines.append("")
    lines.append("Semantic functions: phrasing (slur), timing (beam, tuplet)")

    kinds = {g["kind"] for g in view.groups_of_voice(voice)}
    return ExperimentResult(
        "fig15",
        "Groups (phrasing and timing)",
        "\n".join(lines),
        data={name: str(value) for name, value in durations.items()},
        checks={
            "three_groups": len(view.groups_of_voice(voice)) == 3,
            "all_kinds": kinds == {"slur", "beam", "tuplet"},
            "phrase_duration": durations["phrase"] == Fraction(4),
            "beam_duration": durations["beamed run"] == Fraction(2),
            # Three sounding twelfth-notes span one beat in total.
            "tuplet_duration": durations["triplet"] == Fraction(1),
            "tuplet_ratio_recorded": trip["tuplet_actual"] == 3
            and trip["tuplet_normal"] == 2,
        },
    )
