"""Figure 6: a simple instance graph.

"This graph, in its entirety, could represent, for example, a four note
chord.  It consists of a parent, y, and an ordered set of children,
{u, v, w, x} ... we may speak of the node w in this figure as the third
child of the parent labeled y."
"""

from repro.core.instance_graph import InstanceGraph
from repro.core.schema import Schema
from repro.experiments.registry import ExperimentResult


def run():
    schema = Schema("fig06")
    schema.define_entity("CHORD", [("name", "string")])
    schema.define_entity("NOTE", [("name", "string")])
    ordering = schema.define_ordering("note_in_chord", ["NOTE"], under="CHORD")

    y = schema.entity_type("CHORD").create(name="y")
    children = {}
    for label in ("u", "v", "w", "x"):
        child = schema.entity_type("NOTE").create(name=label)
        children[label] = child
        ordering.append(y, child)

    graph = InstanceGraph.from_ordering(ordering)
    graph.label(y, "y")
    for label, child in children.items():
        graph.label(child, label)

    artifact = graph.to_ascii() + "\n\n" + graph.to_edge_list()
    third = ordering.child_at(y, 3)

    return ExperimentResult(
        "fig06",
        "A simple instance graph",
        artifact,
        data={
            "node_count": graph.node_count(),
            "edges": graph.edge_counts(),
            "third_child": third["name"],
        },
        checks={
            "five_nodes": graph.node_count() == 5,
            "four_p_edges": graph.edge_counts()["p_edges"] == 4,
            "three_s_edges": graph.edge_counts()["s_edges"] == 3,
            "w_is_third_child": third["name"] == "w",
            "ordering_u_before_x": ordering.before(children["u"], children["x"]),
        },
    )
