"""Figure 11 (the entity table): the entities of a CMN schema.

Regenerates the table from the live schema -- each row's name and
description come from the entity definitions the schema is actually
built from, so the table cannot drift from the implementation.
"""

from repro.cmn.entities import BY_NAME, entity_table_rows
from repro.cmn.schema import CmnSchema
from repro.experiments.registry import ExperimentResult

#: The (name, description) rows exactly as printed in figure 11.
_PAPER_ROWS = [
    ("SCORE", "The unit of musical composition"),
    ("MOVEMENT", "A temporal subsection of the score"),
    ("MEASURE", "A temporal subsection of the movement"),
    ("SYNC", "Sets of simultaneous events"),
    ("GROUP", "A group of contiguous chords and rests in a voice"),
    ("CHORD", "A set of notes in one voice at one sync"),
    ("EVENT", "An atomic unit of sound, one or more notes"),
    ("NOTE", "An atomic unit of music, a pitch in a chord"),
    ("REST", 'A "chord" containing no notes'),
    ("MIDI", "A MIDI note event."),
    ("MIDI_CONTROL", "A MIDI control event at a point in time"),
    ("ORCHESTRA", "A Set of Instruments performing a Score"),
    ("SECTION", "A family of instruments"),
    ("INSTRUMENT", "The unit of timbral definition"),
    ("PART", "Music assigned to an individual performer"),
    ("VOICE", "The unit of homophony"),
    ("TEXT", "In vocal music, a line of text associated with the notes"),
    ("SYLLABLE", "The piece of text associated with a single note"),
    ("PAGE", "One graphical page of the score"),
    ("SYSTEM", "One line of the score on a page"),
    ("STAFF", "A division of the system, associated with an instrument"),
    ("DEGREE", "A division of the staff (line and space)"),
    ("GRAPHICAL_DEFINITION", "All the graphical icons and linears"),
    ("INSTRUMENT_DEFINITION", "Instrument patches and specifications"),
]


def run():
    cmn = CmnSchema()
    rows = entity_table_rows()
    width = max(len(name) for name, _ in rows)
    lines = ["%-*s | Description" % (width, "Entity type")]
    lines.append("-" * (width + 3 + 40))
    for name, description in rows:
        lines.append("%-*s | %s" % (width, name, description))

    named_rows = rows[:-1]
    descriptions_match = all(
        (name, description) in _PAPER_ROWS for name, description in named_rows
    )
    all_instantiated = all(
        cmn.schema.has_entity_type(name) for name, _ in named_rows
    )
    attributes_present = all(
        BY_NAME[name].attributes for name, _ in named_rows
    )

    return ExperimentResult(
        "tab11",
        "The entities of a CMN schema (figure 11)",
        "\n".join(lines),
        data={"rows": rows, "entity_count": len(named_rows)},
        checks={
            "row_count": len(named_rows) == len(_PAPER_ROWS),
            "descriptions_match_paper": descriptions_match,
            "all_types_in_live_schema": all_instantiated,
            "all_types_have_attributes": attributes_present,
            "graphical_attributes_row": rows[-1][0]
            == "Other graphical attributes",
        },
    )
