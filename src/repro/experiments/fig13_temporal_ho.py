"""Figure 13: the HO graph for the temporal aspect.

Score -> Movement -> Measure -> Sync -> Chord -> Note; Groups of chords
and rests in voices (recursive); Events binding tied notes, with MIDI
at the bottom.  We render the graph from the *live* CMN schema and
verify the temporal attribute flow of section 7.2 on real data: score
duration = sum of movement durations; chord start times inherited from
parent syncs; events in performance time at the bottom.
"""

from fractions import Fraction

from repro.cmn.schema import CmnSchema, TEMPORAL_ORDERINGS
from repro.experiments.registry import ExperimentResult
from repro.fixtures.bwv578 import build_bwv578_score
from repro.midi.extract import extract_midi, stored_midi_of_score


def run():
    cmn = CmnSchema()
    graph = cmn.temporal_ho_graph()
    artifact = graph.to_ascii()

    # Live temporal attributes on the BWV 578 opening.
    builder = build_bwv578_score()
    view = builder.view
    movement = view.movements()[0]
    score_duration = view.score_duration_beats()
    movement_duration = view.movement_duration_beats(movement)
    first_measure = view.measures(movement)[0]
    first_sync = view.syncs(first_measure)[0]
    first_chord = view.chords_at(first_sync)[0]
    chord_start = view.chord_start_beats(first_chord)
    extract_midi(builder.cmn, builder.score)
    stored = stored_midi_of_score(builder.cmn, builder.score)

    artifact += "\n\nTemporal attributes on BWV 578 (live data):\n"
    artifact += "  score duration   : %s beats\n" % score_duration
    artifact += "  movement duration: %s beats\n" % movement_duration
    artifact += "  first chord start: %s (inherited from its sync)\n" % chord_start
    artifact += "  MIDI entities    : %d, in performance seconds\n" % len(stored)

    edges = {name: (children, parent) for name, children, parent in graph.edges()}
    return ExperimentResult(
        "fig13",
        "HO graph for the temporal aspect",
        artifact,
        data={
            "orderings": sorted(edges),
            "score_duration_beats": str(score_duration),
        },
        checks={
            "all_temporal_orderings_present": set(edges)
            == set(TEMPORAL_ORDERINGS),
            "spine": edges["movement_in_score"] == (("MOVEMENT",), "SCORE")
            and edges["measure_in_movement"] == (("MEASURE",), "MOVEMENT")
            and edges["sync_in_measure"] == (("SYNC",), "MEASURE")
            and edges["chord_in_sync"] == (("CHORD",), "SYNC")
            and edges["note_in_chord"] == (("NOTE",), "CHORD"),
            "groups_inhomogeneous_recursive": edges["group_member"]
            == (("GROUP", "CHORD", "REST"), "GROUP"),
            "events_bind_notes": edges["note_in_event"] == (("NOTE",), "EVENT"),
            "midi_at_bottom": edges["midi_in_event"] == (("MIDI",), "EVENT"),
            "score_duration_sums_movements": score_duration == movement_duration,
            "chord_start_inherited": chord_start == Fraction(0),
            "midi_in_seconds": bool(stored)
            and all(m["end_seconds"] > m["start_seconds"] for m in stored),
        },
    )
