"""Figure 3: the piano roll of the fugue opening.

"Each note is represented by a black rectangle.  The entrances of the
fugue, which are normally hidden in a piano roll notation, have been
shaded in grey.  They are clearly distinguished in the CMN score by a
change in note stem direction."

We regenerate the roll from the stored BWV 578 opening, shading the
answer voice, and verify the structural claims: the subject's rectangle
pattern recurs (transposed) at the answer entrance, and the shaded
voice's chords carry the explicit stem direction.
"""

from repro.experiments.registry import ExperimentResult
from repro.fixtures.bwv578 import build_bwv578_score
from repro.pianoroll.render import render_ascii
from repro.pianoroll.roll import PianoRoll


def run():
    builder = build_bwv578_score()
    cmn = builder.cmn
    roll = PianoRoll.from_score(cmn, builder.score, shade_voices={"alto"})
    artifact = render_ascii(roll, cells_per_beat=2)

    soprano = [n for n in roll.notes if n.voice == "soprano"]
    alto = [n for n in roll.notes if n.voice == "alto"]
    subject_intervals = _intervals(soprano[: len(alto)])
    answer_intervals = _intervals(alto)
    entrance_beat = min(n.start_beats for n in alto)
    # Stem directions distinguish the entrance in CMN (figure 3 caption).
    view = builder.view
    alto_voice = builder.voice("alto")
    stems = {
        item["stem_direction"]
        for item in view.voice_stream(alto_voice)
        if item.type.name == "CHORD"
    }
    keyboard_at_entry = roll.keyboard_state_at(entrance_beat)

    return ExperimentResult(
        "fig03",
        "A piano roll (the fugue opening)",
        artifact,
        data={
            "notes": len(roll.notes),
            "shaded_notes": sum(1 for n in roll.notes if n.shaded),
            "entrance_beat": float(entrance_beat),
            "keyboard_state_at_entrance": keyboard_at_entry,
        },
        checks={
            "two_voices": bool(soprano) and bool(alto),
            "entrance_after_two_measures": entrance_beat == 8,
            "answer_is_transposed_subject": subject_intervals[:10]
            == answer_intervals[:10],
            "entrance_shaded": all(n.shaded for n in alto),
            "stems_mark_entrance": stems == {"D"},
            "polyphony_at_entrance": len(keyboard_at_entry) >= 2,
        },
        notes="Subject rhythm simplified from the engraving; answer a "
              "fourth below (real answer).",
    )


def _intervals(notes):
    ordered = sorted(notes, key=lambda n: n.start_beats)
    keys = [n.key for n in ordered]
    return [b - a for a, b in zip(keys, keys[1:])]
