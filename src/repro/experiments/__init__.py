"""The figure/table regeneration harness.

Every figure and table of the paper maps to one experiment module with
a ``run()`` returning an :class:`ExperimentResult`.  The registry runs
them all; ``repro.experiments.report`` writes EXPERIMENTS.md.
"""

from repro.experiments.registry import (
    ExperimentResult,
    all_experiment_ids,
    get_experiment,
    run_all,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "all_experiment_ids",
    "get_experiment",
    "run_all",
    "run_experiment",
]
