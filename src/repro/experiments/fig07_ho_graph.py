"""Figure 7: a hierarchical ordering graph.

One ordering, one HO-graph edge: "each edge in the HO graph corresponds
to one define ordering statement."  We render the graph for
``define ordering note_in_chord (NOTE) under CHORD`` and verify the
classification machinery recognizes it as the simple form.
"""

from repro.core.hograph import HOGraph, OrderingForm
from repro.core.schema import Schema
from repro.ddl.compiler import execute_ddl
from repro.experiments.registry import ExperimentResult

_DDL = """
define entity CHORD (name = integer)
define entity NOTE (name = integer)
define ordering note_in_chord (NOTE) under CHORD
"""


def run():
    schema = execute_ddl(_DDL, Schema("fig07"))
    graph = HOGraph(schema)
    artifact = graph.to_ascii() + "\n\nDOT form:\n" + graph.to_dot()
    classification = graph.classification()
    forms = graph.classify(schema.ordering("note_in_chord"))

    return ExperimentResult(
        "fig07",
        "A hierarchical ordering graph",
        artifact,
        data={"edges": graph.edges(), "classification": classification},
        checks={
            "one_edge": len(graph.edges()) == 1,
            "edge_matches_statement": graph.edges()[0]
            == ("note_in_chord", ("NOTE",), "CHORD"),
            "classified_simple": forms == {OrderingForm.SIMPLE},
            "no_type_cycles": graph.validate() is None,
        },
    )
