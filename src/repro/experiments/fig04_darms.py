"""Figure 4: DARMS encoding.

Three panels: (a) a fragment of music, (b) its DARMS encoding, (c) the
abbreviation key.  We regenerate all three from the Gloria fixture, and
additionally exercise the canonizer the paper describes: user DARMS
(carried durations, short positions, rest counts) -> canonical DARMS,
and the decode -> re-encode fixed point.
"""

from repro.darms.canonical import canonize
from repro.darms.encode import score_to_darms
from repro.darms.decode import darms_to_score
from repro.experiments.registry import ExperimentResult
from repro.fixtures.gloria import ABBREVIATION_KEY, GLORIA_USER_DARMS, build_gloria_score
from repro.graphics.render import render_staff


def _all_durations_explicit(text):
    """Every note/rest element of *text* carries a duration letter."""
    from repro.darms.parser import parse_darms
    from repro.darms.tokens import BeamGroup, NoteCode, RestCode

    def walk(elements):
        for element in elements:
            if isinstance(element, (NoteCode, RestCode)):
                if element.duration is None:
                    return False
            elif isinstance(element, BeamGroup):
                if not walk(element.members):
                    return False
        return True

    return walk(parse_darms(text))


def _has_nested_beam(text):
    """True if the parsed encoding contains a beam inside a beam."""
    from repro.darms.parser import parse_darms
    from repro.darms.tokens import BeamGroup

    def walk(elements, depth):
        for element in elements:
            if isinstance(element, BeamGroup):
                if depth >= 1:
                    return True
                if walk(element.members, depth + 1):
                    return True
        return False

    return walk(parse_darms(text), 0)


def run():
    builder, score = build_gloria_score()
    voice = builder.voices()[0]
    panel_a = render_staff(builder.cmn, score, voice)
    canonical = canonize(GLORIA_USER_DARMS)
    reencoded = score_to_darms(builder.cmn, score)
    builder2, score2 = darms_to_score(reencoded, title="round trip")
    fixed_point = score_to_darms(builder2.cmn, score2)
    panel_c = "\n".join(
        "  %-8s %s" % (code, meaning) for code, meaning in ABBREVIATION_KEY
    )

    artifact = "\n".join(
        [
            "(a) A Fragment of Music",
            panel_a,
            "",
            "(b) Its DARMS Encoding (user form)",
            "  " + GLORIA_USER_DARMS,
            "",
            "    canonical form (output of the canonizer)",
            "  " + canonical,
            "",
            "(c) Abbreviation Key",
            panel_c,
        ]
    )

    counts = builder.view.counts()
    return ExperimentResult(
        "fig04",
        "DARMS encoding of a fragment of music",
        artifact,
        data={
            "user_darms": GLORIA_USER_DARMS,
            "canonical_darms": canonical,
            "score_counts": counts,
        },
        checks={
            "canonizer_idempotent": canonize(canonical) == canonical,
            "canonical_has_explicit_durations": _all_durations_explicit(
                canonical
            ),
            "decode_reencode_fixed_point": fixed_point == reencoded,
            "two_whole_rest_measures": counts["measures"] == 6,
            "syllables_attached": ",@" in canonical,
            "nested_beams_present": _has_nested_beam(canonical),
        },
        notes="The published figure is an OCR-degraded card listing; our "
              "fragment reproduces its structure (annotation, R2W, nested "
              "beams, syllables) with exact measure fills.",
    )
