"""Figure 8: recursive ordering -- beam groups.

(a) the HO graph for ``define ordering (BEAM_GROUP, CHORD) under
BEAM_GROUP``; (b) a fragment with several layers of beam groups over
six chords c1..c6; (c) its instance graph where "every object ... is
either a group (labeled g) or a chord (labeled c)".

We build the fragment in the CMN schema (GROUP plays BEAM_GROUP),
render all three panels, and verify the well-formedness restrictions:
P-edge cycles are rejected.
"""

from fractions import Fraction

from repro.cmn.builder import ScoreBuilder
from repro.cmn.groups import beam
from repro.core.hograph import HOGraph, OrderingForm
from repro.core.instance_graph import InstanceGraph
from repro.errors import OrderingCycleError
from repro.experiments.registry import ExperimentResult


def run():
    builder = ScoreBuilder("fig08 fragment", meter="4/4")
    voice = builder.add_voice("melody")
    cmn = builder.cmn
    pitches = ["G4", "A4", "B4", "C5", "D5", "E5"]
    chords = []
    for index, name in enumerate(pitches):
        duration = Fraction(1, 8) if index < 4 else Fraction(1, 4)
        chords.append(builder.note(voice, name, duration))
    # Layered beams: inner sixteenth-style beams under one outer beam.
    g2 = beam(cmn, voice, chords[0:2], label="g2")
    g3 = beam(cmn, voice, chords[2:4], label="g3")
    g1 = beam(cmn, voice, [g2, g3, chords[4], chords[5]], label="g1")
    builder.finish()

    ho = HOGraph(cmn.schema, ["group_member"])
    instance_graph = InstanceGraph.from_orderings(
        [cmn.group_member], [g1]
    )
    for index, chord in enumerate(chords, start=1):
        instance_graph.label(chord, "c%d" % index)
    for label, group in (("g1", g1), ("g2", g2), ("g3", g3)):
        instance_graph.label(group, label)

    # Well-formedness: a P-edge cycle must be rejected.
    cycle_rejected = False
    try:
        cmn.group_member.append(g2, g1)
    except OrderingCycleError:
        cycle_rejected = True

    from repro.cmn.groups import depth, flatten

    artifact = "\n".join(
        [
            "(a) HO graph for the recursive ordering",
            ho.to_ascii(),
            "",
            "(b) Fragment: (c1 c2) (c3 c4) c5 c6 under one outer beam",
            "",
            "(c) Instance graph",
            instance_graph.to_ascii(),
            "",
            instance_graph.to_edge_list(),
        ]
    )

    forms = ho.classify(cmn.group_member)
    return ExperimentResult(
        "fig08",
        "Recursive ordering: beam groups",
        artifact,
        data={
            "depth": depth(cmn, g1),
            "leaves": len(flatten(cmn, g1)),
            "forms": sorted(f.value for f in forms),
        },
        checks={
            "recursive_form": OrderingForm.RECURSIVE in forms,
            "inhomogeneous_form": OrderingForm.INHOMOGENEOUS in forms,
            "six_chords_under_g1": len(flatten(cmn, g1)) == 6,
            "two_layers": depth(cmn, g1) == 2,
            "p_cycle_rejected": cycle_rejected,
            "groups_intermixed_with_chords": [
                m.type.name for m in cmn.group_member.children(g1)
            ] == ["GROUP", "GROUP", "CHORD", "CHORD"],
        },
    )
