"""EXPERIMENTS.md generation: paper artifact vs regenerated artifact."""

import io

from repro.experiments.registry import EXPERIMENTS, run_all

_HEADER = """\
# EXPERIMENTS — paper vs measured

Paper: W. Bradley Rubenstein, *A Database Design for Musical
Information*, SIGMOD 1987.

This is an early design paper: its evaluation artifacts are **figures
1-15 and the figure 11 entity table**, not performance numbers.  Each
section below regenerates one artifact from the live system and lists
the structural checks that tie it to the paper's claims.  Performance
characteristics of the implementation are measured separately by the
`benchmarks/` suite (see `bench_output.txt`).

Regenerate this file with:

    python -m repro.experiments.report
"""


def render_report(results=None):
    """Render the full EXPERIMENTS.md text."""
    if results is None:
        results = run_all()
    out = io.StringIO()
    out.write(_HEADER)
    passed = sum(1 for result in results if result.passed())
    out.write("\n**Status: %d/%d experiments pass all checks.**\n" % (
        passed, len(results)))
    for result in results:
        _, paper_description = EXPERIMENTS[result.experiment_id]
        out.write("\n---\n\n")
        out.write("## %s — %s\n\n" % (result.experiment_id, result.title))
        out.write("**Paper artifact:** %s.\n\n" % paper_description)
        if result.notes:
            out.write("**Substitutions/notes:** %s\n\n" % result.notes)
        out.write("**Checks:**\n\n")
        for name in sorted(result.checks):
            mark = "x" if result.checks[name] else " "
            out.write("- [%s] %s\n" % (mark, name.replace("_", " ")))
        out.write("\n**Regenerated artifact:**\n\n")
        out.write("```text\n")
        out.write(result.artifact.rstrip("\n"))
        out.write("\n```\n")
    return out.getvalue()


def write_report(path="EXPERIMENTS.md", results=None):
    text = render_report(results)
    with open(path, "w") as handle:
        handle.write(text)
    return path


def main():
    results = run_all()
    path = write_report(results=results)
    for result in results:
        status = "ok  " if result.passed() else "FAIL"
        print("%s %s %s" % (status, result.experiment_id, result.title))
    print("wrote %s" % path)
    if not all(result.passed() for result in results):
        raise SystemExit(1)


if __name__ == "__main__":
    main()
