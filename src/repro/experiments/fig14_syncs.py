"""Figure 14: dividing a score into syncs.

"The various musical events within a passage (such as notes) are
typically aligned on these pulses.  Each such point of alignment
constitutes a sync ... The notes within a sync are grouped into
chords (by voice)."

We build a two-voice measure with different rhythms (quarters against
eighths), extract its syncs, and verify: a sync exists exactly at each
distinct onset offset, chords of different voices sharing an onset
share a SYNC instance, and chord start times are inherited from syncs.
"""

from fractions import Fraction

from repro.cmn.builder import ScoreBuilder
from repro.experiments.registry import ExperimentResult


def run():
    builder = ScoreBuilder("fig14", meter="4/4")
    upper = builder.add_voice("upper")
    lower = builder.add_voice("lower", clef="bass")
    for name in ("C5", "B4", "A4", "G4"):
        builder.note(upper, name, Fraction(1, 4))
    for name in ("C3", "D3", "E3", "F3", "G3", "A3", "B3", "C4"):
        builder.note(lower, name, Fraction(1, 8))
    builder.finish()

    view = builder.view
    movement = view.movements()[0]
    measure = view.measures(movement)[0]
    syncs = view.syncs(measure)
    offsets = [s["offset_beats"] for s in syncs]
    chords_per_sync = [len(view.chords_at(s)) for s in syncs]

    lines = ["Measure 1 divided into syncs:"]
    for sync, count in zip(syncs, chords_per_sync):
        voices = []
        for chord in view.chords_at(sync):
            voice = builder.cmn.chord_rest_in_voice.parent_of(chord)
            voices.append(voice["name"])
        lines.append(
            "  sync @ beat %-5s : %d chord(s) [%s]"
            % (sync["offset_beats"], count, ", ".join(voices))
        )
    timeline = "  " + " ".join(
        "%s" % offset for offset in offsets
    )
    lines.append("")
    lines.append("Alignment points: " + timeline)

    expected_offsets = [Fraction(k, 2) for k in range(8)]
    on_beat = [o for o in offsets if o.denominator == 1]
    shared = [
        count for offset, count in zip(offsets, chords_per_sync)
        if offset.denominator == 1
    ]
    starts_inherited = all(
        view.chord_start_beats(chord) == sync["offset_beats"]
        for sync in syncs
        for chord in view.chords_at(sync)
    )

    return ExperimentResult(
        "fig14",
        "Dividing a score into syncs",
        "\n".join(lines),
        data={
            "offsets": [str(o) for o in offsets],
            "chords_per_sync": chords_per_sync,
        },
        checks={
            "eight_syncs": offsets == expected_offsets,
            "on_beat_syncs_shared": all(count == 2 for count in shared),
            "off_beat_syncs_single": all(
                count == 1
                for offset, count in zip(offsets, chords_per_sync)
                if offset.denominator != 1
            ),
            "four_shared_syncs": len(on_beat) == 4,
            "starts_inherited_from_syncs": starts_inherited,
        },
    )
