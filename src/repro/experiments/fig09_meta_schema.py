"""Figure 9: the HO graph for the meta-schema.

Section 6.1 stores the schema itself as ordered entities: ENTITY,
RELATIONSHIP, ATTRIBUTE, ORDERING; ATTRIBUTE ordered under ENTITY and
under RELATIONSHIP; order_child relating child entities to orderings;
the ordering's parent held as an entity-valued attribute (the implicit
"1 to n").  We regenerate the graph from the live meta-catalog and
prove completeness: the catalogued representation reconstructs a
working schema whose DDL matches the original.
"""

from repro.core.catalog import MetaCatalog
from repro.core.hograph import HOGraph
from repro.core.schema import Schema
from repro.ddl.compiler import execute_ddl
from repro.experiments.registry import ExperimentResult

_DDL = """
define entity CHORD (name = integer)
define entity NOTE (name = integer, pitch = string)
define entity MEASURE (number = integer)
define ordering note_in_chord (NOTE) under CHORD
define ordering chord_in_measure (CHORD) under MEASURE
"""


def run():
    schema = execute_ddl(_DDL, Schema("fig09"))
    original_ddl = schema.ddl()
    catalog = MetaCatalog(schema).sync()

    ho = HOGraph(schema, ["entity_attributes", "relationship_attributes"])
    artifact_lines = [
        "Meta-schema orderings:",
        ho.to_ascii(),
        "",
        "order_child relationship: child ENTITY <-n:n-> ORDERING",
        "ORDERING.order_parent -> ENTITY (1 to n, implicit attribute)",
        "",
        "Catalog contents (schema stored as data):",
    ]
    for name in catalog.catalogued_entities():
        attributes = [
            "%s = %s" % (a["attribute_name"], a["attribute_type"])
            for a in catalog.attributes_of_entity(name)
        ]
        artifact_lines.append("  ENTITY %-14s (%s)" % (name, ", ".join(attributes)))
    for order_name in catalog.catalogued_orderings():
        parent = catalog.parent_of_ordering(order_name)
        children = [
            c["entity_name"] for c in catalog.children_of_ordering(order_name)
        ]
        artifact_lines.append(
            "  ORDERING %-18s (%s) under %s"
            % (order_name, ", ".join(children), parent["entity_name"])
        )

    # The blur: the meta types catalogue themselves.
    self_catalogued = "ENTITY" in catalog.catalogued_entities()

    rebuilt = catalog.reconstruct("fig09-rebuilt")
    round_trip = rebuilt.ddl() == original_ddl

    return ExperimentResult(
        "fig09",
        "HO graph for the meta-schema",
        "\n".join(artifact_lines),
        data={
            "catalogued_entities": catalog.catalogued_entities(),
            "catalogued_orderings": catalog.catalogued_orderings(),
        },
        checks={
            "attribute_under_entity": any(
                name == "entity_attributes"
                for name, _, _ in [
                    (o.name, o.child_types, o.parent_type)
                    for o in ho.orderings
                ]
            ),
            "meta_types_self_catalogued": self_catalogued,
            "note_attributes_ordered": [
                a["attribute_name"] for a in catalog.attributes_of_entity("NOTE")
            ] == ["name", "pitch"],
            "reconstruction_round_trip": round_trip,
        },
        notes="reconstruct() skips the meta types themselves; with "
              "include_meta=True the catalog also rebuilds its own schema.",
    )
