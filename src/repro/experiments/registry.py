"""Experiment registry: id -> module, with uniform results."""

import importlib

from repro.errors import MDMError

#: Experiment id -> (module name, paper artifact description).
EXPERIMENTS = {
    "fig01": ("fig01_architecture", "The music data manager and its clients"),
    "fig02": ("fig02_thematic_index", "A thematic index entry (BWV 578)"),
    "fig03": ("fig03_piano_roll", "A piano roll (the fugue opening)"),
    "fig04": ("fig04_darms", "DARMS encoding of a fragment of music"),
    "fig05": ("fig05_er_graph", "An entity-relationship graph"),
    "fig06": ("fig06_instance_graph", "A simple instance graph"),
    "fig07": ("fig07_ho_graph", "A hierarchical ordering graph"),
    "fig08": ("fig08_recursive_beams", "Recursive ordering: beam groups"),
    "fig09": ("fig09_meta_schema", "HO graph for the meta-schema"),
    "fig10": ("fig10_graphdefs", "Schema for graphical definitions"),
    "tab11": ("tab11_cmn_entities", "The entities of a CMN schema"),
    "fig12": ("fig12_aspects", "Aspects of musical entities"),
    "fig13": ("fig13_temporal_ho", "HO graph for the temporal aspect"),
    "fig14": ("fig14_syncs", "Dividing a score into syncs"),
    "fig15": ("fig15_groups", "Groups (phrasing and timing)"),
}


class ExperimentResult:
    """Uniform result: a text artifact plus structured check data."""

    def __init__(self, experiment_id, title, artifact, data=None, checks=None,
                 notes=""):
        self.experiment_id = experiment_id
        self.title = title
        self.artifact = artifact  # the regenerated figure/table, as text
        self.data = data or {}
        self.checks = checks or {}  # name -> bool, asserted by tests
        self.notes = notes

    def passed(self):
        return all(self.checks.values())

    def failed_checks(self):
        return sorted(name for name, ok in self.checks.items() if not ok)

    def __repr__(self):
        status = "ok" if self.passed() else "FAILED(%s)" % ",".join(
            self.failed_checks()
        )
        return "ExperimentResult(%s: %s)" % (self.experiment_id, status)


def all_experiment_ids():
    return sorted(EXPERIMENTS)


def get_experiment(experiment_id):
    try:
        module_name, _ = EXPERIMENTS[experiment_id]
    except KeyError:
        raise MDMError("unknown experiment %r" % experiment_id)
    return importlib.import_module("repro.experiments." + module_name)


def run_experiment(experiment_id):
    """Run one experiment; returns its ExperimentResult."""
    result = get_experiment(experiment_id).run()
    if result.experiment_id != experiment_id:
        raise MDMError(
            "experiment %r returned result for %r"
            % (experiment_id, result.experiment_id)
        )
    return result


def run_all():
    """Run every experiment in id order; returns the result list."""
    return [run_experiment(experiment_id) for experiment_id in all_experiment_ids()]
