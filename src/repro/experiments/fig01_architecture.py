"""Figure 1: the music data manager and its clients.

The paper's figure shows client programs (editors, compositional tools,
score libraries, analysis systems) sharing one MDM.  We regenerate it
live: four clients attach to one MDM, each performs its characteristic
operation against the *same* stored data, demonstrating the shared-
representation claim ("a music analysis program can easily process the
output of a composition program").
"""

from repro.experiments.registry import ExperimentResult
from repro.mdm import (
    AnalysisClient,
    CompositionClient,
    EditorClient,
    LibraryClient,
    MusicDataManager,
)

_DIAGRAM = """\
 +--------------+  +---------------+  +---------------+  +-----------------+
 | music editor |  | compositional |  | score library |  | music analysis  |
 | / typesetter |  |     tool      |  |               |  |     system      |
 +------+-------+  +-------+-------+  +-------+-------+  +--------+--------+
        |                  |                  |                   |
        +--------+---------+--------+---------+---------+---------+
                                    |
                      +-------------+--------------+
                      |   MUSIC DATA MANAGER (MDM) |
                      |  schema - QUEL - orderings |
                      +-------------+--------------+
                                    |
                      +-------------+--------------+
                      |   relational storage       |
                      |   (tables, WAL, locks)     |
                      +----------------------------+
"""


def run():
    mdm = MusicDataManager()
    composer = mdm.register_client(CompositionClient("composer"))
    editor = mdm.register_client(EditorClient("editor"))
    library = mdm.register_client(LibraryClient("library"))
    analyst = mdm.register_client(AnalysisClient("analyst"))

    # The compositional tool generates a piece into the MDM...
    builder = composer.compose_scale_study(measures=2, voices=2)
    score = builder.score
    # ...the analysis system processes the composition tool's output...
    ambitus = analyst.ambitus(mdm.cmn, score)
    census = analyst.note_census()
    # ...the editor mutates it through the same representation...
    voice = builder.voices()[0]
    edited = editor.transpose_voice(builder.view, voice, 1)
    ambitus_after = analyst.ambitus(mdm.cmn, score)
    # ...and the library catalogues works in the same database.
    index = library.build_index("Demo-Verzeichnis", "DWV", "Composer Demo")
    index.add_entry(1, builder.score["title"],
                    incipits=[("theme", "!G 21Q 23Q 25Q //")])
    # An octave-transposed query matches by intervals (E-G-B pattern).
    hits = library.find_theme(index, "!G 28Q 30Q 32Q //")

    lines = [_DIAGRAM, "Live demonstration (all through one MDM):"]
    lines.append("  composer : built %r" % score["title"])
    lines.append("  analyst  : ambitus %s, %d distinct degrees"
                 % (ambitus, len(census)))
    lines.append("  editor   : transposed %d notes up one degree" % edited)
    lines.append("  analyst  : ambitus now %s (sees the editor's change)"
                 % (ambitus_after,))
    lines.append("  library  : catalogued it as %s, %d incipit match(es)"
                 % ("DWV 1", len(hits)))

    return ExperimentResult(
        "fig01",
        "The music data manager and its clients",
        "\n".join(lines),
        data={
            "clients": mdm.client_names(),
            "ambitus_before": ambitus,
            "ambitus_after": ambitus_after,
            "notes_edited": edited,
            "incipit_hits": len(hits),
        },
        checks={
            "four_clients": len(mdm.clients) == 4,
            "analysis_sees_composition": ambitus is not None,
            "analysis_sees_edit": ambitus_after != ambitus,
            "library_match": len(hits) == 1,
        },
    )
