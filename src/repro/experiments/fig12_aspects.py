"""Figure 12: aspects of musical entities.

The aspect tree (temporal; timbral with pitch/articulation/dynamic;
graphical with textual) plus the per-entity participation the text
spells out: a note participates in every musical aspect, "MIDI events,
for example, have no graphical aspect in CMN".
"""

from repro.cmn.aspects import (
    ASPECT_TREE,
    Aspect,
    aspect_matrix,
    parent_aspect,
    render_tree,
)
from repro.experiments.registry import ExperimentResult


def run():
    matrix = aspect_matrix()
    lines = [render_tree(), "", "Entity participation:"]
    width = max(len(name) for name in matrix)
    for name in sorted(matrix):
        lines.append("  %-*s %s" % (width, name, ", ".join(matrix[name])))

    note_aspects = set(matrix["NOTE"])
    midi_aspects = set(matrix["MIDI"])

    return ExperimentResult(
        "fig12",
        "Aspects of musical entities",
        "\n".join(lines),
        data={"matrix": matrix},
        checks={
            "three_top_aspects": set(ASPECT_TREE)
            == {Aspect.TEMPORAL, Aspect.TIMBRAL, Aspect.GRAPHICAL},
            "timbral_subaspects": ASPECT_TREE[Aspect.TIMBRAL]
            == [Aspect.PITCH, Aspect.ARTICULATION, Aspect.DYNAMIC],
            "textual_under_graphical": parent_aspect(Aspect.TEXTUAL)
            is Aspect.GRAPHICAL,
            "note_has_all_musical_aspects": {
                "temporal", "timbral", "pitch", "articulation", "dynamic",
                "graphical",
            } <= note_aspects,
            "midi_has_no_graphical_aspect": "graphical" not in midi_aspects,
        },
    )
