"""Figure 2: a thematic index entry (BWV 578).

Regenerates the entry for the Fugue in G minor from the bibliographic
database: identifier, Besetzung, EZ, incipit, Abschriften, Ausgaben,
Literatur -- and verifies the identification workflow: querying the
index by the subject's opening intervals returns exactly this entry.
"""

from repro.biblio.catalog import format_entry
from repro.biblio.incipit import search_by_incipit
from repro.experiments.registry import ExperimentResult
from repro.fixtures.bwv578 import SUBJECT_INCIPIT_DARMS, build_bwv_index


def run():
    index, entry = build_bwv_index()
    artifact = format_entry(index, entry)
    identifier = index.identifier(entry)
    hits = search_by_incipit(index, SUBJECT_INCIPIT_DARMS, prefix_only=True)
    return ExperimentResult(
        "fig02",
        "A thematic index entry (BWV 578)",
        artifact,
        data={
            "identifier": identifier,
            "copies": len(index.copies(entry)),
            "editions": len(index.editions(entry)),
            "literature": len(index.literature(entry)),
            "incipits": len(index.incipits(entry)),
        },
        checks={
            "identifier": identifier == "BWV 578",
            "title": entry["title"] == "Fuge g-moll",
            "setting_is_organ": entry["setting"] == "Orgel",
            "has_all_sections": all(
                (
                    index.copies(entry),
                    index.editions(entry),
                    index.literature(entry),
                    index.incipits(entry),
                )
            ),
            "incipit_identifies_entry": len(hits) == 1
            and hits[0][0]["number"] == 578,
        },
        notes="Bibliographic text transcribed from the figure; incipit "
              "encoded in our DARMS subset.",
    )
