"""Figure 5: an entity-relationship graph.

The paper's example schema: PERSON, DATE, COMPOSITION (with its "1 to n"
composition_date represented implicitly as an entity-valued attribute)
and the "m to n" COMPOSER relationship.  We define it *through the DDL*,
render the ER graph, and run the paper's own section 5.6 query ("find
all the composers of The Star Spangled Banner") against live data.
"""

from repro.core.schema import Schema
from repro.ddl.compiler import execute_ddl
from repro.experiments.registry import ExperimentResult
from repro.quel.executor import QuelSession

_DDL = """
define entity DATE (day = integer, month = integer, year = integer)
define entity COMPOSITION (title = string, composition_date = DATE)
define entity PERSON (name = string)
define relationship COMPOSER (composer = PERSON, composition = COMPOSITION)
"""

_QUERY = """
retrieve (PERSON.name)
    where COMPOSITION.title = "The Star Spangled Banner"
    and COMPOSER.composition is COMPOSITION
    and COMPOSER.composer is PERSON
"""


def _render_er_graph(schema, names):
    """Chen-style diagram as text: boxes for entities, a diamond for the
    relationship, edge annotations for cardinality."""
    lines = ["Entity-Relationship graph"]
    for name in names:
        entity_type = schema.entity_type(name)
        attributes = ", ".join(
            "%s: %s" % (a.name, a.domain_name()) for a in entity_type.attributes
        )
        lines.append("  [%s] (%s)" % (name, attributes))
    for relationship in schema.relationships.values():
        roles = " -- ".join(
            "%s:%s" % (role, type_name) for role, type_name in relationship.roles
        )
        lines.append("  <%s> %s   (m to n)" % (relationship.name, roles))
    lines.append(
        "  [COMPOSITION] --composition_date--> [DATE]   (1 to n, implicit "
        "as an attribute)"
    )
    return "\n".join(lines)


def run():
    schema = Schema("fig05")
    execute_ddl(_DDL, schema)
    artifact = _render_er_graph(schema, ["DATE", "COMPOSITION", "PERSON"])

    # Populate and run the paper's query.
    date = schema.entity_type("DATE").create(day=3, month=9, year=1814)
    composition = schema.entity_type("COMPOSITION").create(
        title="The Star Spangled Banner", composition_date=date
    )
    person = schema.entity_type("PERSON").create(name="John Stafford Smith")
    other = schema.entity_type("COMPOSITION").create(
        title="Fuge g-moll", composition_date=date
    )
    bach = schema.entity_type("PERSON").create(name="Johann Sebastian Bach")
    schema.relationship("COMPOSER").relate(composer=person, composition=composition)
    schema.relationship("COMPOSER").relate(composer=bach, composition=other)

    session = QuelSession(schema)
    rows = session.execute(_QUERY)
    composer_attr = schema.entity_type("COMPOSITION").attribute("composition_date")
    dereferenced = composition.dereference("composition_date")

    artifact += "\n\nSection 5.6 query over this schema:\n"
    artifact += _QUERY.strip() + "\n  => " + repr(rows)

    return ExperimentResult(
        "fig05",
        "An entity-relationship graph",
        artifact,
        data={"rows": rows, "ddl": schema.ddl()},
        checks={
            "query_finds_composer": rows == [{"PERSON.name": "John Stafford Smith"}],
            "one_to_n_as_attribute": composer_attr.is_entity_valued
            and composer_attr.target_type == "DATE",
            "attribute_dereferences": dereferenced is not None
            and dereferenced["year"] == 1814,
            "m_to_n": schema.relationship("COMPOSER").cardinality == "m:n",
        },
    )
