"""Page assembly: a complete PostScript document from a laid-out score.

The typesetting client's output path: staff lines are drawn directly,
every stem / notehead / beam is drawn by executing its stored GraphDef
(figure 10's procedure), and the recorded display lists are serialized
into one standalone PostScript program a printer (or Ghostscript) could
consume.
"""

from repro.cmn.score import ScoreView
from repro.graphics.layout import (
    LEFT_MARGIN,
    UNITS_PER_BEAT,
    UNITS_PER_DEGREE,
    layout_voice,
)

#: Vertical distance between consecutive staves on the page.
STAFF_SPACING = 120
PAGE_WIDTH = 612   # US letter, points
PAGE_HEIGHT = 792
TOP_MARGIN = 80


def _display_list_to_ps(display, x_offset, y_offset):
    """Serialize a DisplayList at a page position."""
    lines = []
    for operator, args in display:
        if operator in ("moveto", "lineto"):
            lines.append(
                "%.1f %.1f %s" % (args[0] + x_offset, args[1] + y_offset,
                                  operator)
            )
        elif operator == "arc":
            lines.append(
                "%.1f %.1f %.1f %.1f %.1f arc"
                % (args[0] + x_offset, args[1] + y_offset, args[2],
                   args[3], args[4])
            )
        elif operator == "setlinewidth":
            lines.append("%.2f setlinewidth" % args[0])
        elif operator in ("newpath", "closepath", "stroke", "fill"):
            lines.append(operator)
        elif operator == "show":
            lines.append("(%s) show" % str(args[0]).replace("(", "").replace(")", ""))
    return lines


def _staff_lines_ps(x_offset, y_offset, width):
    """Five staff lines at a page position."""
    lines = ["0.6 setlinewidth"]
    for degree in (0, 2, 4, 6, 8):
        y = y_offset + degree * UNITS_PER_DEGREE
        lines.append("newpath")
        lines.append("%.1f %.1f moveto" % (x_offset, y))
        lines.append("%.1f %.1f lineto" % (x_offset + width, y))
        lines.append("stroke")
    return lines


def assemble_page(cmn, score, catalog, title=None):
    """Typeset every voice of *score*; returns PostScript document text.

    *catalog* is a GraphicsCatalog with the standard definitions
    registered (its meta-catalog must be synced).
    """
    view = ScoreView(cmn, score)
    voices = view.voices()
    body = []
    total_beats = float(view.score_duration_beats())
    staff_width = LEFT_MARGIN + total_beats * UNITS_PER_BEAT + 20

    for staff_index, voice in enumerate(voices):
        y_offset = PAGE_HEIGHT - TOP_MARGIN - staff_index * STAFF_SPACING - 100
        body.append("%% staff %d: voice %r" % (staff_index + 1, voice["name"]))
        body.extend(_staff_lines_ps(LEFT_MARGIN, y_offset, staff_width))
        art = layout_voice(cmn, score, voice)
        for kind in ("beams", "stems", "noteheads"):
            for entity in art[kind]:
                display = catalog.draw(entity)
                body.extend(_display_list_to_ps(display, 0, y_offset))

    header = [
        "%!PS-Adobe-3.0",
        "%%Creator: repro Music Data Manager",
        "%%Title: " + (title or score["title"]),
        "%%Pages: 1",
        "%%BoundingBox: 0 0 " + "%d %d" % (PAGE_WIDTH, PAGE_HEIGHT),
        "%%EndComments",
        "%%Page: 1 1",
    ]
    footer = ["showpage", "%%EOF"]
    return "\n".join(header + body + footer) + "\n"


def write_page(cmn, score, catalog, path, title=None):
    """Assemble and write a .ps file; returns the document text."""
    text = assemble_page(cmn, score, catalog, title)
    with open(path, "w") as handle:
        handle.write(text)
    return text
