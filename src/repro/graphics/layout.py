"""Score layout: computing graphical attribute entities from the
temporal/timbral structure.

A deliberately simple engraving model -- enough to populate STEM,
NOTEHEAD and BEAM instances with concrete coordinates so the figure 10
drawing procedure has real data to draw.

Coordinate system: y = 0 at the staff's bottom line, +4 units per staff
degree (half the 8-unit line spacing); x advances linearly with score
time.
"""

from fractions import Fraction

from repro.cmn.score import ScoreView

UNITS_PER_DEGREE = 4
UNITS_PER_BEAT = 24
LEFT_MARGIN = 20
STEM_LENGTH = 28


def _mean(values):
    return sum(values) / len(values) if values else 0


def stem_for_chord(cmn, chord, view=None):
    """Create (and return) the STEM entity for *chord*.

    Direction follows the notated rule: notes sitting above the middle
    line get stems down.  The chord's explicit ``stem_direction``
    attribute overrides (the fugue entrances of figure 3 are
    "distinguished in the CMN score by a change in note stem
    direction").
    """
    if view is None:
        view = ScoreView(cmn, _score_of_chord(cmn, chord))
    start = view.chord_start_beats(chord)
    degrees = [note["degree"] for note in view.notes_of(chord)]
    explicit = chord["stem_direction"]
    if explicit == "U":
        direction = 1
    elif explicit == "D":
        direction = -1
    else:
        direction = -1 if _mean(degrees) >= 4 else 1
    anchor_degree = min(degrees) if direction > 0 else max(degrees)
    xpos = LEFT_MARGIN + int(start * UNITS_PER_BEAT)
    ypos = anchor_degree * UNITS_PER_DEGREE
    return cmn.STEM.create(
        xpos=xpos, ypos=ypos, length=STEM_LENGTH, direction=direction
    )


def noteheads_for_chord(cmn, chord, view=None):
    """Create NOTEHEAD entities for every note of *chord*."""
    if view is None:
        view = ScoreView(cmn, _score_of_chord(cmn, chord))
    start = view.chord_start_beats(chord)
    xpos = LEFT_MARGIN + int(start * UNITS_PER_BEAT)
    filled = chord["duration"] < Fraction(1, 2)
    out = []
    for note in view.notes_of(chord):
        out.append(
            cmn.NOTEHEAD.create(
                xpos=xpos,
                ypos=note["degree"] * UNITS_PER_DEGREE,
                shape="oval",
                filled=filled,
            )
        )
    return out


def beam_for_group(cmn, group, view):
    """Create a BEAM entity spanning a beam group's chords."""
    from repro.cmn.groups import flatten

    chords = [m for m in flatten(cmn, group) if m.type.name == "CHORD"]
    if len(chords) < 2:
        return None
    first = view.chord_start_beats(chords[0])
    last = view.chord_start_beats(chords[-1])
    top_degree = max(
        note["degree"] for chord in chords for note in view.notes_of(chord)
    )
    y = top_degree * UNITS_PER_DEGREE + STEM_LENGTH
    return cmn.BEAM.create(
        x1=LEFT_MARGIN + int(first * UNITS_PER_BEAT),
        y1=y,
        x2=LEFT_MARGIN + int(last * UNITS_PER_BEAT),
        y2=y,
        thickness=4,
    )


def layout_voice(cmn, score, voice):
    """Lay out one voice: stems and noteheads per chord, beams per beam
    group.  Returns ``{"stems": [...], "noteheads": [...], "beams": [...]}``."""
    view = ScoreView(cmn, score)
    stems = []
    noteheads = []
    for item in view.voice_stream(voice):
        if item.type.name != "CHORD":
            continue
        stems.append(stem_for_chord(cmn, item, view))
        noteheads.extend(noteheads_for_chord(cmn, item, view))
    beams = []
    for group in view.groups_of_voice(voice):
        if group["kind"] == "beam":
            beam = beam_for_group(cmn, group, view)
            if beam is not None:
                beams.append(beam)
    return {"stems": stems, "noteheads": noteheads, "beams": beams}


def populate_degrees(cmn, staff, low=-4, high=12):
    """Create the DEGREE entities of a staff (figure 11: "a division of
    the staff (line and space)"), ordered bottom to top.

    Degrees 0/2/4/6/8 are the five lines; odd on-staff degrees are
    spaces; outside 0..8 lie ledger positions.  Idempotent per staff.
    """
    ordering = cmn.degree_in_staff
    existing = ordering.children(staff)
    if existing:
        return existing
    out = []
    for index in range(low, high + 1):
        degree = cmn.DEGREE.create(
            index=index, is_line=(index % 2 == 0 and 0 <= index <= 8)
        )
        ordering.append(staff, degree)
        out.append(degree)
    return out


def degree_entity_for(cmn, staff, index):
    """The DEGREE entity at *index* on *staff* (populating if needed)."""
    for degree in populate_degrees(cmn, staff):
        if degree["index"] == index:
            return degree
    raise KeyError("degree %d not on staff %r" % (index, staff))


def _score_of_chord(cmn, chord):
    sync = cmn.chord_in_sync.parent_of(chord)
    measure = cmn.sync_in_measure.parent_of(sync)
    movement = cmn.measure_in_movement.parent_of(measure)
    return cmn.movement_in_score.parent_of(movement)
