"""Figure 10: graphical definitions as a middle schema layer.

Three application-specific relations join the meta-schema to drawing
code:

- ``GraphDef`` -- entities holding a PostScript drawing function;
- ``GDefUse`` -- relationship associating graphical definitions with
  (catalogued) entity types;
- ``GParmUse`` -- relationship identifying which catalogued attributes
  parameterize a function, each carrying the PostScript set-up fragment
  for that attribute.

:meth:`GraphicsCatalog.draw` runs the paper's four-step procedure:
find the instance, find its type's graphical definition via GDefUse,
push each parameter value and run its GParmUse set-up code, then
execute the definition.
"""

from repro.errors import SchemaError
from repro.core.catalog import MetaCatalog
from repro.graphics.postscript import execute_postscript

GRAPHDEF = "GraphDef"
GDEF_USE = "GDefUse"
GPARM_USE = "GParmUse"

#: The stem-drawing definition of the figure 10 walkthrough.
STEM_FUNCTION = """
newpath
xpos ypos moveto
0 length direction mul rlineto
1 setlinewidth
stroke
"""

_STEM_PARAMETERS = [
    ("xpos", "/xpos exch def"),
    ("ypos", "/ypos exch def"),
    ("length", "/length exch def"),
    ("direction", "/direction exch def"),
]

NOTEHEAD_FUNCTION = """
newpath
xpos ypos 3 0 360 arc
fill
"""

_NOTEHEAD_PARAMETERS = [
    ("xpos", "/xpos exch def"),
    ("ypos", "/ypos exch def"),
]

BEAM_FUNCTION = """
newpath
x1 y1 moveto
x2 y2 lineto
thickness setlinewidth
stroke
"""

_BEAM_PARAMETERS = [
    ("x1", "/x1 exch def"),
    ("y1", "/y1 exch def"),
    ("x2", "/x2 exch def"),
    ("y2", "/y2 exch def"),
    ("thickness", "/thickness exch def"),
]


class GraphicsCatalog:
    """The GraphDef layer over a schema's MetaCatalog."""

    def __init__(self, schema, meta=None):
        self.schema = schema
        self.meta = meta if meta is not None else MetaCatalog(schema)
        self._install()

    def _install(self):
        schema = self.schema
        if not schema.has_entity_type(GRAPHDEF):
            schema.define_entity(
                GRAPHDEF, [("name", "string"), ("function", "string")]
            )
        if GDEF_USE not in schema.relationships:
            schema.define_relationship(
                GDEF_USE,
                [("entity", "ENTITY"), ("graphdef", GRAPHDEF)],
            )
        if GPARM_USE not in schema.relationships:
            schema.define_relationship(
                GPARM_USE,
                [("attribute", "ATTRIBUTE"), ("graphdef", GRAPHDEF)],
                [("setup", "string"), ("ordinal", "integer")],
            )

    @property
    def graphdef_table(self):
        return self.schema.entity_type(GRAPHDEF)

    # -- registration -------------------------------------------------------------

    def register(self, entity_name, function, parameters, name=None):
        """Associate drawing *function* with *entity_name*.

        *parameters* is an ordered list of ``(attribute_name, setup)``
        pairs; the attributes must be catalogued for the entity type.
        """
        entity_record = self.meta.entity_record(entity_name)
        graphdef = self.graphdef_table.create(
            name=name or ("draw_%s" % entity_name.lower()), function=function
        )
        self.schema.relationship(GDEF_USE).relate(
            entity=entity_record, graphdef=graphdef
        )
        catalogued = {
            a["attribute_name"]: a
            for a in self.meta.attributes_of_entity(entity_name)
        }
        for ordinal, (attribute_name, setup) in enumerate(parameters, start=1):
            if attribute_name not in catalogued:
                raise SchemaError(
                    "entity %r has no catalogued attribute %r"
                    % (entity_name, attribute_name)
                )
            self.schema.relationship(GPARM_USE).relate(
                _attributes={"setup": setup, "ordinal": ordinal},
                attribute=catalogued[attribute_name],
                graphdef=graphdef,
            )
        return graphdef

    def register_standard(self):
        """Register the built-in stem / notehead / beam definitions."""
        self.register("STEM", STEM_FUNCTION, _STEM_PARAMETERS)
        self.register("NOTEHEAD", NOTEHEAD_FUNCTION, _NOTEHEAD_PARAMETERS)
        self.register("BEAM", BEAM_FUNCTION, _BEAM_PARAMETERS)
        return self

    # -- the four-step drawing procedure -----------------------------------------------

    def definition_for(self, entity_name):
        """Step 2: the graphical definition for an entity type."""
        entity_record = self.meta.entity_record(entity_name)
        matches = self.schema.relationship(GDEF_USE).related(
            "entity", entity_record, fetch_role="graphdef"
        )
        if not matches:
            raise SchemaError("no graphical definition for %r" % entity_name)
        return matches[0]

    def parameters_for(self, graphdef):
        """The ordered (attribute name, setup code) parameters."""
        records = self.schema.relationship(GPARM_USE).related("graphdef", graphdef)
        records.sort(key=lambda r: r["ordinal"] or 0)
        return [
            (record["attribute"]["attribute_name"], record["setup"])
            for record in records
        ]

    def draw(self, instance):
        """Steps 1-4 for *instance*; returns the recorded DisplayList."""
        # Step 1: the instance is in hand (found in its relation).
        # Step 2: find the graphical definition via GDefUse.
        graphdef = self.definition_for(instance.type.name)
        # Step 3: for each parameter, get its value and run the set-up.
        bindings = {}
        for attribute_name, setup in self.parameters_for(graphdef):
            value = instance[attribute_name]
            state = execute_postscript(setup, bindings, stack=[value])
            bindings = state.bindings
        # Step 4: execute the graphical definition.
        return execute_postscript(graphdef["function"], bindings).display

    def draw_all(self, entity_type):
        """Draw every instance of *entity_type*; returns one DisplayList
        per instance (a page assembler would concatenate them)."""
        return [self.draw(instance) for instance in entity_type.instances()]

    def set_function(self, entity_name, function):
        """Clients "may freely modify such attributes as the printing
        function for a graphical object" (section 6.2)."""
        graphdef = self.definition_for(entity_name)
        graphdef.set(function=function)
        return graphdef
