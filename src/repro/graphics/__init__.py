"""The graphical aspect: PostScript graphical definitions (section 6.2)
and score layout/rendering.

GraphDef / GParmUse / GDefUse implement figure 10: graphical drawing
code stored as data, parameterized by catalogued attributes, and
executed through the four-step procedure the paper gives for drawing a
stem.
"""

from repro.graphics.postscript import DisplayList, PostScriptError, execute_postscript
from repro.graphics.graphdef import GraphicsCatalog
from repro.graphics.layout import layout_voice, stem_for_chord
from repro.graphics.render import render_staff

__all__ = [
    "DisplayList",
    "PostScriptError",
    "execute_postscript",
    "GraphicsCatalog",
    "layout_voice",
    "stem_for_chord",
    "render_staff",
]
