"""A miniature PostScript evaluator.

Section 6.2 stores "the graphical definition (e.g. PostScript function)
to draw a particular object" in the database and executes it with
attribute values as parameters.  This module executes the subset our
graphical definitions use: numeric literals, stack manipulation,
arithmetic, ``/name ... def`` bindings with name lookup, and the path
operators -- which are recorded into a :class:`DisplayList` instead of
marking a raster.
"""

from repro.errors import MDMError


class PostScriptError(MDMError):
    """Error while executing a graphical definition."""


class DisplayList:
    """The recorded drawing: a list of (operator, args) tuples."""

    def __init__(self):
        self.operations = []
        self._current_point = None

    def record(self, operator, *args):
        self.operations.append((operator, tuple(args)))

    def __len__(self):
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    def bounding_box(self):
        """(min_x, min_y, max_x, max_y) over recorded points."""
        xs, ys = [], []
        for operator, args in self.operations:
            if operator in ("moveto", "lineto"):
                xs.append(args[0])
                ys.append(args[1])
            elif operator == "arc":
                cx, cy, radius = args[0], args[1], args[2]
                xs.extend((cx - radius, cx + radius))
                ys.extend((cy - radius, cy + radius))
        if not xs:
            return None
        return (min(xs), min(ys), max(xs), max(ys))

    def to_text(self):
        lines = []
        for operator, args in self.operations:
            rendered = " ".join(_format_number(a) for a in args)
            lines.append(("%s %s" % (rendered, operator)).strip())
        return "\n".join(lines)


def _format_number(value):
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _tokenize(source):
    tokens = []
    for raw_line in source.splitlines():
        line = raw_line.split("%", 1)[0]  # strip comments
        tokens.extend(line.split())
    return tokens


class _Interpreter:
    def __init__(self, bindings=None):
        self.stack = []
        self.bindings = dict(bindings or {})
        self.display = DisplayList()
        self.current_point = None
        self.line_width = 1.0
        self.path_open = False

    def pop_number(self, operator):
        if not self.stack:
            raise PostScriptError("stack underflow at %r" % operator)
        value = self.stack.pop()
        if not isinstance(value, (int, float)):
            raise PostScriptError("%r needs a number, got %r" % (operator, value))
        return value

    def run(self, source):
        tokens = _tokenize(source)
        index = 0
        while index < len(tokens):
            token = tokens[index]
            index += 1
            if token.startswith("/"):
                self.stack.append(token)  # literal name
                continue
            number = _as_number(token)
            if number is not None:
                self.stack.append(number)
                continue
            self._execute(token)
        return self

    def _execute(self, operator):
        if operator == "def":
            if len(self.stack) < 2:
                raise PostScriptError("def needs a name and a value")
            value = self.stack.pop()
            name = self.stack.pop()
            if not isinstance(name, str) or not name.startswith("/"):
                raise PostScriptError("def needs a literal /name")
            self.bindings[name[1:]] = value
            return
        if operator in self.bindings:
            self.stack.append(self.bindings[operator])
            return
        handler = getattr(self, "_op_" + operator, None)
        if handler is None:
            raise PostScriptError("unknown operator %r" % operator)
        handler()

    # -- stack ops ----------------------------------------------------------

    def _op_dup(self):
        if not self.stack:
            raise PostScriptError("dup on empty stack")
        self.stack.append(self.stack[-1])

    def _op_pop(self):
        if not self.stack:
            raise PostScriptError("pop on empty stack")
        self.stack.pop()

    def _op_exch(self):
        if len(self.stack) < 2:
            raise PostScriptError("exch needs two operands")
        self.stack[-1], self.stack[-2] = self.stack[-2], self.stack[-1]

    # -- arithmetic ---------------------------------------------------------------

    def _op_add(self):
        b = self.pop_number("add")
        a = self.pop_number("add")
        self.stack.append(a + b)

    def _op_sub(self):
        b = self.pop_number("sub")
        a = self.pop_number("sub")
        self.stack.append(a - b)

    def _op_mul(self):
        b = self.pop_number("mul")
        a = self.pop_number("mul")
        self.stack.append(a * b)

    def _op_div(self):
        b = self.pop_number("div")
        a = self.pop_number("div")
        if b == 0:
            raise PostScriptError("division by zero")
        self.stack.append(a / b)

    def _op_neg(self):
        self.stack.append(-self.pop_number("neg"))

    # -- graphics state --------------------------------------------------------------

    def _op_setlinewidth(self):
        self.line_width = self.pop_number("setlinewidth")
        self.display.record("setlinewidth", self.line_width)

    def _op_newpath(self):
        self.path_open = True
        self.current_point = None
        self.display.record("newpath")

    def _op_moveto(self):
        y = self.pop_number("moveto")
        x = self.pop_number("moveto")
        self.current_point = (x, y)
        self.display.record("moveto", x, y)

    def _op_lineto(self):
        y = self.pop_number("lineto")
        x = self.pop_number("lineto")
        if self.current_point is None:
            raise PostScriptError("lineto with no current point")
        self.current_point = (x, y)
        self.display.record("lineto", x, y)

    def _op_rmoveto(self):
        dy = self.pop_number("rmoveto")
        dx = self.pop_number("rmoveto")
        if self.current_point is None:
            raise PostScriptError("rmoveto with no current point")
        x, y = self.current_point
        self.current_point = (x + dx, y + dy)
        self.display.record("moveto", x + dx, y + dy)

    def _op_rlineto(self):
        dy = self.pop_number("rlineto")
        dx = self.pop_number("rlineto")
        if self.current_point is None:
            raise PostScriptError("rlineto with no current point")
        x, y = self.current_point
        self.current_point = (x + dx, y + dy)
        self.display.record("lineto", x + dx, y + dy)

    def _op_arc(self):
        end_angle = self.pop_number("arc")
        start_angle = self.pop_number("arc")
        radius = self.pop_number("arc")
        y = self.pop_number("arc")
        x = self.pop_number("arc")
        self.display.record("arc", x, y, radius, start_angle, end_angle)

    def _op_closepath(self):
        self.display.record("closepath")

    def _op_stroke(self):
        self.display.record("stroke")
        self.path_open = False

    def _op_fill(self):
        self.display.record("fill")
        self.path_open = False

    def _op_show(self):
        text = self.stack.pop() if self.stack else ""
        self.display.record("show", text)


def _as_number(token):
    try:
        if "." in token or "e" in token or "E" in token:
            return float(token)
        return int(token)
    except ValueError:
        return None


def execute_postscript(source, bindings=None, stack=None):
    """Execute *source*; returns the interpreter (``.display`` has the
    recorded drawing, ``.stack`` the final operand stack)."""
    interpreter = _Interpreter(bindings)
    if stack:
        interpreter.stack.extend(stack)
    return interpreter.run(source)
