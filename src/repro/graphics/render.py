"""ASCII staff rendering: a CMN score as text.

Five staff lines, note letters placed by staff degree, barlines from
measure boundaries.  Not engraving-quality -- a debugging/console view
(the paper's typesetting clients would drive the PostScript layer
instead).
"""

from fractions import Fraction

from repro.cmn.score import ScoreView

#: Text columns per beat.
COLUMNS_PER_BEAT = 6


def render_staff(cmn, score, voice, width=None):
    """Render one voice on a five-line ASCII staff."""
    view = ScoreView(cmn, score)
    movement = view.movements()[0]
    pitches = view.resolve_pitches(voice)
    total_beats = view.movement_duration_beats(movement)
    columns = int(total_beats * COLUMNS_PER_BEAT) + 2
    if width is not None:
        columns = min(columns, width)

    # degree -> row: degree 8 (top line) row 0 ... degree 0 row 8,
    # with two ledger positions either side.
    min_degree, max_degree = -4, 12
    rows = {}
    for degree in range(min_degree, max_degree + 1):
        is_line = degree % 2 == 0 and 0 <= degree <= 8
        rows[degree] = ["-" if is_line else " "] * columns

    # Barlines.
    boundary = Fraction(0)
    for measure in view.measures(movement):
        boundary += view.meter_of(measure).measure_duration().beats
        column = int(boundary * COLUMNS_PER_BEAT)
        if column < columns:
            for degree in range(0, 9):
                rows[degree][column] = "|"

    # Notes (letter = pitch step; lower case for altered pitches).
    for item in view.voice_stream(voice):
        if item.type.name != "CHORD":
            continue
        start = view.chord_start_beats(item)
        column = int(start * COLUMNS_PER_BEAT) + 1
        if column >= columns:
            continue
        for note in view.notes_of(item):
            degree = note["degree"]
            pitch = pitches[note.surrogate]
            letter = pitch.step if pitch.alter == 0 else pitch.step.lower()
            if min_degree <= degree <= max_degree:
                rows[degree][column] = letter

    clef = view.clef_of_voice(voice)
    lines = ["%s clef, voice %r" % (clef.name, voice["name"])]
    for degree in range(max_degree, min_degree - 1, -1):
        lines.append("".join(rows[degree]))
    return "\n".join(lines)
