"""DARMS -> score: build CMN entities from an encoding.

Covers monophonic material (one voice per instrument definition), which
is what the figure 4 fragment contains; beam groups become recursive
GROUP entities, syllables become SYLLABLE entities set on their chords.
"""

from fractions import Fraction

from repro.errors import DarmsError
from repro.cmn.builder import ScoreBuilder
from repro.cmn.groups import beam as make_beam
from repro.darms.canonical import normalize
from repro.darms.parser import parse_darms
from repro.darms.tokens import (
    Annotation,
    Barline,
    BeamGroup,
    ClefCode,
    InstrumentDef,
    KeyCode,
    MeterCode,
    NoteCode,
    RestCode,
)
from repro.pitch.accidental import Accidental, AccidentalState
from repro.pitch.clef import clef_by_name
from repro.pitch.key import KeySignature
from repro.pitch.spelling import performance_pitch
from repro.temporal.meter import MeterSignature


class _DecodeState:
    def __init__(self):
        self.clef = clef_by_name("treble")
        self.key = KeySignature(0)
        self.meter = MeterSignature(4, 4)
        self.annotations = []
        self.voice_name = "voice 1"


def darms_to_score(source, title="DARMS import", cmn=None, bpm=96,
                   instrument="Voice"):
    """Decode *source*; returns ``(builder, score)``.

    The builder gives access to the CmnSchema, view, and voice handles.
    """
    elements = normalize(parse_darms(source))
    state = _DecodeState()
    # Header elements (before the first note) configure the builder.
    body_start = 0
    for index, element in enumerate(elements):
        if isinstance(element, InstrumentDef):
            state.voice_name = "voice %d" % element.number
        elif isinstance(element, ClefCode):
            state.clef = clef_by_name(element.clef_name)
        elif isinstance(element, KeyCode):
            state.key = KeySignature(element.fifths)
        elif isinstance(element, MeterCode):
            state.meter = MeterSignature(element.numerator, element.denominator)
        elif isinstance(element, Annotation):
            state.annotations.append(element.text)
        else:
            body_start = index
            break
    else:
        body_start = len(elements)

    builder = ScoreBuilder(
        title,
        key=state.key,
        meter=state.meter,
        bpm=bpm,
        cmn=cmn,
    )
    voice = builder.add_voice(state.voice_name, clef=state.clef,
                              instrument=instrument)
    accidentals = AccidentalState(state.key)
    _decode_body(
        builder, voice, state, accidentals, elements[body_start:]
    )
    builder.finish()
    return builder, builder.score


def _decode_body(builder, voice, state, accidentals, elements):
    for element in elements:
        _decode_element(builder, voice, state, accidentals, element)


def _decode_element(builder, voice, state, accidentals, element):
    cmn = builder.cmn
    if isinstance(element, NoteCode):
        return _decode_note(builder, voice, state, accidentals, element)
    if isinstance(element, RestCode):
        builder.rest(voice, element.duration)
        return None
    if isinstance(element, Barline):
        accidentals.barline()
        _pad_to_barline(builder, voice)
        return None
    if isinstance(element, BeamGroup):
        members = []
        for member in element.members:
            created = _decode_element(builder, voice, state, accidentals, member)
            if created is not None:
                members.append(created)
        chords_and_groups = [
            m for m in members if m.type.name in ("CHORD", "REST", "GROUP")
        ]
        if chords_and_groups:
            return make_beam(cmn, voice, chords_and_groups)
        return None
    if isinstance(element, Annotation):
        state.annotations.append(element.text)
        return None
    if isinstance(element, (InstrumentDef, ClefCode, KeyCode, MeterCode)):
        raise DarmsError(
            "mid-stream %r not supported by this decoder" % (element,)
        )
    raise DarmsError("undecodable element %r" % (element,))


def _decode_note(builder, voice, state, accidentals, element):
    accidental = (
        None if element.accidental is None else Accidental(element.accidental)
    )
    pitch = performance_pitch(element.degree, state.clef, accidentals, accidental)
    stem = element.stem
    chord = builder.note(
        voice,
        pitch,
        element.duration,
        lyric=element.syllable,
        stem=stem,
    )
    return chord


def _pad_to_barline(builder, voice):
    """Advance an underfull measure to its barline with a rest."""
    state = builder._state(voice)
    number, offset, meter = builder._measure_bounds(state.cursor_beats)
    if offset != 0:
        remaining = meter.measure_duration().beats - offset
        builder.rest(voice, Fraction(remaining, 4))
