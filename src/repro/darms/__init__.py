"""DARMS: the Digital Alternate Representation of Musical Scores
(section 4.6, figure 4).

We implement the subset figure 4 exercises -- instrument definitions,
clefs, key and meter signatures, notes with positions / accidentals /
durations / stem directions, rests (with repeat counts), beam groups
(nestable), literal strings, annotations, syllables, and barlines --
plus the user-DARMS conveniences (carried durations, short positions)
and a *canonizer* that rewrites user DARMS into canonical DARMS with
"all repeated information" explicit.
"""

from repro.darms.tokens import (
    Annotation,
    Barline,
    BeamGroup,
    ClefCode,
    InstrumentDef,
    KeyCode,
    MeterCode,
    NoteCode,
    RestCode,
)
from repro.darms.parser import parse_darms
from repro.darms.canonical import canonize, to_canonical
from repro.darms.encode import score_to_darms
from repro.darms.decode import darms_to_score

__all__ = [
    "Annotation",
    "Barline",
    "BeamGroup",
    "ClefCode",
    "InstrumentDef",
    "KeyCode",
    "MeterCode",
    "NoteCode",
    "RestCode",
    "parse_darms",
    "canonize",
    "to_canonical",
    "score_to_darms",
    "darms_to_score",
]
