"""DARMS stream elements.

Positions use the DARMS staff-position code: 21 is the bottom line, 22
the bottom space, and so forth (one code per diatonic degree), with the
single-digit short forms 1-9 standing for 21-29.  Our staff degrees
(0 = bottom line) relate by ``code = degree + 21``.

Durations use the DARMS letter codes (W whole, H half, Q quarter,
E eighth, S sixteenth, T thirty-second, X sixty-fourth), with ``.`` for
dots.
"""

from fractions import Fraction

from repro.errors import DarmsError

DURATION_CODES = {
    "W": Fraction(1, 1),
    "H": Fraction(1, 2),
    "Q": Fraction(1, 4),
    "E": Fraction(1, 8),
    "S": Fraction(1, 16),
    "T": Fraction(1, 32),
    "X": Fraction(1, 64),
}

CODE_FOR_DURATION = {v: k for k, v in DURATION_CODES.items()}

#: Accidental codes: DARMS uses # (sharp), - (flat), * (natural).
ACCIDENTAL_CODES = {"#": 1, "-": -1, "*": 0, "##": 2, "--": -2}
CODE_FOR_ACCIDENTAL = {1: "#", -1: "-", 0: "*", 2: "##", -2: "--"}


def duration_value(letter, dots=0):
    """The whole-note fraction of a duration code with *dots*."""
    try:
        base = DURATION_CODES[letter.upper()]
    except KeyError:
        raise DarmsError("unknown duration code %r" % letter)
    value = base
    increment = base
    for _ in range(dots):
        increment /= 2
        value += increment
    return value


def duration_code(value):
    """The (letter, dots) pair for a whole-note fraction."""
    for dots in range(0, 4):
        for letter, base in DURATION_CODES.items():
            total = base
            increment = base
            for _ in range(dots):
                increment /= 2
                total += increment
            if total == value:
                return letter, dots
    raise DarmsError("duration %s has no DARMS code" % value)


def position_to_degree(code):
    """DARMS position code -> staff degree (0 = bottom line)."""
    return code - 21


def degree_to_position(degree):
    """Staff degree -> DARMS position code."""
    return degree + 21


class InstrumentDef:
    """``I4``: instrument (or voice) definition number 4."""

    __slots__ = ("number",)

    def __init__(self, number):
        self.number = number

    def __eq__(self, other):
        return isinstance(other, InstrumentDef) and self.number == other.number

    def __repr__(self):
        return "I%d" % self.number


class ClefCode:
    """``!G``: clef (G = treble, F = bass, C = alto)."""

    __slots__ = ("letter",)

    _CLEF_NAMES = {"G": "treble", "F": "bass", "C": "alto"}

    def __init__(self, letter):
        letter = letter.upper()
        if letter not in self._CLEF_NAMES:
            raise DarmsError("unknown clef code %r" % letter)
        self.letter = letter

    @property
    def clef_name(self):
        return self._CLEF_NAMES[self.letter]

    def __eq__(self, other):
        return isinstance(other, ClefCode) and self.letter == other.letter

    def __repr__(self):
        return "!%s" % self.letter


class KeyCode:
    """``!K2#``: key signature (two sharps)."""

    __slots__ = ("count", "sign")

    def __init__(self, count, sign):
        if sign not in "#-":
            raise DarmsError("key signature sign must be # or -")
        if not 0 <= count <= 7:
            raise DarmsError("key signature count %r out of range" % (count,))
        self.count = count
        self.sign = sign

    @property
    def fifths(self):
        return self.count if self.sign == "#" else -self.count

    def __eq__(self, other):
        return (
            isinstance(other, KeyCode)
            and self.count == other.count
            and self.sign == other.sign
        )

    def __repr__(self):
        return "!K%d%s" % (self.count, self.sign)


class MeterCode:
    """``!M4:4``: meter signature."""

    __slots__ = ("numerator", "denominator")

    def __init__(self, numerator, denominator):
        self.numerator = numerator
        self.denominator = denominator

    def __eq__(self, other):
        return (
            isinstance(other, MeterCode)
            and self.numerator == other.numerator
            and self.denominator == other.denominator
        )

    def __repr__(self):
        return "!M%d:%d" % (self.numerator, self.denominator)


class Annotation:
    """``00@TENOR$``: a literal string positioned above the staff."""

    __slots__ = ("text", "position")

    def __init__(self, text, position=0):
        self.text = text
        self.position = position

    def __eq__(self, other):
        return (
            isinstance(other, Annotation)
            and self.text == other.text
            and self.position == other.position
        )

    def __repr__(self):
        return "%02d@%s$" % (self.position, self.text)


class NoteCode:
    """A note: position code, optional accidental/duration/stem/syllable."""

    __slots__ = ("position", "accidental", "duration", "stem", "syllable")

    def __init__(self, position, accidental=None, duration=None, stem=None,
                 syllable=None):
        self.position = position
        self.accidental = accidental  # alteration int or None
        self.duration = duration  # whole-note Fraction or None (carried)
        self.stem = stem  # "U", "D", or None
        self.syllable = syllable

    @property
    def degree(self):
        return position_to_degree(self.position)

    def __eq__(self, other):
        return isinstance(other, NoteCode) and (
            (self.position, self.accidental, self.duration, self.stem, self.syllable)
            == (other.position, other.accidental, other.duration, other.stem,
                other.syllable)
        )

    def __repr__(self):
        parts = ["%d" % self.position]
        if self.accidental is not None:
            parts.append(CODE_FOR_ACCIDENTAL[self.accidental])
        if self.duration is not None:
            letter, dots = duration_code(self.duration)
            parts.append(letter + "." * dots)
        if self.stem:
            parts.append(self.stem)
        if self.syllable:
            parts.append(",@%s$" % self.syllable)
        return "".join(parts)


class RestCode:
    """``RW``: a rest; ``R2W`` in user DARMS repeats it (two whole rests)."""

    __slots__ = ("duration", "count")

    def __init__(self, duration=None, count=1):
        if count < 1:
            raise DarmsError("rest count must be positive")
        self.duration = duration
        self.count = count

    def __eq__(self, other):
        return (
            isinstance(other, RestCode)
            and self.duration == other.duration
            and self.count == other.count
        )

    def __repr__(self):
        letter, dots = ("?", 0)
        if self.duration is not None:
            letter, dots = duration_code(self.duration)
        count = "" if self.count == 1 else str(self.count)
        return "R%s%s%s" % (count, letter, "." * dots)


class BeamGroup:
    """``(...)``: a beam grouping; members are notes/rests/nested groups."""

    __slots__ = ("members",)

    def __init__(self, members):
        self.members = list(members)

    def __eq__(self, other):
        return isinstance(other, BeamGroup) and self.members == other.members

    def __repr__(self):
        return "(%s)" % " ".join(repr(m) for m in self.members)


class Barline:
    """``/`` (single) or ``//`` (double, end of excerpt)."""

    __slots__ = ("double",)

    def __init__(self, double=False):
        self.double = bool(double)

    def __eq__(self, other):
        return isinstance(other, Barline) and self.double == other.double

    def __repr__(self):
        return "//" if self.double else "/"
