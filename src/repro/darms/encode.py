"""Score -> DARMS: encode a voice of a stored score.

Produces canonical DARMS: explicit two-digit positions and durations,
beam groups parenthesized (nested per the recursive GROUP structure),
barlines from measure boundaries, and syllables attached to their
notes.  The supported subset is monophonic per voice, matching the
decoder.
"""

from fractions import Fraction

from repro.errors import DarmsError
from repro.cmn.score import ScoreView
from repro.darms.canonical import to_canonical
from repro.darms.tokens import (
    Barline,
    BeamGroup,
    ClefCode,
    InstrumentDef,
    KeyCode,
    MeterCode,
    NoteCode,
    RestCode,
    degree_to_position,
)

_CLEF_LETTER = {"treble": "G", "bass": "F", "alto": "C", "tenor": "C"}

_ACCIDENTAL_ALTER = {"#": 1, "b": -1, "n": 0, "##": 2, "bb": -2}


def score_to_darms(cmn, score, voice=None, instrument_number=1):
    """Encode one voice of *score* as canonical DARMS text."""
    view = ScoreView(cmn, score)
    voices = view.voices()
    if not voices:
        raise DarmsError("score has no voices")
    if voice is None:
        voice = voices[0]
    elements = [InstrumentDef(instrument_number)]
    clef = view.clef_of_voice(voice)
    elements.append(ClefCode(_CLEF_LETTER[clef.name]))
    movement = view.movements()[0]
    key = view.key_of(movement)
    if key.fifths >= 0:
        elements.append(KeyCode(key.fifths, "#"))
    else:
        elements.append(KeyCode(-key.fifths, "-"))
    measures = view.measures(movement)
    if measures:
        meter = view.meter_of(measures[0])
        elements.append(MeterCode(meter.numerator, meter.denominator))

    # Beam membership: chord surrogate -> outermost beam group.
    outer_beam = {}
    for group in view.groups_of_voice(voice):
        if group["kind"] == "beam":
            for leaf in _leaves(cmn, group):
                outer_beam[leaf.surrogate] = group

    syllables = _syllable_map(cmn, voice)

    stream = view.voice_stream(voice)
    cursor = Fraction(0)
    boundaries = _measure_boundaries(view, movement)
    emitted_groups = set()
    index = 0
    while index < len(stream):
        item = stream[index]
        group = outer_beam.get(item.surrogate)
        if group is not None and group.surrogate not in emitted_groups:
            emitted_groups.add(group.surrogate)
            element, span = _encode_group(cmn, group, syllables)
            elements.append(element)
            cursor += span
            index += _leaf_count(cmn, group)
        elif group is not None:
            index += 1  # already emitted within its group
        else:
            element, span = _encode_item(cmn, item, syllables)
            elements.append(element)
            cursor += span
            index += 1
        if cursor in boundaries:
            elements.append(Barline(double=cursor == boundaries[-1]))
    return to_canonical(elements)


def _measure_boundaries(view, movement):
    boundaries = []
    cursor = Fraction(0)
    for measure in view.measures(movement):
        cursor += view.meter_of(measure).measure_duration().beats
        boundaries.append(cursor)
    return boundaries


def _syllable_map(cmn, voice):
    out = {}
    setting = cmn.SETTING
    for record in setting.instances():
        chord = record["chord"]
        syllable = record["syllable"]
        text = syllable["text"]
        if syllable["hyphenated"]:
            text += "-"
        out[chord.surrogate] = text
    return out


def _leaves(cmn, group):
    out = []
    for member in cmn.group_member.children(group):
        if member.type.name == "GROUP":
            out.extend(_leaves(cmn, member))
        else:
            out.append(member)
    return out


def _leaf_count(cmn, group):
    return len(_leaves(cmn, group))


def _encode_group(cmn, group, syllables):
    members = []
    span = Fraction(0)
    for member in cmn.group_member.children(group):
        if member.type.name == "GROUP":
            element, inner_span = _encode_group(cmn, member, syllables)
        else:
            element, inner_span = _encode_item(cmn, member, syllables)
        members.append(element)
        span += inner_span
    return BeamGroup(members), span


def _encode_item(cmn, item, syllables):
    duration = item["duration"]
    span = duration * 4
    if item.type.name == "REST":
        return RestCode(duration), span
    notes = cmn.note_in_chord.children(item)
    if len(notes) != 1:
        raise DarmsError(
            "DARMS subset encodes monophonic voices; chord has %d notes"
            % len(notes)
        )
    note = notes[0]
    accidental_symbol = note["accidental"]
    alter = (
        None
        if accidental_symbol is None
        else _ACCIDENTAL_ALTER[accidental_symbol]
    )
    stem = item["stem_direction"]
    return (
        NoteCode(
            degree_to_position(note["degree"]),
            alter,
            duration,
            stem if stem in ("U", "D") else None,
            syllables.get(item.surrogate),
        ),
        span,
    )
