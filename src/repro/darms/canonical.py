"""The canonizer: user DARMS -> canonical DARMS.

"Programs have been written to convert this 'user DARMS' into
'canonical DARMS' (the programs have been whimsically named
'canonizers').  A canonical DARMS encoding presents the score
information in a consistent order, and explicitly includes all repeated
information" (section 4.6).

Canonical form here means: every note carries an explicit duration and
two-digit position; rest repeat counts are expanded into individual
rests with explicit durations; element spelling is normalized (``!``
codes, upper-case duration letters).
"""

from repro.errors import DarmsError
from repro.darms.parser import parse_darms
from repro.darms.tokens import (
    Annotation,
    Barline,
    BeamGroup,
    ClefCode,
    CODE_FOR_ACCIDENTAL,
    InstrumentDef,
    KeyCode,
    MeterCode,
    NoteCode,
    RestCode,
    duration_code,
)


def _resolve_durations(elements, carried):
    """Make carried durations explicit; expand rest counts.

    Returns (new elements, carried duration after the sequence).
    """
    out = []
    for element in elements:
        if isinstance(element, NoteCode):
            duration = element.duration
            if duration is None:
                if carried is None:
                    raise DarmsError(
                        "note %r has no duration and none to carry" % element
                    )
                duration = carried
            carried = duration
            out.append(
                NoteCode(
                    element.position,
                    element.accidental,
                    duration,
                    element.stem,
                    element.syllable,
                )
            )
        elif isinstance(element, RestCode):
            duration = element.duration
            if duration is None:
                if carried is None:
                    raise DarmsError("rest has no duration and none to carry")
                duration = carried
            carried = duration
            for _ in range(element.count):
                out.append(RestCode(duration, 1))
        elif isinstance(element, BeamGroup):
            members, carried = _resolve_durations(element.members, carried)
            out.append(BeamGroup(members))
        else:
            out.append(element)
    return out, carried


def normalize(elements):
    """Resolve user-DARMS conveniences in an element list."""
    resolved, _ = _resolve_durations(elements, None)
    return resolved


def _format(element):
    if isinstance(element, InstrumentDef):
        return "I%d" % element.number
    if isinstance(element, ClefCode):
        return "!%s" % element.letter
    if isinstance(element, KeyCode):
        return "!K%d%s" % (element.count, element.sign)
    if isinstance(element, MeterCode):
        return "!M%d:%d" % (element.numerator, element.denominator)
    if isinstance(element, Annotation):
        return "%02d@%s$" % (element.position, element.text)
    if isinstance(element, Barline):
        return "//" if element.double else "/"
    if isinstance(element, RestCode):
        letter, dots = duration_code(element.duration)
        return "R%s%s" % (letter, "." * dots)
    if isinstance(element, NoteCode):
        parts = ["%02d" % element.position]
        if element.accidental is not None:
            parts.append(CODE_FOR_ACCIDENTAL[element.accidental])
        letter, dots = duration_code(element.duration)
        parts.append(letter + "." * dots)
        if element.stem:
            parts.append(element.stem)
        text = "".join(parts)
        if element.syllable:
            text += ",@%s$" % element.syllable
        return text
    if isinstance(element, BeamGroup):
        return "(%s)" % " ".join(_format(m) for m in element.members)
    raise DarmsError("unformattable element %r" % (element,))


def to_canonical(elements):
    """Format normalized *elements* as a canonical DARMS string."""
    return " ".join(_format(e) for e in normalize(elements))


def canonize(source):
    """user DARMS text -> canonical DARMS text."""
    return to_canonical(parse_darms(source))
