"""Parsing DARMS source into element streams.

Handles both "user DARMS" (durations carried forward, short positions,
rest repeat counts) and canonical DARMS.  The character-level syntax:

    I4          instrument definition
    !G  'G      clef (both spellings accepted)
    !K2#        key signature
    !M4:4       meter signature
    00@TEXT$    annotation at staff position 00 (capitalization: a
                leading cent sign in the source capitalizes -- our
                parser accepts "^" as its ASCII stand-in)
    21#QD       note: position 21, sharp, quarter, stems down
    ,@syl$      attach a syllable to the preceding note
    R2W         two whole rests
    ( ... )     beam group (nestable)
    / //        barlines
"""

from repro.errors import DarmsError
from repro.darms.tokens import (
    ACCIDENTAL_CODES,
    Annotation,
    Barline,
    BeamGroup,
    ClefCode,
    DURATION_CODES,
    InstrumentDef,
    KeyCode,
    MeterCode,
    NoteCode,
    RestCode,
    duration_value,
)


class _Cursor:
    def __init__(self, text):
        self.text = text
        self.index = 0

    def peek(self, ahead=0):
        position = self.index + ahead
        return self.text[position] if position < len(self.text) else ""

    def advance(self, count=1):
        self.index += count

    def at_end(self):
        return self.index >= len(self.text)

    def skip_space(self):
        while not self.at_end() and self.peek() in " \t\r\n":
            self.advance()


def parse_darms(source):
    """Parse DARMS *source*; returns the element list (beams nested)."""
    cursor = _Cursor(source)
    elements, _ = _parse_sequence(cursor, top_level=True)
    return elements


def _parse_sequence(cursor, top_level):
    elements = []
    while True:
        cursor.skip_space()
        if cursor.at_end():
            if not top_level:
                raise DarmsError("unterminated beam group")
            return elements, cursor
        char = cursor.peek()
        if char == ")":
            if top_level:
                raise DarmsError("unbalanced ')'")
            cursor.advance()
            return elements, cursor
        if char == "(":
            cursor.advance()
            members, cursor = _parse_sequence(cursor, top_level=False)
            if not members:
                raise DarmsError("empty beam group")
            elements.append(BeamGroup(members))
            continue
        if char == ",":
            cursor.advance()
            cursor.skip_space()
            text, position = _parse_literal(cursor)
            target = _last_note(elements)
            if target is None:
                raise DarmsError("syllable with no preceding note")
            target.syllable = text
            continue
        if char == "/":
            cursor.advance()
            if cursor.peek() == "/":
                cursor.advance()
                elements.append(Barline(double=True))
            else:
                elements.append(Barline())
            continue
        if char in ("I", "i") and cursor.peek(1).isdigit():
            cursor.advance()
            number = _parse_int(cursor)
            elements.append(InstrumentDef(number))
            continue
        if char in ("!", "'"):
            elements.append(_parse_bang(cursor))
            continue
        if char == "R" or char == "r":
            elements.append(_parse_rest(cursor))
            continue
        if char.isdigit():
            element = _parse_positioned(cursor)
            elements.append(element)
            continue
        if char == "@":
            text, position = _parse_literal(cursor)
            elements.append(Annotation(text, 0))
            continue
        raise DarmsError("unexpected character %r at index %d" % (char, cursor.index))


def _last_note(elements):
    for element in reversed(elements):
        if isinstance(element, NoteCode):
            return element
        if isinstance(element, BeamGroup):
            inner = _last_note(element.members)
            if inner is not None:
                return inner
    return None


def _parse_int(cursor):
    digits = []
    while cursor.peek().isdigit():
        digits.append(cursor.peek())
        cursor.advance()
    if not digits:
        raise DarmsError("expected a number at index %d" % cursor.index)
    return int("".join(digits))


def _parse_bang(cursor):
    cursor.advance()  # ! or '
    char = cursor.peek().upper()
    if char == "K":
        cursor.advance()
        count = _parse_int(cursor)
        sign = cursor.peek()
        if sign not in "#-":
            raise DarmsError("key signature needs # or -")
        cursor.advance()
        return KeyCode(count, sign)
    if char == "M":
        cursor.advance()
        numerator = _parse_int(cursor)
        if cursor.peek() != ":":
            raise DarmsError("meter signature needs ':'")
        cursor.advance()
        denominator = _parse_int(cursor)
        return MeterCode(numerator, denominator)
    if char in "GFC":
        cursor.advance()
        return ClefCode(char)
    raise DarmsError("unknown !-code %r" % char)


def _parse_literal(cursor):
    """``@text$`` with ``^`` capitalizing the next letter."""
    if cursor.peek() != "@":
        raise DarmsError("expected '@' at index %d" % cursor.index)
    cursor.advance()
    chars = []
    capitalize = False
    while True:
        char = cursor.peek()
        if char == "":
            raise DarmsError("unterminated literal")
        cursor.advance()
        if char == "$":
            return "".join(chars), 0
        if char == "^":
            capitalize = True
            continue
        chars.append(char.upper() if capitalize else char)
        capitalize = False


def _parse_rest(cursor):
    cursor.advance()  # R
    count = 1
    if cursor.peek().isdigit():
        count = _parse_int(cursor)
    duration = _maybe_duration(cursor)
    return RestCode(duration, count)


def _maybe_duration(cursor):
    letter = cursor.peek().upper()
    if letter in DURATION_CODES:
        cursor.advance()
        dots = 0
        while cursor.peek() == ".":
            dots += 1
            cursor.advance()
        return duration_value(letter, dots)
    return None


def _parse_positioned(cursor):
    """A position code: either a note or a positioned annotation."""
    start = cursor.index
    number = _parse_int(cursor)
    if cursor.peek() == "@":
        text, _ = _parse_literal(cursor)
        return Annotation(text, number)
    # Short positions 0-9 mean 20-29.
    if cursor.index - start == 1:
        number += 20
    accidental = None
    two = cursor.peek() + cursor.peek(1)
    if two in ACCIDENTAL_CODES:
        accidental = ACCIDENTAL_CODES[two]
        cursor.advance(2)
    elif cursor.peek() in ACCIDENTAL_CODES:
        accidental = ACCIDENTAL_CODES[cursor.peek()]
        cursor.advance()
    duration = _maybe_duration(cursor)
    stem = None
    if cursor.peek().upper() in ("U", "D"):
        stem = cursor.peek().upper()
        cursor.advance()
    return NoteCode(number, accidental, duration, stem)
