"""Recursive-descent parser for the DDL (BNF of section 5.4)."""

from repro.errors import ParseError
from repro.ddl.ast import (
    AttributeClause,
    DefineEntity,
    DefineOrdering,
    DefineRelationship,
    DefineTextIndex,
)
from repro.lang.lexer import Lexer, TokenType
from repro.lang.lexer import TokenStream


def parse_ddl(source):
    """Parse a DDL program; returns a list of statement AST nodes.

    Statements may be separated by newlines or semicolons.
    """
    stream = TokenStream(Lexer(source).tokens())
    statements = []
    while not stream.at_end():
        while stream.accept_symbol(";"):
            pass
        if stream.at_end():
            break
        statements.append(_statement(stream))
    return statements


def _statement(stream):
    stream.expect_keyword("define")
    token = stream.peek()
    if token.matches_keyword("entity"):
        stream.next()
        return _define_entity(stream)
    if token.matches_keyword("relationship"):
        stream.next()
        return _define_relationship(stream)
    if token.matches_keyword("ordering"):
        stream.next()
        return _define_ordering(stream)
    if token.matches_keyword("text"):
        stream.next()
        return _define_text_index(stream)
    raise ParseError(
        "expected 'entity', 'relationship', 'ordering' or 'text', found %r"
        % token.value,
        token.line,
        token.column,
    )


def _attribute_list(stream):
    """Parse ``(name = domain {, name = domain})``."""
    stream.expect_symbol("(")
    attributes = []
    if stream.accept_symbol(")"):
        return attributes
    while True:
        name = stream.expect_identifier("attribute name").value
        stream.expect_symbol("=")
        domain = stream.expect_identifier("domain name").value
        attributes.append(AttributeClause(name, domain))
        if stream.accept_symbol(","):
            continue
        stream.expect_symbol(")")
        return attributes


def _define_entity(stream):
    name = stream.expect_identifier("entity name").value
    attributes = _attribute_list(stream)
    return DefineEntity(name, attributes)


def _define_relationship(stream):
    name = stream.expect_identifier("relationship name").value
    attributes = _attribute_list(stream)
    return DefineRelationship(name, attributes)


def _define_text_index(stream):
    # define text index on TYPE (attribute)
    stream.expect_keyword("index")
    stream.expect_keyword("on")
    type_name = stream.expect_identifier("entity or relationship name").value
    stream.expect_symbol("(")
    attribute = stream.expect_identifier("attribute name").value
    stream.expect_symbol(")")
    return DefineTextIndex(type_name, attribute)


def _define_ordering(stream):
    # define ordering [order_name] (child {, child}) under parent
    name = None
    token = stream.peek()
    if token.type is TokenType.IDENT and not token.matches_keyword("under"):
        name = stream.next().value
    stream.expect_symbol("(")
    child_types = [stream.expect_identifier("child entity name").value]
    while stream.accept_symbol(","):
        child_types.append(stream.expect_identifier("child entity name").value)
    stream.expect_symbol(")")
    # The BNF makes the under clause optional, but an ordering without a
    # parent has no meaning in our runtime; require it.
    stream.expect_keyword("under")
    parent = stream.expect_identifier("parent entity name").value
    return DefineOrdering(name, child_types, parent)
