"""AST nodes for the data definition language."""


class AttributeClause:
    """``name = domain`` inside a define entity/relationship statement."""

    __slots__ = ("name", "domain_name")

    def __init__(self, name, domain_name):
        self.name = name
        self.domain_name = domain_name

    def __repr__(self):
        return "%s = %s" % (self.name, self.domain_name)

    def __eq__(self, other):
        if not isinstance(other, AttributeClause):
            return NotImplemented
        return self.name == other.name and self.domain_name == other.domain_name


class DefineEntity:
    """``define entity NAME (attributes)``"""

    __slots__ = ("name", "attributes")

    def __init__(self, name, attributes):
        self.name = name
        self.attributes = list(attributes)

    def unparse(self):
        inner = ", ".join(repr(a) for a in self.attributes)
        return "define entity %s (%s)" % (self.name, inner)

    def __repr__(self):
        return "DefineEntity(%r)" % self.name


class DefineRelationship:
    """``define relationship NAME (roles-and-attributes)``

    The parser cannot always distinguish roles (entity-typed) from value
    attributes (scalar-typed); the compiler splits them against the
    schema's known entity types.
    """

    __slots__ = ("name", "attributes")

    def __init__(self, name, attributes):
        self.name = name
        self.attributes = list(attributes)

    def unparse(self):
        inner = ", ".join(repr(a) for a in self.attributes)
        return "define relationship %s (%s)" % (self.name, inner)

    def __repr__(self):
        return "DefineRelationship(%r)" % self.name


class DefineTextIndex:
    """``define text index on TYPE (attribute)``

    TYPE may name an entity type or a relationship; the attribute must
    be string-domained.  Compiles to a durable trigram index (see
    :mod:`repro.text`) that the QUEL ``matches``/``similar_to`` gates
    prune through.
    """

    __slots__ = ("type_name", "attribute")

    def __init__(self, type_name, attribute):
        self.type_name = type_name
        self.attribute = attribute

    def unparse(self):
        return "define text index on %s (%s)" % (self.type_name, self.attribute)

    def __repr__(self):
        return "DefineTextIndex(%r.%r)" % (self.type_name, self.attribute)


class DefineOrdering:
    """``define ordering [name] (children) under PARENT``"""

    __slots__ = ("name", "child_types", "parent_type")

    def __init__(self, name, child_types, parent_type):
        self.name = name  # None when the optional order_name was omitted
        self.child_types = list(child_types)
        self.parent_type = parent_type

    def unparse(self):
        name_part = (self.name + " ") if self.name else ""
        return "define ordering %s(%s) under %s" % (
            name_part,
            ", ".join(self.child_types),
            self.parent_type,
        )

    def __repr__(self):
        return "DefineOrdering(%r, %r under %r)" % (
            self.name,
            self.child_types,
            self.parent_type,
        )
