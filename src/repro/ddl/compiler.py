"""Compile DDL ASTs into live schema objects."""

from repro.errors import SchemaError
from repro.core.schema import Schema
from repro.ddl.ast import (
    DefineEntity,
    DefineOrdering,
    DefineRelationship,
    DefineTextIndex,
)
from repro.ddl.parser import parse_ddl
from repro.storage.values import Domain

_SCALAR_NAMES = {d.value for d in Domain if d is not Domain.ENTITY}


def compile_ddl(statements, schema):
    """Apply parsed *statements* to *schema*; returns the created objects.

    Entities are created first so relationships and orderings can
    resolve entity-type references regardless of statement order within
    each statement class; orderings referencing not-yet-defined entities
    remain an error, as in the paper's DDL.
    """
    created = []
    for statement in statements:
        if isinstance(statement, DefineEntity):
            specs = [(a.name, a.domain_name) for a in statement.attributes]
            created.append(schema.define_entity(statement.name, specs))
        elif isinstance(statement, DefineRelationship):
            roles = []
            attributes = []
            for clause in statement.attributes:
                if schema.has_entity_type(clause.domain_name):
                    roles.append((clause.name, clause.domain_name))
                elif clause.domain_name.lower() in _SCALAR_NAMES:
                    attributes.append((clause.name, clause.domain_name.lower()))
                else:
                    raise SchemaError(
                        "relationship %s: %r is neither a known entity type "
                        "nor a scalar domain" % (statement.name, clause.domain_name)
                    )
            created.append(
                schema.define_relationship(statement.name, roles, attributes)
            )
        elif isinstance(statement, DefineOrdering):
            created.append(
                schema.define_ordering(
                    statement.name, statement.child_types, under=statement.parent_type
                )
            )
        elif isinstance(statement, DefineTextIndex):
            if schema.has_entity_type(statement.type_name):
                table = schema.entity_type(statement.type_name).table
            elif statement.type_name in schema.relationships:
                table = schema.relationships[statement.type_name].table
            else:
                raise SchemaError(
                    "text index on unknown type %r" % statement.type_name
                )
            created.append(
                schema.database.create_text_index(
                    table.name, statement.attribute
                )
            )
        else:
            raise SchemaError("unknown DDL statement %r" % (statement,))
    return created


def execute_ddl(source, schema=None):
    """Parse and compile a DDL program; returns the schema."""
    if schema is None:
        schema = Schema()
    compile_ddl(parse_ddl(source), schema)
    return schema
