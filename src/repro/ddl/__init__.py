"""The paper's data definition language (section 5.4).

Three statement forms::

    define entity NAME (attr = domain, ...)
    define relationship NAME (role = TYPE, ...)
    define ordering [order_name] (CHILD {, CHILD}) under PARENT

plus the catalog-search extension::

    define text index on TYPE (attribute)

``parse_ddl`` produces an AST; ``compile_ddl`` applies a program to a
:class:`~repro.core.schema.Schema`; ``execute_ddl`` does both.
"""

from repro.ddl.ast import (
    AttributeClause,
    DefineEntity,
    DefineOrdering,
    DefineRelationship,
    DefineTextIndex,
)
from repro.ddl.parser import parse_ddl
from repro.ddl.compiler import compile_ddl, execute_ddl

__all__ = [
    "AttributeClause",
    "DefineEntity",
    "DefineOrdering",
    "DefineRelationship",
    "DefineTextIndex",
    "parse_ddl",
    "compile_ddl",
    "execute_ddl",
]
