"""The retrying, failing-over MDM network client.

:class:`MdmClient` hides transient distribution faults behind the same
discipline the service layer uses locally: jittered exponential backoff
under an absolute per-call deadline.  What it hides, concretely:

* **Torn connections.**  Any network error triggers a reconnect and —
  for writes — a resend of the *same* per-client sequence number.  The
  server's durable dedup ledger makes the resend exactly-once: if the
  crash happened after the commit's WAL flush but before the ack, the
  retry comes back as duplicate-success instead of double-applying.
* **Replica loss and lag.**  Retrieves round-robin across read-only
  replicas and fail over — replica to replica to primary — on *any*
  replica-side error (replicas are best-effort; the primary is the
  authority).  A failed replica sits out a cooldown window.  Writes
  carry the durable LSN back, and retrieves send it as ``min_lsn``, so
  a replica never silently answers from before the client's own writes
  (read-your-writes).
* **Session state.**  ``range of`` declarations are recorded and
  replayed onto every fresh connection (a re-seeded replica forgets
  them), so failover does not change query meaning.

The client is not thread-safe; give each worker its own instance.
"""

import itertools
import os
import random
import time

from repro import errors as errors_module
from repro.errors import (
    MDMError,
    NetworkError,
    ProtocolError,
    RetryExhaustedError,
)
from repro.net import protocol
from repro.net.transport import Transport
from repro.obs.metrics import MetricsRegistry


_client_ids = itertools.count(1)


def _fresh_client_id():
    """A per-instance default client id.

    The id keys the server's durable write-dedup ledger, so two
    clients must never share one accidentally: a fresh client reusing
    another's id (and starting its seqs over) would have its genuinely
    new writes classified as duplicates of the other's history.
    Callers that *want* dedup continuity across restarts pass an
    explicit stable id.
    """
    return "client-%d-%d" % (os.getpid(), next(_client_ids))


def _exception_for(code, message):
    """Rehydrate a structured ERROR frame into the matching exception."""
    cls = getattr(errors_module, str(code), None)
    if isinstance(cls, type) and issubclass(cls, MDMError):
        return cls(message)
    return MDMError("%s: %s" % (code, message))


class _Endpoint:
    """One dialable server (primary or replica) and its live transport."""

    def __init__(self, address, role):
        self.address = tuple(address)
        self.role = role
        self.transport = None
        self.welcome = None
        self.cooldown_until = 0.0

    def close(self):
        if self.transport is not None:
            self.transport.close()
            self.transport = None
            self.welcome = None


class MdmClient:
    """A remote MusicDataManager handle with retry and failover."""

    def __init__(self, primary_address, replicas=(), client_id=None,
                 default_timeout=5.0, max_attempts=6, backoff_base=0.02,
                 backoff_cap=0.5, connect_timeout=2.0, replica_cooldown=0.5,
                 seed=0, transport_factory=None, metrics=None):
        self.client_id = (
            client_id if client_id is not None else _fresh_client_id()
        )
        self.default_timeout = default_timeout
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.connect_timeout = connect_timeout
        self.replica_cooldown = replica_cooldown
        self._rng = random.Random(seed)
        self._transport_factory = (
            transport_factory if transport_factory is not None
            else Transport.connect
        )
        self._primary = _Endpoint(primary_address, "primary")
        self._replicas = [_Endpoint(a, "replica") for a in replicas]
        self._next_replica = 0
        self._seq = 0  # highest seq acked by the server
        self._inflight = None  # (seq, source) whose fate is unknown
        self._commit_lsn = 0  # read-your-writes horizon
        self._preamble = []  # range declarations, replayed per connection
        registry = metrics if metrics is not None else MetricsRegistry()
        self.metrics = registry
        self._m_reconnects = registry.counter("client.reconnects")
        self._m_failovers = registry.counter("client.failovers")
        self._m_duplicates = registry.counter("client.duplicate_acks")
        self._m_retries = registry.counter("client.retries")

    # -- public API ------------------------------------------------------------

    def execute(self, source, timeout=None, row_budget=None):
        """Run a write/DDL statement on the primary, exactly once.

        ``range of`` declarations are treated as session state: run
        read-only, recorded, and replayed onto future connections.

        A statement that ends in :class:`RetryExhaustedError` is
        *in doubt* — it may or may not have committed.  Re-issuing the
        same statement resends the same sequence number, so the dedup
        ledger resolves it exactly-once.  Issuing a *different*
        statement abandons the in-doubt one (it keeps whatever fate it
        had) and moves to a fresh sequence number.
        """
        if source.lstrip().lower().startswith("range of"):
            result = self._call_primary({
                "source": source, "read_only": True,
                "row_budget": row_budget,
            }, timeout)
            self._preamble.append(source)
            return None
        if self._inflight is not None and self._inflight[1] == source:
            seq = self._inflight[0]
        else:
            # Learn the server's dedup high-water mark (WELCOME's
            # last_seq, adopted in _ensure_connected) before assigning
            # a fresh sequence number: a restarted client reusing a
            # stable id must continue the server's numbering — starting
            # over at 1 would classify its new writes as duplicates.
            if (self._primary.transport is None
                    or self._primary.transport.closed):
                try:
                    self._ensure_connected(self._primary, None)
                except MDMError:
                    pass  # the retry loop below surfaces real trouble
            seq = self._seq + 1
            if self._inflight is not None:
                seq = max(seq, self._inflight[0] + 1)
            self._inflight = None
        try:
            message = self._call_primary({
                "seq": seq, "source": source, "read_only": False,
                "row_budget": row_budget,
            }, timeout)
        except RetryExhaustedError:
            self._inflight = (seq, source)
            raise
        self._inflight = None
        self._seq = max(self._seq, seq)
        if message.get("duplicate"):
            self._m_duplicates.inc()
        lsn = message.get("commit_lsn")
        if lsn:
            self._commit_lsn = max(self._commit_lsn, lsn)
        return message.get("value")

    def retrieve(self, source, timeout=None, row_budget=None):
        """Run a retrieve, preferring replicas, failing over on trouble.

        Never surfaces a replica-side error: a replica that refuses
        (lag, restart, torn link) is put on cooldown and the next
        endpoint is tried, ending at the primary — whose answer (or
        error) is authoritative.
        """
        window = self.default_timeout if timeout is None else timeout
        deadline = None if window is None else time.monotonic() + window
        request = {
            "source": source, "read_only": True, "row_budget": row_budget,
            "min_lsn": self._commit_lsn,
        }
        for endpoint in self._replica_order():
            try:
                message = self._request_on(endpoint, dict(request), deadline)
                return protocol.decode_rows(message.get("value") or [])
            except MDMError:
                endpoint.close()
                endpoint.cooldown_until = (
                    time.monotonic() + self.replica_cooldown
                )
                self._m_failovers.inc()
        message = self._call_primary(request, timeout, deadline=deadline)
        return protocol.decode_rows(message.get("value") or [])

    def meta(self, command, timeout=None):
        """Run a shell meta-command (``\\health``, ``\\replicas``, ...)."""
        message = self._call(
            self._primary, protocol.META, {"command": command}, timeout
        )
        return message.get("value")

    def close(self):
        for endpoint in [self._primary] + self._replicas:
            if endpoint.transport is not None:
                try:
                    endpoint.transport.send(protocol.BYE, {})
                except MDMError:
                    pass
            endpoint.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    # -- the retry engine -------------------------------------------------------

    def _call_primary(self, request, timeout, deadline=None):
        return self._call(
            self._primary, protocol.REQUEST, request, timeout,
            deadline=deadline,
        )

    def _call(self, endpoint, kind, body, timeout, deadline=None):
        """Send one request with reconnect-and-retry under a deadline."""
        if deadline is None:
            window = self.default_timeout if timeout is None else timeout
            deadline = None if window is None else time.monotonic() + window
        last_error = None
        for attempt in range(1, self.max_attempts + 1):
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                break
            try:
                self._ensure_connected(endpoint, remaining)
                return self._roundtrip(
                    endpoint, kind, body, remaining
                )
            except (NetworkError, ProtocolError) as error:
                # Torn link: reconnect and resend (dedup makes writes safe).
                endpoint.close()
                self._m_reconnects.inc()
                last_error = error
            except MDMError as error:
                if not getattr(error, "_retryable", False):
                    raise
                last_error = error
            if attempt < self.max_attempts:
                self._m_retries.inc()
                self._sleep_backoff(attempt, deadline)
        raise RetryExhaustedError(
            "client %r gave up on %s after %d attempt%s: %s"
            % (
                self.client_id, endpoint.role, attempt,
                "" if attempt == 1 else "s", last_error,
            ),
            attempts=attempt,
            last_error=last_error,
        )

    def _request_on(self, endpoint, request, deadline):
        """One shot (no retry loop) against a replica endpoint."""
        remaining = None if deadline is None else deadline - time.monotonic()
        if remaining is not None and remaining <= 0:
            raise NetworkError("deadline spent before dialing %s" % (endpoint.address,))
        self._ensure_connected(endpoint, remaining)
        return self._roundtrip(endpoint, protocol.REQUEST, request, remaining)

    def _roundtrip(self, endpoint, kind, body, remaining):
        request = dict(body)
        request.setdefault("seq", None)
        request["timeout_s"] = remaining
        endpoint.transport.send(kind, request)
        # Grace past the server-side deadline so a structured timeout
        # frame beats the socket timeout.
        wait = None if remaining is None else remaining + 0.5
        reply_kind, reply_body = endpoint.transport.recv(timeout=wait)
        message = protocol.unpack_json(reply_kind, reply_body)
        if reply_kind == protocol.ERROR:
            error = _exception_for(
                message.get("code"), message.get("message")
            )
            error._retryable = bool(message.get("retryable"))
            raise error
        if reply_kind != protocol.RESULT:
            raise ProtocolError(
                "expected RESULT, got %s"
                % protocol.KIND_NAMES.get(reply_kind, reply_kind)
            )
        return message

    def _ensure_connected(self, endpoint, remaining):
        if endpoint.transport is not None and not endpoint.transport.closed:
            return
        timeout = self.connect_timeout
        if remaining is not None:
            timeout = min(timeout, max(0.01, remaining))
        transport = self._transport_factory(endpoint.address, timeout)
        try:
            transport.send(protocol.HELLO, {
                "proto": protocol.PROTOCOL_VERSION,
                "client": self.client_id,
                "last_seq": self._seq,
            })
            reply_kind, reply_body = transport.recv(timeout=timeout)
            welcome = protocol.unpack_json(reply_kind, reply_body)
            if reply_kind == protocol.ERROR:
                raise _exception_for(
                    welcome.get("code"), welcome.get("message")
                )
            if reply_kind != protocol.WELCOME:
                raise ProtocolError("handshake did not return WELCOME")
            if endpoint.role == "primary":
                # Adopt the server's dedup high-water mark: a restarted
                # client reusing a stable client_id would otherwise
                # start at seq 1 and have its genuinely new writes
                # classified as duplicates (stale results, statements
                # silently not executed).
                self._seq = max(
                    self._seq, int(welcome.get("last_seq") or 0)
                )
            for statement in self._preamble:
                transport.send(protocol.REQUEST, {
                    "seq": None, "source": statement, "read_only": True,
                    "timeout_s": timeout,
                })
                kind2, body2 = transport.recv(timeout=timeout)
                if kind2 == protocol.ERROR:
                    reply = protocol.unpack_json(kind2, body2)
                    raise _exception_for(
                        reply.get("code"), reply.get("message")
                    )
        except MDMError:
            transport.close()
            raise
        endpoint.transport = transport
        endpoint.welcome = welcome

    def _replica_order(self):
        """Healthy replicas starting at the round-robin cursor."""
        if not self._replicas:
            return []
        now = time.monotonic()
        count = len(self._replicas)
        start = self._next_replica
        self._next_replica = (start + 1) % count
        ordered = [
            self._replicas[(start + i) % count] for i in range(count)
        ]
        return [e for e in ordered if e.cooldown_until <= now]

    def _sleep_backoff(self, attempt, deadline):
        delay = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        delay *= 0.5 + self._rng.random()
        if deadline is not None:
            delay = min(delay, max(0.0, deadline - time.monotonic()))
        time.sleep(delay)

    # -- introspection ----------------------------------------------------------

    @property
    def last_commit_lsn(self):
        return self._commit_lsn

    @property
    def last_seq(self):
        return self._seq
