"""Network serving: wire protocol, connection server, WAL-shipping replicas.

Turns the in-process Music Data Manager into a served system: a
length-prefixed, CRC-tagged binary protocol (:mod:`repro.net.protocol`),
a thread-per-connection server multiplexing remote sessions through the
existing service layer (:mod:`repro.net.server`), read-only replica
processes fed by WAL shipping (:mod:`repro.net.replica`,
:mod:`repro.net.replication`), and a retrying, failing-over client
(:mod:`repro.net.client`).  Robustness is the point: every piece is
built to survive torn connections, slow or dead replicas, and
crash-mid-commit, and the seeded fault machinery from
:mod:`repro.storage.faults` drives wire faults through
:class:`repro.net.transport.FaultyTransport` exactly as it drives disk
faults through ``FaultyFile``.
"""

from repro.net.client import MdmClient
from repro.net.replica import ReplicaServer
from repro.net.server import MdmServer

__all__ = ["MdmClient", "MdmServer", "ReplicaServer"]
