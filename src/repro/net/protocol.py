"""The MDM wire protocol: length-prefixed, CRC-tagged binary frames.

Framing mirrors the WAL's on-disk format deliberately — the same
``<length:I><crc32:I><payload>`` header, with the CRC covering the
payload — so the two torn-data stories stay symmetric: a partial send
tears a frame exactly as a power cut tears a log record, and the
receiver detects both with the same checksum-then-length discipline.
The payload's first byte is the frame *kind*; the rest is the body.

Control frames carry JSON bodies (QUEL text, shell meta-commands,
structured results and errors); replication data frames carry binary
bodies (``REPL_FRAME`` embeds a raw WAL record — itself CRC-framed —
prefixed by its LSN, and ``REPL_ROWS`` embeds serialized rows), so row
values that JSON cannot express (rationals, blobs) replicate losslessly.

Every connection opens with a version handshake (``HELLO``/``WELCOME``
for clients, ``REPL_HELLO`` for replicas); a version mismatch is a
structured refusal, not a hung socket.
"""

import json
import struct
import zlib

from repro.errors import ProtocolError

#: Bumped on any incompatible frame-layout change.
PROTOCOL_VERSION = 1

#: Frames larger than this are refused outright: a corrupt length field
#: must fail fast, not allocate gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Frame header: payload length, CRC32 of the payload.
FRAME_HEADER = struct.Struct("<II")

# -- frame kinds ---------------------------------------------------------------

# Client -> server.
HELLO = 0x01       # {proto, client, last_seq}
REQUEST = 0x02     # {seq, source, timeout_s, read_only, row_budget, min_lsn}
META = 0x03        # {seq, command}
BYE = 0x04         # {}

# Server -> client.
WELCOME = 0x11     # {proto, server, role, last_seq}
RESULT = 0x12      # {seq, kind, rows|count|text, duplicate, commit_lsn, applied_lsn}
ERROR = 0x13       # {seq, code, message, retryable}

# Replication (replica <-> primary).
REPL_HELLO = 0x21  # {proto, replica, last_lsn}
REPL_SEED = 0x22   # {lsn, schema, tables: [{name, columns}]}  (rows follow)
REPL_ROWS = 0x23   # binary: <name_len:H><name><count:I><row bytes...>
REPL_SEED_END = 0x24  # {lsn}
REPL_FRAME = 0x25  # binary: <lsn:Q><raw WAL frame>
REPL_ACK = 0x26    # {lsn}
REPL_ERROR = 0x27  # {code, message, lsn}

KIND_NAMES = {
    HELLO: "HELLO", REQUEST: "REQUEST", META: "META", BYE: "BYE",
    WELCOME: "WELCOME", RESULT: "RESULT", ERROR: "ERROR",
    REPL_HELLO: "REPL_HELLO", REPL_SEED: "REPL_SEED",
    REPL_ROWS: "REPL_ROWS", REPL_SEED_END: "REPL_SEED_END",
    REPL_FRAME: "REPL_FRAME", REPL_ACK: "REPL_ACK",
    REPL_ERROR: "REPL_ERROR",
}

_REPL_ROWS_HEAD = struct.Struct("<HI")
_REPL_FRAME_HEAD = struct.Struct("<Q")


def encode_frame(kind, body):
    """Build one wire frame around *body* (bytes)."""
    payload = bytes((kind,)) + body
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame of %d bytes exceeds the %d-byte limit"
            % (len(payload), MAX_FRAME_BYTES)
        )
    return FRAME_HEADER.pack(
        len(payload), zlib.crc32(payload) & 0xFFFFFFFF
    ) + payload


def decode_payload(payload, crc):
    """Verify and split a received payload; returns ``(kind, body)``."""
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise ProtocolError("frame checksum mismatch")
    if not payload:
        raise ProtocolError("empty frame payload")
    return payload[0], payload[1:]


def pack(kind, obj):
    """A control frame with a JSON body."""
    return encode_frame(kind, json.dumps(obj, sort_keys=True).encode("utf-8"))


def unpack_json(kind, body):
    """Parse a control frame's JSON body."""
    try:
        return json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(
            "unparseable %s body: %s" % (KIND_NAMES.get(kind, kind), exc)
        )


# -- result values over JSON -----------------------------------------------------


def encode_value(value):
    """Make one attribute value JSON-safe (rationals, blobs)."""
    from fractions import Fraction

    if isinstance(value, Fraction):
        return {"__rat__": [value.numerator, value.denominator]}
    if isinstance(value, (bytes, bytearray)):
        return {"__blob__": bytes(value).hex()}
    return value


def decode_value(value):
    """Undo :func:`encode_value`."""
    if isinstance(value, dict):
        if "__rat__" in value:
            from fractions import Fraction

            numerator, denominator = value["__rat__"]
            return Fraction(numerator, denominator)
        if "__blob__" in value:
            return bytes.fromhex(value["__blob__"])
    return value


def encode_rows(rows):
    """JSON-safe copies of QUEL result rows."""
    return [
        {key: encode_value(val) for key, val in row.items()} for row in rows
    ]


def decode_rows(rows):
    return [
        {key: decode_value(val) for key, val in row.items()} for row in rows
    ]


# -- binary replication bodies ---------------------------------------------------


def pack_repl_frame(lsn, wal_frame):
    """``REPL_FRAME`` body: the WAL record's LSN plus its raw bytes."""
    return encode_frame(REPL_FRAME, _REPL_FRAME_HEAD.pack(lsn) + wal_frame)


def unpack_repl_frame(body):
    """Split a ``REPL_FRAME`` body into ``(lsn, wal_frame_bytes)``."""
    if len(body) < _REPL_FRAME_HEAD.size:
        raise ProtocolError("short REPL_FRAME body")
    (lsn,) = _REPL_FRAME_HEAD.unpack_from(body, 0)
    return lsn, body[_REPL_FRAME_HEAD.size:]


def pack_repl_rows(table_name, rows, column_order):
    """``REPL_ROWS`` body: one table's serialized rows (seed transfer)."""
    name_bytes = table_name.encode("utf-8")
    chunks = [_REPL_ROWS_HEAD.pack(len(name_bytes), len(rows)), name_bytes]
    for row in rows:
        chunks.append(row.serialize(column_order))
    return encode_frame(REPL_ROWS, b"".join(chunks))


def unpack_repl_rows(body, column_orders, row_type):
    """Split a ``REPL_ROWS`` body into ``(table_name, [Row, ...])``.

    *column_orders* maps table name -> column order (the receiver's
    schema must already know the table from the ``REPL_SEED`` manifest).
    """
    if len(body) < _REPL_ROWS_HEAD.size:
        raise ProtocolError("short REPL_ROWS body")
    name_len, count = _REPL_ROWS_HEAD.unpack_from(body, 0)
    offset = _REPL_ROWS_HEAD.size
    table_name = body[offset:offset + name_len].decode("utf-8")
    offset += name_len
    order = column_orders.get(table_name)
    if order is None:
        raise ProtocolError("REPL_ROWS for unknown table %r" % table_name)
    rows = []
    for _ in range(count):
        row, offset = row_type.deserialize(body, order, offset)
        rows.append(row)
    return table_name, rows
