"""Socket transports: framed send/receive, with seeded fault injection.

:class:`Transport` wraps one connected socket with the frame layer from
:mod:`repro.net.protocol`: ``send`` writes whole frames, ``recv`` blocks
(deadline-bounded) until a whole, checksum-verified frame arrives.  All
failure modes surface as the :class:`repro.errors.NetworkError` family —
a torn connection is ``NetworkError``, garbage is ``ProtocolError``, a
quiet peer past the deadline is ``NetworkTimeoutError`` — so callers
never see raw ``socket.error`` soup.

:class:`FaultyTransport` is the wire-side counterpart of
:class:`repro.storage.faults.FaultyFile`: it consults a
:class:`~repro.storage.faults.FaultPlan`'s plan-wide frame counter on
every send and injects deterministic disconnects, partial (torn) sends,
stalls, and persistent partitions, so one seeded plan drives disk and
wire faults together and a failing schedule replays exactly.
"""

import socket
import time

from repro.errors import NetworkError, NetworkTimeoutError, ProtocolError
from repro.net import protocol


class Transport:
    """One framed, bidirectional connection."""

    def __init__(self, sock):
        self._sock = sock
        self._buffer = b""
        self.closed = False
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except (OSError, AttributeError):
            pass  # non-TCP sockets (socketpair) have no Nagle to disable

    @classmethod
    def connect(cls, address, timeout=5.0):
        """Dial ``(host, port)`` and return a connected transport."""
        try:
            sock = socket.create_connection(address, timeout=timeout)
        except OSError as exc:
            raise NetworkError("cannot connect to %s:%s: %s" % (address[0], address[1], exc))
        sock.settimeout(None)
        return cls(sock)

    # -- sending ---------------------------------------------------------------

    def send(self, kind, obj):
        """Send a JSON-bodied control frame."""
        self.send_raw(protocol.pack(kind, obj))

    def send_raw(self, frame):
        """Send pre-encoded frame bytes."""
        self._sendall(frame)

    def _sendall(self, data):
        if self.closed:
            raise NetworkError("transport is closed")
        try:
            self._sock.sendall(data)
        except OSError as exc:
            self.close()
            raise NetworkError("send failed: %s" % exc)

    # -- receiving -------------------------------------------------------------

    def recv(self, timeout=None):
        """Receive one frame; returns ``(kind, body_bytes)``.

        *timeout* (seconds, None = block forever) bounds the wait for a
        *complete* frame; expiry raises :class:`NetworkTimeoutError`.
        EOF mid-frame or before one raises :class:`NetworkError`; a
        checksum or length violation raises :class:`ProtocolError`.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        header = self._read_exact(protocol.FRAME_HEADER.size, deadline)
        length, crc = protocol.FRAME_HEADER.unpack(header)
        if length > protocol.MAX_FRAME_BYTES:
            self.close()
            raise ProtocolError("peer announced %d-byte frame" % length)
        payload = self._read_exact(length, deadline)
        try:
            return protocol.decode_payload(payload, crc)
        except ProtocolError:
            # A frame that failed its checksum poisons the stream — the
            # next bytes may be mid-frame garbage — so tear it down.
            self.close()
            raise

    def _read_exact(self, count, deadline):
        while len(self._buffer) < count:
            if self.closed:
                raise NetworkError("transport is closed")
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise NetworkTimeoutError(
                        "no complete frame within the receive deadline"
                    )
                self._sock.settimeout(remaining)
            else:
                self._sock.settimeout(None)
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                raise NetworkTimeoutError(
                    "no complete frame within the receive deadline"
                )
            except OSError as exc:
                self.close()
                raise NetworkError("receive failed: %s" % exc)
            if not chunk:
                self.close()
                raise NetworkError("connection closed by peer")
            self._buffer += chunk
        data = self._buffer[:count]
        self._buffer = self._buffer[count:]
        return data

    # -- teardown --------------------------------------------------------------

    def close(self):
        if self.closed:
            return
        self.closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


class FaultyTransport(Transport):
    """A transport whose sends fault on a seeded, reproducible schedule.

    Mirrors ``FaultyFile``: the :class:`~repro.storage.faults.FaultPlan`
    counts frames across *every* faulty transport it drives (so
    ``disconnect_at_frame=3`` means "the third frame sent anywhere under
    this plan"), and decides per frame whether to send normally, stall,
    tear the connection cleanly, or send a strict prefix and then tear —
    the wire analogue of a torn write.  Receives are untouched: the
    peer's view of a torn send is already the interesting failure.
    """

    def __init__(self, sock, plan):
        super().__init__(sock)
        self._plan = plan

    @classmethod
    def connector(cls, plan):
        """A ``transport_factory(address)`` injecting *plan* (for MdmClient)."""
        def factory(address, timeout=5.0):
            try:
                sock = socket.create_connection(address, timeout=timeout)
            except OSError as exc:
                raise NetworkError(
                    "cannot connect to %s:%s: %s" % (address[0], address[1], exc)
                )
            sock.settimeout(None)
            return cls(sock, plan)
        return factory

    def send_raw(self, frame):
        fault, argument = self._plan.on_net_frame(len(frame))
        if fault == "down":
            self.close()
            raise NetworkError(
                "injected network partition (frame #%d)" % self._plan.frame_count
            )
        if fault == "disconnect":
            self.close()
            raise NetworkError(
                "injected disconnect at frame #%d" % self._plan.frame_count
            )
        if fault == "partial":
            try:
                self._sendall(frame[:argument])
            finally:
                self.close()
            raise NetworkError(
                "injected partial send (%d of %d bytes) at frame #%d"
                % (argument, len(frame), self._plan.frame_count)
            )
        if fault == "stall":
            time.sleep(argument)
        self._sendall(frame)
