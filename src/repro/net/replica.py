"""Read-only replicas fed by WAL shipping.

A :class:`ReplicaServer` owns a private in-memory database rebuilt from
the primary's seed (schema manifest + serialized rows) and kept current
by applying shipped WAL frames.  Every frame is CRC-verified with the
same :func:`repro.storage.wal.decode_frame` discipline recovery uses; a
frame that fails its checksum — or that references a table the replica
does not know, e.g. after un-shipped DDL — makes the replica *degrade*:
it reports ``REPL_ERROR`` to the primary, refuses reads, and waits to
be quarantined and re-seeded from a fresh snapshot.

Apply is MVCC-correct under concurrent readers: a transaction's changes
are buffered until its COMMIT record arrives and then installed through
:meth:`Table.apply_replicated`, stamped at the commit LSN, with the
replica's visible LSN advancing only once the whole commit is in.  A
reader pinned mid-apply keeps seeing the previous consistent state.

The replica serves ``read_only`` retrieves on its own listener.  A
request carrying ``min_lsn`` (the client's read-your-writes horizon)
waits briefly for the applier to catch up and otherwise refuses with
:class:`~repro.errors.ReplicaLagError` — a *retryable* refusal, so the
client fails over to the primary instead of reading stale data.
"""

import random
import socket
import struct
import threading
import time

from repro.core.schema import Schema
from repro.errors import (
    MDMError,
    NetworkError,
    NetworkTimeoutError,
    ProtocolError,
    ReadOnlyError,
    RecoveryError,
    ReplicaLagError,
)
from repro.net import protocol
from repro.net.transport import Transport
from repro.quel.executor import QuelSession
from repro.storage import wal as wal_module
from repro.storage.database import Database
from repro.storage.row import Row


class _ReplicaState:
    """One seeded generation of the replica's database."""

    def __init__(self, manifest, tables, text_indexes=None):
        self.database = Database(None)
        self.schema = Schema("replica", database=self.database)
        for entity in manifest.get("entities", ()):
            if not self.schema.has_entity_type(entity["name"]):
                self.schema.define_entity(
                    entity["name"], [tuple(a) for a in entity["attrs"]]
                )
        for rel in manifest.get("relationships", ()):
            if rel["name"] not in self.schema.relationships:
                self.schema.define_relationship(
                    rel["name"],
                    [tuple(r) for r in rel["roles"]],
                    [tuple(a) for a in rel["attrs"]],
                    rel.get("many_role"),
                )
        for ordering in manifest.get("orderings", ()):
            if ordering["name"] not in self.schema.orderings:
                self.schema.define_ordering(
                    ordering["name"], ordering["children"], ordering["parent"]
                )
        # Non-schema tables (the dedup ledger, anything raw) come from
        # the seed's table list; schema replay already made the rest.
        for spec in tables:
            if not self.database.has_table(spec["name"]):
                self.database.create_table(
                    spec["name"], [(c, d) for c, d in spec["columns"]]
                )
        # Registered before rows land: seed row installs and the
        # streamed frames that follow then maintain the postings
        # incrementally, same ordering as local crash recovery.
        for name, columns in (text_indexes or {}).items():
            for column in columns:
                self.database.table(name).create_text_index(column)
        self.column_orders = self.database.column_orders()


class ReplicaServer:
    """One read-only replica process: applier plus retrieve listener."""

    def __init__(self, primary_address, name="replica", host="127.0.0.1",
                 port=0, reconnect_base=0.05, reconnect_cap=1.0, seed=0,
                 transport_factory=None, metrics=None, idle_timeout=120.0):
        self.primary_address = tuple(primary_address)
        self.name = name
        self.host = host
        self.port = port
        self.address = None
        self._transport_factory = (
            transport_factory if transport_factory is not None
            else Transport.connect
        )
        self._reconnect_base = reconnect_base
        self._reconnect_cap = reconnect_cap
        self._rng = random.Random(seed)
        self.idle_timeout = idle_timeout
        self._stopped = False
        self._listener = None
        self._threads = []
        self._reader_threads = set()
        self._transports = set()
        self._mutex = threading.Lock()
        # Applier state: guarded by _applied_cond so min_lsn waiters see
        # a consistent (state, applied_lsn, serving) triple.
        self._applied_cond = threading.Condition(threading.Lock())
        self._state = None
        self.applied_lsn = 0
        self._serving = False
        self.last_error = None
        self._pending = {}  # txn_id -> buffered change records
        self._pending_first = {}  # txn_id -> LSN of its first buffered frame
        from repro.obs.metrics import MetricsRegistry

        registry = metrics if metrics is not None else MetricsRegistry()
        self.metrics = registry
        self._m_frames = registry.counter("repl.frames_applied")
        self._m_commits = registry.counter("repl.commits_applied")
        self._m_seeds = registry.counter("repl.seeds_received")
        self._m_connects = registry.counter("repl.reconnects")
        self._m_crc_failures = registry.counter("repl.crc_failures")
        self._m_reads = registry.counter("repl.reads_served")
        self._m_lag_refusals = registry.counter("repl.lag_refusals")

    # -- lifecycle -------------------------------------------------------------

    def start(self):
        """Open the retrieve listener and start the feed loop."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(16)
        self._listener = listener
        self.address = listener.getsockname()
        for target, label in (
            (self._feed_loop, "replica-feed"),
            (self._accept_loop, "replica-accept"),
        ):
            thread = threading.Thread(
                target=target, name="%s-%s" % (label, self.name), daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self.address

    def stop(self):
        self._stopped = True
        if self._listener is not None:
            try:
                # Wake the thread blocked in accept() so it releases
                # the fd; close() alone leaves the port held.
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._mutex:
            transports = list(self._transports)
        for transport in transports:
            transport.close()
        with self._mutex:
            readers = list(self._reader_threads)
        for thread in self._threads + readers:
            thread.join(timeout=2.0)

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info):
        self.stop()
        return False

    def status(self):
        with self._applied_cond:
            return {
                "name": self.name,
                "address": self.address,
                "serving": self._serving,
                "applied_lsn": self.applied_lsn,
                "last_error": self.last_error,
            }

    # -- the feed loop (replica <- primary) -------------------------------------

    def _feed_loop(self):
        backoff = self._reconnect_base
        while not self._stopped:
            try:
                transport = self._transport_factory(self.primary_address)
            except NetworkError:
                self._sleep_backoff(backoff)
                backoff = min(self._reconnect_cap, backoff * 2)
                continue
            with self._mutex:
                self._transports.add(transport)
            try:
                transport.send(protocol.REPL_HELLO, {
                    "proto": protocol.PROTOCOL_VERSION,
                    "replica": self.name,
                    "last_lsn": self._resume_lsn(),
                })
                self._m_connects.inc()
                backoff = self._reconnect_base
                self._feed_from(transport)
            except (NetworkError, ProtocolError, OSError):
                pass  # reconnect with backoff; applied state is kept
            finally:
                transport.close()
                with self._mutex:
                    self._transports.discard(transport)
            self._sleep_backoff(backoff)
            backoff = min(self._reconnect_cap, backoff * 2)

    def _sleep_backoff(self, backoff):
        if not self._stopped:
            time.sleep(backoff * (0.5 + self._rng.random()))

    def _resume_lsn(self):
        """Where to resume the feed on a (re)connect.

        Buffered records of uncommitted transactions do not survive the
        disconnect: keeping them while the primary re-streams from
        ``applied_lsn`` would deliver the same change frames twice (an
        in-flight transaction's changes have LSNs above ``applied_lsn``
        but below their COMMIT), double-applying at COMMIT.  Instead
        the buffer is dropped and the resume point backs up to *below
        the oldest buffered frame* — not just ``applied_lsn``, because
        an in-flight transaction's changes can sit below another
        transaction's already-applied COMMIT LSN.  Everything between
        resumes from the wire; records already applied are recognized
        by LSN and skipped (see ``_apply_record``).
        """
        with self._applied_cond:
            resume = self.applied_lsn
            for first in self._pending_first.values():
                resume = min(resume, first - 1)
            self._pending = {}
            self._pending_first = {}
            return resume

    def _feed_from(self, transport):
        pending_state = None
        pending_seed_lsn = None
        while not self._stopped:
            try:
                kind, body = transport.recv(timeout=0.5)
            except NetworkTimeoutError:
                continue  # idle link; re-check _stopped
            if kind == protocol.REPL_SEED:
                message = protocol.unpack_json(kind, body)
                pending_state = _ReplicaState(
                    message["schema"], message["tables"],
                    message.get("text_indexes"),
                )
                pending_seed_lsn = int(message["lsn"])
            elif kind == protocol.REPL_ROWS:
                if pending_state is None:
                    raise ProtocolError("REPL_ROWS outside a seed")
                name, rows = protocol.unpack_repl_rows(
                    body, pending_state.column_orders, Row
                )
                table = pending_state.database.table(name)
                for row in rows:
                    table.load_row(row)
            elif kind == protocol.REPL_SEED_END:
                message = protocol.unpack_json(kind, body)
                if pending_state is None or int(message["lsn"]) != pending_seed_lsn:
                    raise ProtocolError("REPL_SEED_END without matching seed")
                self._install_state(pending_state, pending_seed_lsn)
                transport.send(protocol.REPL_ACK, {"lsn": pending_seed_lsn})
                pending_state = None
                self._m_seeds.inc()
            elif kind == protocol.REPL_FRAME:
                lsn, wal_frame = protocol.unpack_repl_frame(body)
                self._receive_frame(transport, lsn, wal_frame)
            elif kind == protocol.REPL_ERROR:
                message = protocol.unpack_json(kind, body)
                self._degrade(
                    "primary refused: %s" % message.get("message")
                )
                return
            else:
                raise ProtocolError(
                    "unexpected %s frame from primary"
                    % protocol.KIND_NAMES.get(kind, kind)
                )

    def _receive_frame(self, transport, lsn, wal_frame):
        if not self._serving and self._state is None:
            return  # never seeded; wait for the seed
        try:
            decoded = wal_module.decode_frame(wal_frame)
        except RecoveryError as error:
            # Torn or corrupt in flight: refuse it and everything after
            # until the primary re-seeds us from a clean snapshot.
            self._m_crc_failures.inc()
            self._degrade("corrupt shipped frame: %s" % error)
            transport.send(protocol.REPL_ERROR, {
                "code": "RecoveryError", "message": str(error), "lsn": lsn,
            })
            return
        if not self._serving:
            return  # degraded: drop frames until the next seed
        try:
            advanced = self._apply_record(*decoded)
        except (MDMError, KeyError, ValueError) as error:
            self._degrade("cannot apply shipped record: %s" % error)
            transport.send(protocol.REPL_ERROR, {
                "code": type(error).__name__, "message": str(error),
                "lsn": lsn,
            })
            return
        self._m_frames.inc()
        if advanced:
            transport.send(protocol.REPL_ACK, {"lsn": lsn})

    def _apply_record(self, lsn, txn_id, kind, table, row_bytes, old_bytes):
        """Apply one decoded WAL record; True when visibility advanced."""
        state = self._state
        w = wal_module
        if kind == w.BEGIN:
            if txn_id not in self._pending:
                self._pending[txn_id] = []
                self._pending_first[txn_id] = lsn
            return False
        if kind in (w.INSERT, w.UPDATE, w.DELETE):
            self._pending.setdefault(txn_id, []).append(
                (kind, table, row_bytes, old_bytes)
            )
            self._pending_first.setdefault(txn_id, lsn)
            return False
        if kind == w.ABORT:
            self._drop_pending(txn_id)
            return False
        # Everything below advances visibility.  A record at or below
        # the applied horizon was installed already: the feed resumed
        # from below the oldest in-flight change frame (reconnect), or
        # the seed streamed from the primary's replication horizon —
        # either way already-applied commits re-ship interleaved with
        # the in-flight changes we actually need.  Drop its buffer
        # instead of applying twice.
        if lsn <= self.applied_lsn:
            self._drop_pending(txn_id)
            return False
        if kind == w.CHECKPOINT:
            self._advance(lsn)
            return True
        if kind == w.COMMIT:
            changes = self._pending.pop(txn_id, ())
            self._pending_first.pop(txn_id, None)
            for change in changes:
                self._apply_change(state, lsn, *change)
            self._advance(lsn)
            self._m_commits.inc()
            return True
        if kind == w.BATCH_INSERT:
            order = state.column_orders[table]
            (count,) = struct.unpack_from("<I", row_bytes, 0)
            offset = 4
            target = state.database.table(table)
            for _ in range(count):
                row, offset = Row.deserialize(row_bytes, order, offset)
                target.apply_replicated(lsn, "insert", row, None)
            self._advance(lsn)
            self._m_commits.inc()
            return True
        if kind in (w.TEXT_INDEX_CREATE, w.TEXT_INDEX_DROP):
            # Self-committing DDL; the target rides in the table field
            # as "table\x1fcolumn".  Applying keeps the replica's text
            # indexes maintained by the row changes that follow.
            name, _, column = table.partition(w.TEXT_TARGET_SEP)
            target = state.database.table(name)
            if kind == w.TEXT_INDEX_CREATE:
                target.create_text_index(column)
            else:
                target.drop_text_index(column)
            self._advance(lsn)
            self._m_commits.inc()
            return True
        if kind in w.SELF_COMMITTING:
            base = w.BASE_KIND[kind]
            self._apply_change(state, lsn, base, table, row_bytes, old_bytes)
            self._advance(lsn)
            self._m_commits.inc()
            return True
        raise ValueError("unknown WAL record kind %d" % kind)

    def _drop_pending(self, txn_id):
        self._pending.pop(txn_id, None)
        self._pending_first.pop(txn_id, None)

    def _apply_change(self, state, lsn, kind, table_name, row_bytes, old_bytes):
        order = state.column_orders[table_name]
        table = state.database.table(table_name)
        row = old_row = None
        if row_bytes:
            row, _ = Row.deserialize(row_bytes, order)
        if old_bytes:
            old_row, _ = Row.deserialize(old_bytes, order)
        names = {
            wal_module.INSERT: "insert",
            wal_module.UPDATE: "update",
            wal_module.DELETE: "delete",
        }
        table.apply_replicated(lsn, names[kind], row, old_row)

    def _advance(self, lsn):
        with self._applied_cond:
            if self._state is not None:
                self._state.database.transactions._visible_lsn = lsn
            self.applied_lsn = lsn
            self._applied_cond.notify_all()

    def _install_state(self, state, seed_lsn):
        state.database.transactions._visible_lsn = seed_lsn
        with self._applied_cond:
            self._state = state
            self.applied_lsn = seed_lsn
            self._serving = True
            self.last_error = None
            self._pending = {}
            self._pending_first = {}
            self._applied_cond.notify_all()

    def _degrade(self, reason):
        with self._applied_cond:
            self._serving = False
            self.last_error = reason
            self._pending = {}
            self._pending_first = {}
            self._applied_cond.notify_all()

    # -- the retrieve listener (replica <- clients) ------------------------------

    def _accept_loop(self):
        while True:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return
            transport = Transport(sock)
            with self._mutex:
                if self._stopped:
                    transport.close()
                    return
                self._transports.add(transport)
            thread = threading.Thread(
                target=self._serve_reader, args=(transport,),
                name="replica-read-%s" % self.name, daemon=True,
            )
            with self._mutex:
                self._reader_threads.add(thread)
            thread.start()

    def _serve_reader(self, transport):
        # Each connection executes through its own QuelSession (rebuilt
        # per seeded generation): concurrent readers must not race on
        # one session's limits, and one client's replayed ``range of``
        # preamble must not rebind another client's ranges.
        sessions = {}
        try:
            kind, body = transport.recv(timeout=10.0)
            if kind != protocol.HELLO:
                raise ProtocolError("reader must open with HELLO")
            hello = protocol.unpack_json(kind, body)
            if hello.get("proto") != protocol.PROTOCOL_VERSION:
                transport.send(protocol.ERROR, {
                    "seq": None, "code": "ProtocolError", "retryable": False,
                    "message": "protocol version mismatch",
                })
                return
            transport.send(protocol.WELCOME, {
                "proto": protocol.PROTOCOL_VERSION,
                "server": self.name,
                "role": "replica",
                "last_seq": 0,
            })
            while True:
                try:
                    kind, body = transport.recv(timeout=self.idle_timeout)
                except NetworkTimeoutError:
                    return  # idle past the budget: reap the connection
                if kind == protocol.BYE:
                    return
                message = protocol.unpack_json(kind, body)
                seq = message.get("seq")
                try:
                    if kind != protocol.REQUEST or not message.get("read_only"):
                        raise ReadOnlyError(
                            "replica %r serves read-only retrieves only"
                            % self.name
                        )
                    rows, applied = self._execute_read(message, sessions)
                    transport.send(protocol.RESULT, {
                        "seq": seq, "kind": "rows", "value": rows,
                        "duplicate": False, "commit_lsn": applied,
                    })
                except (NetworkError, ProtocolError):
                    raise
                except Exception as error:
                    if isinstance(error, ReplicaLagError):
                        self._m_lag_refusals.inc()
                    transport.send(protocol.ERROR, {
                        "seq": seq,
                        "code": type(error).__name__,
                        "message": str(error),
                        "retryable": isinstance(error, ReplicaLagError),
                    })
        except (NetworkError, ProtocolError, OSError):
            pass
        finally:
            transport.close()
            with self._mutex:
                self._transports.discard(transport)
                self._reader_threads.discard(threading.current_thread())

    def _execute_read(self, message, sessions):
        timeout_s = message.get("timeout_s")
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        state = self._wait_caught_up(int(message.get("min_lsn") or 0), deadline)
        quel = sessions.get(id(state))
        if quel is None:
            # A re-seed swapped the generation: sessions built on the
            # old one are useless (their range declarations point into
            # a discarded schema), so a fresh session starts clean and
            # the client's failover/replay discipline rebuilds ranges.
            sessions.clear()
            quel = QuelSession(state.schema)
            sessions[id(state)] = quel
        transactions = state.database.transactions
        quel.set_limits(
            deadline=deadline, row_budget=message.get("row_budget")
        )
        transactions.pin_snapshot()
        try:
            result = quel.execute(message.get("source", ""))
        finally:
            transactions.unpin_snapshot()
            quel.clear_limits()
        self._m_reads.inc()
        with self._applied_cond:
            applied = self.applied_lsn
        rows = protocol.encode_rows(result) if isinstance(result, list) else []
        return rows, applied

    def _wait_caught_up(self, min_lsn, deadline):
        """The serving state at >= *min_lsn*, or ReplicaLagError.

        The wait is deliberately short (a fraction of the deadline,
        capped): a replica that cannot catch up promptly should refuse
        retryably so the client fails over, not absorb the whole budget.
        """
        limit = time.monotonic() + 0.25
        if deadline is not None:
            limit = min(limit, deadline)
        with self._applied_cond:
            while True:
                if self._serving and self._state is not None \
                        and self.applied_lsn >= min_lsn:
                    return self._state
                remaining = limit - time.monotonic()
                if remaining <= 0:
                    break
                self._applied_cond.wait(remaining)
            raise ReplicaLagError(
                "replica %r is %s (applied LSN %d, need %d)"
                % (
                    self.name,
                    "serving" if self._serving else "not serving",
                    self.applied_lsn, min_lsn,
                )
            )
