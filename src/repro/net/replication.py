"""WAL shipping: the primary side of read-only replication.

The :class:`ReplicationHub` serves each connected replica from the
connection's own thread.  A replica is first *seeded* — a pinned MVCC
snapshot of the schema (as a structural manifest) and every table's
rows, shipped as binary ``REPL_ROWS`` frames so rationals and blobs
survive — and then *streamed*: raw WAL frames, each still wearing its
on-disk CRC, from the seed LSN forward (or earlier, when a transaction
in flight at the seed point has durable change frames below it — see
``_send_seed``).  Only the durable prefix ships
(``stream_frames`` stops at ``flushed_lsn``), so an acknowledged
replica is never ahead of the primary's own durability.

Health gating is the quarantine state machine from DESIGN.md §4j: a
replica that falls further behind than the lag budget, reports a CRC
failure, or needs history the primary has truncated (checkpoint moved
``base_lsn`` past it) is quarantined and re-seeded from a fresh
snapshot on the same connection.  While re-seeding, the replica itself
refuses reads with :class:`~repro.errors.ReplicaLagError`, so clients
fail over; the system degrades to primary-only serving rather than
serving stale or torn data.
"""

import threading
import time

from repro.errors import (
    NetworkError,
    NetworkTimeoutError,
    ProtocolError,
    ReplicationError,
)
from repro.net import protocol


def schema_manifest(schema):
    """A structural, JSON-safe description of *schema* for seeding.

    Entity-valued attributes serialize as their target type's name
    (exactly how DDL spells them), so the replica can replay the
    definitions with the same ``define_*`` calls the primary made.
    """
    entities = [
        {
            "name": name,
            "attrs": [
                [a.name, a.domain_name()]
                for a in schema.entity_types[name].attributes
            ],
        }
        for name in sorted(schema.entity_types)
    ]
    relationships = [
        {
            "name": name,
            "roles": [[role, type_name] for role, type_name in rel.roles],
            "attrs": [[a.name, a.domain_name()] for a in rel.attributes],
            "many_role": rel.many_role,
        }
        for name, rel in sorted(schema.relationships.items())
    ]
    orderings = [
        {
            "name": name,
            "children": list(ordering.child_types),
            "parent": ordering.parent_type,
        }
        for name, ordering in sorted(schema.orderings.items())
    ]
    return {
        "entities": entities,
        "relationships": relationships,
        "orderings": orderings,
    }


class ReplicaPeer:
    """One replica's shipping state, as the primary sees it."""

    def __init__(self, name):
        self.name = name
        self.state = "connected"  # seeding | streaming | quarantined | disconnected
        self.shipped_lsn = 0
        self.acked_lsn = 0
        self.lag = 0
        self.seeds = 0
        self.quarantines = 0
        self.last_error = None

    def as_dict(self):
        return {
            "name": self.name,
            "state": self.state,
            "shipped_lsn": self.shipped_lsn,
            "acked_lsn": self.acked_lsn,
            "lag": self.lag,
            "seeds": self.seeds,
            "quarantines": self.quarantines,
            "last_error": self.last_error,
        }


class ReplicationHub:
    """Seeds and streams the WAL to every connected replica."""

    def __init__(self, mdm, lag_budget=64, seed_chunk_rows=512,
                 metrics=None):
        self.mdm = mdm
        self.lag_budget = lag_budget
        self.seed_chunk_rows = seed_chunk_rows
        self._mutex = threading.Lock()
        self._peers = {}
        registry = metrics if metrics is not None else mdm.database.metrics
        self._m_frames = registry.counter("repl.frames_shipped")
        self._m_seeds = registry.counter("repl.seeds_sent")
        self._m_quarantines = registry.counter("repl.quarantines")
        self._m_acks = registry.counter("repl.acks")
        self._m_connected = registry.gauge("repl.replicas_connected")
        self._m_lag = registry.gauge("repl.lag_lsn")

    def status(self):
        with self._mutex:
            return [peer.as_dict() for peer in self._peers.values()]

    # -- one replica's serving loop --------------------------------------------

    def serve(self, transport, hello):
        """Serve one replica connection until it drops (blocking)."""
        name = str(hello.get("replica", "replica"))
        wal = self.mdm.database._log
        if wal is None:
            transport.send(protocol.REPL_ERROR, {
                "code": "ReplicationError", "lsn": 0,
                "message": "primary is in-memory: nothing to ship",
            })
            return
        peer = ReplicaPeer(name)
        with self._mutex:
            self._peers[name] = peer
        self._m_connected.inc()
        try:
            last_lsn = int(hello.get("last_lsn", 0))
            # A replica resuming within retained history streams from
            # where it left off; anything else (fresh, or behind a
            # checkpoint truncation) must be seeded.
            need_seed = last_lsn <= 0 or last_lsn < wal.base_lsn
            next_lsn = last_lsn + 1
            if not need_seed:
                peer.acked_lsn = last_lsn
                peer.state = "streaming"
            while True:
                if need_seed:
                    next_lsn = self._send_seed(transport, peer)
                    need_seed = False
                try:
                    frames = wal.stream_frames(next_lsn)
                except ReplicationError as error:
                    self._quarantine(peer, str(error))
                    need_seed = True
                    continue
                for lsn, frame in frames:
                    transport.send_raw(protocol.pack_repl_frame(lsn, frame))
                    peer.shipped_lsn = lsn
                    self._m_frames.inc()
                if frames:
                    next_lsn = frames[-1][0] + 1
                if self._drain_acks(transport, peer):
                    need_seed = True
                    continue
                lag = max(0, wal.flushed_lsn - peer.acked_lsn)
                peer.lag = lag
                self._update_lag_gauge()
                if lag > self.lag_budget:
                    self._quarantine(
                        peer, "lag %d exceeds budget %d" % (lag, self.lag_budget)
                    )
                    need_seed = True
                    continue
                # Caught up: park until new records become durable.
                wal.wait_for_flushed(next_lsn, timeout=0.05)
        except (NetworkError, ProtocolError, OSError):
            peer.state = "disconnected"
        finally:
            self._m_connected.dec()
            self._update_lag_gauge()

    def _drain_acks(self, transport, peer):
        """Collect pending REPL_ACK/REPL_ERROR frames; True => re-seed."""
        timeout = 0.02
        while True:
            try:
                kind, body = transport.recv(timeout=timeout)
            except NetworkTimeoutError:
                return False
            timeout = 0.0
            message = protocol.unpack_json(kind, body)
            if kind == protocol.REPL_ACK:
                peer.acked_lsn = max(peer.acked_lsn, int(message["lsn"]))
                self._m_acks.inc()
            elif kind == protocol.REPL_ERROR:
                # The replica refused a frame (CRC failure, unknown
                # table after DDL, apply error): its state is suspect.
                self._quarantine(
                    peer,
                    "%s: %s" % (message.get("code"), message.get("message")),
                )
                return True
            else:
                raise ProtocolError(
                    "unexpected %s frame from replica"
                    % protocol.KIND_NAMES.get(kind, kind)
                )

    def _quarantine(self, peer, reason):
        peer.state = "quarantined"
        peer.last_error = reason
        peer.quarantines += 1
        self._m_quarantines.inc()
        # Brief pause so a persistently broken replica re-seeds at a
        # bounded rate instead of spinning the connection thread.
        time.sleep(0.02)

    def _update_lag_gauge(self):
        with self._mutex:
            lags = [
                p.lag for p in self._peers.values() if p.state == "streaming"
            ]
        self._m_lag.set(max(lags) if lags else 0)

    # -- seeding ---------------------------------------------------------------

    def _send_seed(self, transport, peer):
        """Ship a full snapshot; returns the LSN to stream from next.

        The stream resumes from ``min(horizon, seed_lsn + 1)``, not
        ``seed_lsn + 1``: a transaction in flight at the seed point can
        have change frames already durable (a group-commit rider fsync
        covers frames appended so far) at LSNs *below* the snapshot
        point while its COMMIT lands above it.  Those changes are not
        in the snapshot (uncommitted) and would otherwise never ship —
        the replica would apply a partial transaction at COMMIT and
        silently diverge.  The horizon is read *before* pinning the
        snapshot, so any transaction journaling its first frame later
        gets an LSN past it; re-shipped records of transactions already
        inside the snapshot carry commit LSNs <= seed_lsn, which the
        replica recognizes as applied and skips.
        """
        peer.state = "seeding"
        database = self.mdm.database
        transactions = database.transactions
        horizon = database._log.replication_horizon()
        seed_lsn = transactions.pin_snapshot()
        try:
            tables = [
                {
                    "name": name,
                    "columns": [
                        [c.name, c.domain.value]
                        for c in database.table(name).schema.columns
                    ],
                }
                for name in database.table_names()
            ]
            transport.send(protocol.REPL_SEED, {
                "lsn": seed_lsn,
                "schema": schema_manifest(self.mdm.schema),
                "tables": tables,
                # Text indexes created before the seed point never
                # re-ship as stream frames (their CREATE records sit at
                # or below seed_lsn, which the replica skips), so the
                # catalog itself is part of the snapshot.
                "text_indexes": database.text_index_catalog(),
            })
            for name in database.table_names():
                table = database.table(name)
                order = table.schema.column_names()
                rows = list(table)  # snapshot-visible rows only
                for start in range(0, len(rows), self.seed_chunk_rows):
                    chunk = rows[start:start + self.seed_chunk_rows]
                    transport.send_raw(
                        protocol.pack_repl_rows(name, chunk, order)
                    )
            transport.send(protocol.REPL_SEED_END, {"lsn": seed_lsn})
        finally:
            transactions.unpin_snapshot()
        self._m_seeds.inc()
        peer.seeds += 1
        # Optimistically treat the seed as acked for lag accounting; the
        # replica's own REPL_ACK confirms (or quarantine catches it).
        peer.acked_lsn = max(peer.acked_lsn, seed_lsn)
        peer.shipped_lsn = max(peer.shipped_lsn, seed_lsn)
        peer.state = "streaming"
        return min(horizon, seed_lsn + 1)
