"""The MDM network server: thread-per-connection serving over the wire.

Remote clients get exactly the service-layer guarantees local ones do —
every ``REQUEST`` runs through :meth:`MdmSession.run`, so admission
control, wait-die retry, and deadline propagation apply unchanged; the
client's remaining time budget travels in the frame and bounds lock
waits and QUEL execution on the server, surfacing as a structured
``ERROR`` frame instead of a hung socket.

Exactly-once writes survive a server crash between WAL flush and ack:
each write request carries a per-client sequence number, and the server
records ``(client, seq, result)`` in the ``_net_requests`` table *inside
the same transaction* as the statement's effects.  A retry of an already
-committed seq finds the dedup row and returns duplicate-success without
re-running the statement; the ``WELCOME`` handshake reports the last
committed seq per client so a reconnecting client can resolve its
in-flight write the same way.

Replica connections (``REPL_HELLO``) are handed to the
:class:`~repro.net.replication.ReplicationHub`, which seeds and then
streams WAL frames (see that module for the quarantine state machine).
"""

import socket
import threading

from repro.errors import (
    MDMError,
    NetworkError,
    NetworkTimeoutError,
    OverloadError,
    ProtocolError,
    ShutdownError,
)
from repro.mdm.shell import MdmShell
from repro.net import protocol
from repro.net.replication import ReplicationHub
from repro.net.transport import Transport
from repro.storage.values import Domain

#: Durable per-client write-dedup ledger; one row per client.
DEDUP_TABLE = "_net_requests"

#: Errors a client may transparently retry (transient server states).
_RETRYABLE = (OverloadError, ShutdownError, NetworkTimeoutError)


class MdmServer:
    """Serves one MusicDataManager to remote clients and replicas."""

    def __init__(self, mdm, host="127.0.0.1", port=0, name="primary",
                 lag_budget=64, session_options=None, idle_timeout=120.0):
        self.mdm = mdm
        self.name = name
        self.host = host
        self.port = port
        self.address = None  # set by start()
        self._session_options = dict(session_options or {})
        #: Seconds a client session may sit idle between frames before
        #: its connection (and thread) is reaped; clients reconnect
        #: transparently on their next call.
        self.idle_timeout = idle_timeout
        self._listener = None
        self._threads = []
        self._conn_threads = set()
        self._transports = set()
        self._mutex = threading.Lock()
        self._stopping = False
        #: Test hook: called as ``on_pre_ack(client_id, seq)`` after a
        #: write commits durably but before its RESULT frame is sent.
        #: Raising here drops the connection un-acked — the crash window
        #: the dedup ledger exists for.
        self.on_pre_ack = None
        registry = mdm.database.metrics
        self._m_frames_in = registry.counter("net.frames_in")
        self._m_frames_out = registry.counter("net.frames_out")
        self._m_requests = registry.counter("net.requests")
        self._m_errors = registry.counter("net.errors")
        self._m_shed = registry.counter("net.shed")
        self._m_duplicates = registry.counter("net.duplicate_acks")
        self._m_connections = registry.gauge("net.connections")
        self.replication = ReplicationHub(
            mdm, lag_budget=lag_budget, metrics=registry
        )
        self._dedup = mdm.database.create_or_bind_table(
            DEDUP_TABLE,
            [("client", Domain.STRING), ("seq", Domain.INTEGER),
             ("result", Domain.INTEGER)],
        )
        self._dedup.create_index("client")

    # -- lifecycle -------------------------------------------------------------

    def start(self):
        """Bind, listen, and start accepting; returns ``(host, port)``."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(32)
        self._listener = listener
        self.address = listener.getsockname()
        thread = threading.Thread(
            target=self._accept_loop, name="mdm-server-accept", daemon=True
        )
        thread.start()
        self._threads.append(thread)
        return self.address

    def stop(self, drain_timeout=2.0):
        """Stop serving: drain in-flight requests, then tear down."""
        with self._mutex:
            if self._stopping:
                return
            self._stopping = True
        self.mdm.remote.drain(drain_timeout)
        if self._listener is not None:
            try:
                # shutdown() wakes the thread blocked in accept();
                # close() alone leaves the fd (and port) held by it.
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._mutex:
            transports = list(self._transports)
        for transport in transports:
            transport.close()
        with self._mutex:
            conn_threads = list(self._conn_threads)
        for thread in self._threads + conn_threads:
            thread.join(timeout=2.0)

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info):
        self.stop()
        return False

    # -- accepting -------------------------------------------------------------

    def _accept_loop(self):
        while True:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            transport = Transport(sock)
            with self._mutex:
                if self._stopping:
                    transport.close()
                    return
                self._transports.add(transport)
            thread = threading.Thread(
                target=self._serve_connection, args=(transport,),
                name="mdm-server-conn", daemon=True,
            )
            with self._mutex:
                self._conn_threads.add(thread)
            thread.start()

    def _serve_connection(self, transport):
        self._m_connections.inc()
        try:
            kind, body = transport.recv(timeout=10.0)
            self._m_frames_in.inc()
            if kind == protocol.REPL_HELLO:
                hello = protocol.unpack_json(kind, body)
                self._check_version(transport, hello)
                self.replication.serve(transport, hello)
            elif kind == protocol.HELLO:
                hello = protocol.unpack_json(kind, body)
                self._check_version(transport, hello)
                self._serve_client(transport, hello)
            else:
                raise ProtocolError(
                    "connection must open with HELLO or REPL_HELLO, got %s"
                    % protocol.KIND_NAMES.get(kind, kind)
                )
        except (NetworkError, ProtocolError, OSError):
            pass  # torn/garbage connections die quietly; client retries
        finally:
            transport.close()
            with self._mutex:
                self._transports.discard(transport)
                self._conn_threads.discard(threading.current_thread())
            self._m_connections.dec()

    def _check_version(self, transport, hello):
        if hello.get("proto") != protocol.PROTOCOL_VERSION:
            self._send(transport, protocol.ERROR, {
                "seq": None, "code": "ProtocolError", "retryable": False,
                "message": "protocol version %s unsupported (server speaks %d)"
                           % (hello.get("proto"), protocol.PROTOCOL_VERSION),
            })
            raise ProtocolError("client protocol version mismatch")

    # -- the client request loop -----------------------------------------------

    def _serve_client(self, transport, hello):
        client_id = str(hello.get("client", "anonymous"))
        self._send(transport, protocol.WELCOME, {
            "proto": protocol.PROTOCOL_VERSION,
            "server": self.name,
            "role": "primary",
            "last_seq": self._last_committed_seq(client_id),
        })
        session = self.mdm.connect(
            name="net:%s" % client_id, **self._session_options
        )
        shell = MdmShell(self.mdm, server=self)
        while True:
            try:
                kind, body = transport.recv(timeout=self.idle_timeout)
            except NetworkTimeoutError:
                return  # idle past the budget: reap the connection
            self._m_frames_in.inc()
            if kind == protocol.BYE:
                return
            message = protocol.unpack_json(kind, body)
            seq = message.get("seq")
            try:
                with self.mdm.remote.track("request from %r" % client_id):
                    if kind == protocol.REQUEST:
                        self._handle_request(
                            transport, client_id, session, message
                        )
                    elif kind == protocol.META:
                        output = shell.handle_line(message.get("command", ""))
                        self._send(transport, protocol.RESULT, {
                            "seq": seq, "kind": "text", "value": output,
                            "duplicate": False, "commit_lsn": None,
                        })
                    else:
                        raise ProtocolError(
                            "unexpected frame kind %s mid-session"
                            % protocol.KIND_NAMES.get(kind, kind)
                        )
            except (NetworkError, ProtocolError):
                raise  # the connection itself is gone/poisoned
            except _ConnectionDropped:
                raise NetworkError("connection dropped by pre-ack hook")
            except Exception as error:  # structured refusal, keep serving
                self._m_errors.inc()
                if isinstance(error, OverloadError):
                    self._m_shed.inc()
                self._send(transport, protocol.ERROR, {
                    "seq": seq,
                    "code": type(error).__name__,
                    "message": str(error),
                    "retryable": isinstance(error, _RETRYABLE),
                })

    def _handle_request(self, transport, client_id, session, message):
        self._m_requests.inc()
        seq = message.get("seq")
        source = message.get("source", "")
        timeout_s = message.get("timeout_s")
        row_budget = message.get("row_budget")
        if message.get("read_only"):
            rows = session.run(
                lambda m: m.retrieve(source),
                timeout=timeout_s, row_budget=row_budget, read_only=True,
            )
            # Non-retrieve read statements (range declarations) yield None.
            encoded = (
                protocol.encode_rows(rows) if isinstance(rows, list) else []
            )
            self._send(transport, protocol.RESULT, {
                "seq": seq, "kind": "rows",
                "value": encoded,
                "duplicate": False, "commit_lsn": self._durable_lsn(),
            })
            return
        if source.lstrip().lower().startswith("define"):
            # DDL is self-committing (table creation is not journaled),
            # so it bypasses the dedup transaction; a replayed define
            # fails loudly with SchemaError rather than double-applying.
            self.mdm.execute(source)
            self._send(transport, protocol.RESULT, {
                "seq": seq, "kind": "text", "value": "ok",
                "duplicate": False, "commit_lsn": self._durable_lsn(),
            })
            return
        outcome = self._run_deduped_write(
            session, client_id, seq, source, timeout_s, row_budget
        )
        if outcome["duplicate"]:
            self._m_duplicates.inc()
        elif self.on_pre_ack is not None:
            try:
                self.on_pre_ack(client_id, seq)
            except Exception:
                # Simulated crash between durable commit and ack: the
                # effects are committed, the client never hears back.
                raise _ConnectionDropped()
        self._send(transport, protocol.RESULT, {
            "seq": seq, "kind": "count", "value": outcome["value"],
            "duplicate": outcome["duplicate"],
            "commit_lsn": self._durable_lsn(),
        })

    def _run_deduped_write(self, session, client_id, seq, source,
                           timeout_s, row_budget):
        """Run one write exactly-once under the per-client seq ledger."""
        outcome = {}

        def txn(m):
            ledger = m.database.write_table(DEDUP_TABLE)
            prior = ledger.select_eq("client", client_id)
            row = prior[0] if prior else None
            if seq is not None and row is not None and row["seq"] >= seq:
                outcome["duplicate"] = True
                outcome["value"] = row["result"]
                return
            result = m.execute(source)
            count = result if isinstance(result, int) else 0
            if seq is not None:
                if row is not None:
                    ledger.update(row.rowid, {"seq": seq, "result": count})
                else:
                    ledger.insert(
                        {"client": client_id, "seq": seq, "result": count}
                    )
            outcome["duplicate"] = False
            outcome["value"] = count

        session.run(txn, timeout=timeout_s, row_budget=row_budget)
        return outcome

    def _last_committed_seq(self, client_id):
        """The client's highest committed seq (0 = none), snapshot-read."""
        transactions = self.mdm.database.transactions
        transactions.pin_snapshot()
        try:
            rows = self._dedup.select_eq("client", client_id)
            return rows[0]["seq"] if rows else 0
        finally:
            transactions.unpin_snapshot()

    def _durable_lsn(self):
        """The durable horizon to hand clients for read-your-writes."""
        log = self.mdm.database._log
        if log is not None:
            return log.flushed_lsn
        return self.mdm.database.transactions.current_snapshot()

    # -- plumbing --------------------------------------------------------------

    def _send(self, transport, kind, obj):
        transport.send(kind, obj)
        self._m_frames_out.inc()

    def status(self):
        """One dict for ``\\replicas`` and tests."""
        with self._mutex:
            connections = len(self._transports)
        return {
            "name": self.name,
            "address": self.address,
            "connections": connections,
            "replicas": self.replication.status(),
        }


class _ConnectionDropped(Exception):
    """Internal: the pre-ack crash hook fired; tear down without acking."""
