#!/bin/sh
# Concurrency stress target: hammer one MDM with seeded multi-client
# workloads through the session layer (wait-die retries, deadlines,
# admission control) and verify the exactly-once oracle
# (tests/stress/harness.py).
#
# Default: the fast matrix (8 seeds x 4 threads, the deterministic
# failure-mode schedules, and the service-layer unit tests) -- a few
# seconds, always on in the main test run too.  Pass --full for the
# extended matrix (16 extra seeds, 6 threads, longer op sequences).
set -eu
cd "$(dirname "$0")/.."

MARKER="stress and not stress_slow"
if [ "${1:-}" = "--full" ]; then
    MARKER="stress"
    shift
fi
PYTHONPATH=src python -m pytest tests/stress tests/mdm/test_service.py -q -m "$MARKER or not stress" "$@"
