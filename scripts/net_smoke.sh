#!/bin/sh
# Network-serving smoke: the full tests/net battery *including* the
# net_slow wide fault sweep that the default pytest run deselects --
# every disconnect/torn-send position in the client's frame schedule,
# plus compound disconnect+torn+stall+partition schedules, each checked
# against the exactly-once oracle (acked writes committed exactly once,
# nothing committed twice, in-doubt writes resolved by ledger dedup).
#
# Runs in well under a minute; wired into scripts/bench_smoke.sh.
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH=src python -m pytest tests/net -q -m "net or net_slow" "$@"
