#!/bin/sh
# Crash-consistency smoke target: replay the seeded workload and kill
# the simulated machine at every durability barrier (fsync), then
# verify recovery against the oracle (tests/crash/oracle.py).
#
# Default: the fast matrix (8 seeds, >=200 crash schedules, plus the
# WAL-checksum and fault-layer unit tests) -- a few seconds, always on
# in the main test run too.  Pass --full for the extended matrix
# (16 extra seeds and per-write crash granularity).
set -eu
cd "$(dirname "$0")/.."

MARKER="crash and not crash_slow"
if [ "${1:-}" = "--full" ]; then
    MARKER="crash"
    shift
fi
PYTHONPATH=src python -m pytest tests/crash -q -m "$MARKER" "$@"
