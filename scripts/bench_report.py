#!/usr/bin/env python
"""Benchmark report: measure QUEL, storage, and net workloads, emit BENCH JSON.

Runs a self-contained ``time.perf_counter`` harness (no pytest-benchmark
dependency) over four workload suites and writes ``BENCH_quel.json``,
``BENCH_storage.json``, ``BENCH_text.json`` (trigram-indexed catalog
search over a 120k-row library corpus vs. unindexed scans), and
``BENCH_net.json`` (a multi-process client swarm against the network
server, primary-only vs. two WAL-shipped replicas: per-retrieve p50/p99
latency and shed rate) at the repository root.  Each file carries
per-workload timing statistics plus the metrics-registry snapshot taken
after the run, so a report shows both "how fast" and "how much work"
(page I/O, WAL appends, lock waits, statements).

Usage::

    PYTHONPATH=src python scripts/bench_report.py           # full run
    PYTHONPATH=src python scripts/bench_report.py --check   # CI smoke
    PYTHONPATH=src python scripts/bench_report.py \\
        --compare BENCH_quel.json --compare BENCH_storage.json

``--check`` runs every workload once with tiny parameters and validates
the report shape without writing any file -- wired into
``scripts/bench_smoke.sh`` so a broken workload fails CI fast.

``--compare`` re-runs the suites and exits nonzero when any workload's
median (p50) regresses more than 25% against the named baseline report,
guarding the committed BENCH_*.json numbers against perf regressions.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core.schema import Schema
from repro.obs.export import write_json
from repro.quel.executor import QuelSession
from repro.storage.database import Database
from repro.storage.pager import Pager
from repro.storage.wal import WriteAheadLog


def _time_workload(fn, rounds):
    """Run ``fn()`` *rounds* times; returns timing statistics (seconds)."""
    samples = []
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return _stats_from_samples(samples)


# -- QUEL workloads -------------------------------------------------------------


def _populated_schema(chords, notes_per_chord):
    schema = Schema("bench")
    schema.define_entity("CHORD", [("n", "integer")])
    schema.define_entity(
        "NOTE", [("n", "integer"), ("pitch", "integer"), ("label", "string")]
    )
    ordering = schema.define_ordering("o", ["NOTE"], under="CHORD")
    for chord_index in range(chords):
        chord = schema.entity_type("CHORD").create(n=chord_index)
        for note_index in range(notes_per_chord):
            note = schema.entity_type("NOTE").create(
                n=chord_index * notes_per_chord + note_index,
                pitch=40 + (chord_index + note_index) % 48,
                label="n%d" % note_index,
            )
            ordering.append(chord, note)
    return schema


def quel_report(rounds, chords=40, notes_per_chord=10):
    schema = _populated_schema(chords, notes_per_chord)
    session = QuelSession(schema)
    session.execute("range of n is NOTE")
    session.execute("range of c is CHORD")
    target = chords * notes_per_chord // 2
    statements = {
        "indexed_equality": "retrieve (n.pitch) where n.n = %d" % target,
        "filtered_scan": "retrieve (n.n) where n.pitch > 80",
        "two_variable_join": (
            "range of a, b is NOTE\n"
            "retrieve (a.n) where a.pitch = b.pitch + 1 and b.n = %d" % target
        ),
        "under_query": (
            "retrieve (n.n) where n under c in o and c.n = %d sort by n.n"
            % (chords // 2)
        ),
        "aggregate": "retrieve (total = count(n.n), top = max(n.pitch))",
        "explain_analyze": "explain analyze retrieve (n.pitch) where n.n = %d"
        % target,
    }
    workloads = {}
    for name, source in sorted(statements.items()):
        workloads[name] = _time_workload(lambda s=source: session.execute(s), rounds)

    # Repeated-statement scenario: the same source text executed over and
    # over, the compile-and-cache layer's home turf.  The compiled session
    # parses and compiles once (statement + plan caches), the ablated
    # session re-parses and walks the AST per row on every execution.
    repeated = (
        "retrieve (a = n.pitch * 2 + 1, b = n.n - 3, c = n.label) "
        "where n.n = %d and n.pitch > 0" % target
    )
    session.execute(repeated)  # warm: adaptive indexes settle the epoch
    session.execute(repeated)
    workloads["repeated_statement"] = _time_workload(
        lambda: session.execute(repeated), rounds
    )
    interpreted = QuelSession(schema, use_compiled=False)
    interpreted.execute("range of n is NOTE")
    interpreted.execute(repeated)  # same warm-up, fairness
    interpreted.execute(repeated)
    workloads["repeated_statement_interpreted"] = _time_workload(
        lambda: interpreted.execute(repeated), rounds
    )
    return {
        "benchmark": "quel",
        "dataset": {"chords": chords, "notes_per_chord": notes_per_chord},
        "workloads": workloads,
        "metrics": session.metrics.snapshot(),
    }


# -- text-search workloads ------------------------------------------------------


def _rows_visited(session, statement):
    """Run ``explain analyze`` on *statement*; returns the rows-visited
    count the executor reports (None if the plan did not carry one)."""
    visited = None
    for row in session.execute("explain analyze " + statement):
        text = row.get("plan", "")
        if text.startswith("rows visited:"):
            visited = int(text.split(":")[1])
    return visited


def _index_stats(index):
    """The dataset entries describing a trigram index's footprint."""
    entries = index.posting_entries()
    return {
        "index_entries": len(index),
        "index_grams": index.gram_count(),
        "index_posting_entries": entries,
        "index_bytes": index.approx_bytes(),
        "index_bytes_per_entry": index.approx_bytes() / max(1, entries),
    }


def text_report(rounds, row_count=120_000, seed=7, scale_rows=None):
    """The catalog-search suite: trigram-indexed text queries vs scans.

    Loads the deterministic library corpus (``repro.fixtures.corpus``),
    builds a trigram index over the title column, and times the same
    ``matches``/``similar_to`` statements through the index and through
    an ablated no-index session.  The report carries the p50 speedup
    and the rows-visited count from ``explain analyze`` so the "index
    prunes the heap" claim is checkable from the JSON alone.

    The top-k workloads time the streaming ``limit N`` ranked path
    against the same statement on a ``use_topk=False`` session (the
    materialize-then-sort path it replaced); *scale_rows* additionally
    loads a second catalog of that size and re-times the limit-bearing
    statements there, so the report can show that first-N retrieval
    cost stays flat as the corpus grows ~8x.  Both claims are hard
    ``gates`` entries: ``--compare`` (and any full run) fails when the
    top-k speedup drops below 10x or the 1M/120k search ratio rises
    above 5x.
    """
    from repro.fixtures.corpus import load_catalog

    schema = Schema("bench-text")
    entity = load_catalog(schema, row_count, seed=seed)
    schema.database.create_text_index(entity.table.name, "title")
    session = QuelSession(schema)
    session.execute("range of t is TRACK")
    scan_session = QuelSession(schema, use_indexes=False)
    scan_session.execute("range of t is TRACK")
    sort_session = QuelSession(schema, use_topk=False)
    sort_session.execute("range of t is TRACK")

    match = 'retrieve (t.title) where matches(t.title, "prelude no. 7")'
    similar = (
        'retrieve (t.title) where '
        'similar_to(t.title, "nocturne in e flat major", 0.55)'
    )
    ranked = (
        'retrieve (t.title, score = similarity(t.title, "prelude no. 7")) '
        'where matches(t.title, "prelude no. 7") '
        'sort by similarity(t.title, "prelude no. 7") descending'
    )
    # The top-k showcase: a broad gate (every "prelude" row is a
    # candidate) ranked by similarity, keeping only the 10 best.  The
    # streaming operator prunes via the score bound; the use_topk=False
    # session scores and sorts every candidate -- PR 9's path.
    topk = (
        'retrieve (t.title, score = similarity(t.title, "prelude no. 7")) '
        'where matches(t.title, "prelude") '
        'sort by similarity(t.title, "prelude no. 7") descending limit 10'
    )
    topk_search = match + " limit 100"
    # Scans walk the whole heap per round; fewer rounds keep the suite
    # affordable without touching the p50's meaning.
    scan_rounds = max(2, rounds // 6)
    workloads = {
        "catalog_search": _time_workload(
            lambda: session.execute(match), rounds
        ),
        "catalog_search_scan": _time_workload(
            lambda: scan_session.execute(match), scan_rounds
        ),
        "catalog_similar": _time_workload(
            lambda: session.execute(similar), rounds
        ),
        "catalog_similar_scan": _time_workload(
            lambda: scan_session.execute(similar), scan_rounds
        ),
        "catalog_ranked": _time_workload(
            lambda: session.execute(ranked), rounds
        ),
        "catalog_ranked_topk": _time_workload(
            lambda: session.execute(topk), rounds
        ),
        "catalog_ranked_topk_full": _time_workload(
            lambda: sort_session.execute(topk), scan_rounds
        ),
        "catalog_topk_search": _time_workload(
            lambda: session.execute(topk_search), rounds
        ),
    }

    index = entity.table.text_index_for("title")
    dataset = {"rows": row_count, "seed": seed}
    dataset.update(_index_stats(index))
    dataset["rows_visited_indexed"] = _rows_visited(session, match)
    dataset["rows_visited_topk"] = _rows_visited(session, topk)
    speedup = {
        "catalog_search_p50": (
            workloads["catalog_search_scan"]["p50_s"]
            / workloads["catalog_search"]["p50_s"]
        ),
        "catalog_similar_p50": (
            workloads["catalog_similar_scan"]["p50_s"]
            / workloads["catalog_similar"]["p50_s"]
        ),
        "catalog_ranked_topk_p50": (
            workloads["catalog_ranked_topk_full"]["p50_s"]
            / workloads["catalog_ranked_topk"]["p50_s"]
        ),
    }

    if scale_rows:
        scale_schema = Schema("bench-text-scale")
        scale_entity = load_catalog(scale_schema, scale_rows, seed=seed)
        scale_schema.database.create_text_index(
            scale_entity.table.name, "title"
        )
        scale_session = QuelSession(scale_schema)
        scale_session.execute("range of t is TRACK")
        workloads["catalog_scale_search"] = _time_workload(
            lambda: scale_session.execute(topk_search), rounds
        )
        workloads["catalog_scale_ranked_topk"] = _time_workload(
            lambda: scale_session.execute(topk), scan_rounds
        )
        scale_dataset = {"rows": scale_rows, "seed": seed}
        scale_dataset.update(_index_stats(
            scale_entity.table.text_index_for("title")
        ))
        dataset["scale"] = scale_dataset

    report = {
        "benchmark": "text",
        "dataset": dataset,
        "speedup": speedup,
        # The limit-bearing workloads finish in a couple of ms; widen
        # the absolute slack so the regression gate flags real slowdowns
        # rather than single-core scheduler noise.
        "compare": {"min_delta_s": 0.002},
        "workloads": workloads,
        "metrics": session.metrics.snapshot(),
    }
    # Hard perf gates, only meaningful at the full corpus size (tiny
    # --check corpora leave nothing for the index to prune).
    if row_count >= 120_000:
        gates = {
            "catalog_ranked_topk_speedup": {
                "value": speedup["catalog_ranked_topk_p50"], "min": 10.0,
            },
        }
        if scale_rows:
            gates["catalog_scale_search_ratio"] = {
                "value": (
                    workloads["catalog_scale_search"]["p50_s"]
                    / workloads["catalog_topk_search"]["p50_s"]
                ),
                "max": 5.0,
            }
        report["gates"] = gates
    return report


# -- storage workloads ----------------------------------------------------------


def storage_report(rounds, row_count=200):
    tempdir = tempfile.mkdtemp(prefix="bench_storage_")
    try:
        workloads = {}

        # Table insert + indexed select through a durable database.
        database = Database(os.path.join(tempdir, "db"))
        table = database.create_table(
            "items", [("k", "integer"), ("v", "string")]
        )
        table.create_index("k")
        counter = [0]

        def insert_rows():
            base = counter[0]
            counter[0] += row_count
            for offset in range(row_count):
                table.insert({"k": base + offset, "v": "value-%d" % offset})

        workloads["table_insert"] = _time_workload(insert_rows, rounds)
        workloads["table_select_eq"] = _time_workload(
            lambda: table.select_eq("k", row_count // 2), rounds
        )

        # COPY-style bulk load: one BATCH_INSERT frame + one group-commit
        # flush per batch instead of a frame + fsync per row.
        bulk = database.create_table(
            "bulk", [("k", "integer"), ("v", "string")]
        )
        bulk.create_index("k")

        def bulk_ingest():
            base = counter[0]
            counter[0] += row_count
            database.bulk_ingest(
                "bulk",
                [
                    {"k": base + offset, "v": "value-%d" % offset}
                    for offset in range(row_count)
                ],
            )

        workloads["bulk_ingest"] = _time_workload(bulk_ingest, rounds)

        # Group commit under contention: 8 threads auto-commit inserts
        # into their own tables (so strict 2PL does not serialize them)
        # and their flushes coalesce -- wal.commits_per_fsync in the
        # metrics snapshot shows the amortization.
        conc_tables = [
            database.create_table("conc%d" % i, [("k", "integer")])
            for i in range(8)
        ]
        per_thread = max(1, row_count // 40)

        def concurrent_insert():
            def hammer(tab, base):
                for offset in range(per_thread):
                    tab.insert({"k": base + offset})

            base = counter[0]
            counter[0] += per_thread
            threads = [
                threading.Thread(target=hammer, args=(tab, base))
                for tab in conc_tables
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        workloads["concurrent_insert"] = _time_workload(concurrent_insert, rounds)

        # MVCC snapshot reads under write pressure: one writer thread
        # auto-commits updates while 4 scan threads each run pinned
        # snapshot scans.  Timed from the readers' side -- before
        # snapshot reads, this schedule serialized on the table lock.
        mixed = database.create_table(
            "mixed", [("k", "integer"), ("v", "integer")]
        )
        mixed_rows = [mixed.insert({"k": i, "v": 0}) for i in range(row_count)]
        transactions = database.transactions

        def mixed_readers_writers():
            stop = threading.Event()

            def writer():
                i = 0
                while not stop.is_set():
                    mixed.update(mixed_rows[i % len(mixed_rows)].rowid,
                                 {"v": i})
                    i += 1

            def reader():
                for _ in range(3):
                    transactions.pin_snapshot()
                    try:
                        sum(row["v"] for row in mixed)
                    finally:
                        transactions.unpin_snapshot()

            writer_thread = threading.Thread(target=writer)
            readers = [threading.Thread(target=reader) for _ in range(4)]
            writer_thread.start()
            for thread in readers:
                thread.start()
            for thread in readers:
                thread.join()
            stop.set()
            writer_thread.join()

        workloads["mixed_readers_writers"] = _time_workload(
            mixed_readers_writers, rounds
        )
        workloads["checkpoint"] = _time_workload(database.checkpoint, rounds)
        metrics_snapshot = database.metrics.snapshot()
        database.close()

        # Raw WAL append/fsync rates.
        wal = WriteAheadLog(os.path.join(tempdir, "bench.wal"))

        def wal_appends():
            for offset in range(row_count):
                wal.append(1, 1)
            wal.flush()

        workloads["wal_append_fsync"] = _time_workload(wal_appends, rounds)
        wal.close()

        # Pager stream write/read.
        pager = Pager(os.path.join(tempdir, "bench.mdm"), capacity=8)
        payload = b"x" * (64 * 1024)
        heads = []

        def stream_write():
            heads.append(pager.write_stream(payload))
            pager.flush()

        workloads["pager_stream_write"] = _time_workload(stream_write, rounds)
        workloads["pager_stream_read"] = _time_workload(
            lambda: pager.read_stream(heads[0]), rounds
        )
        pager.close()

        return {
            "benchmark": "storage",
            "dataset": {"row_count": row_count},
            "workloads": workloads,
            "metrics": metrics_snapshot,
        }
    finally:
        shutil.rmtree(tempdir, ignore_errors=True)


# -- network serving workloads ---------------------------------------------------


def _stats_from_samples(samples):
    """The BENCH stat dict for a list of per-operation latencies."""
    samples = sorted(samples)
    count = len(samples)
    total = sum(samples)
    return {
        "rounds": count,
        "total_s": total,
        "mean_s": total / count,
        "min_s": samples[0],
        "max_s": samples[-1],
        "p50_s": samples[count // 2],
        "p99_s": samples[min(count - 1, (count * 99) // 100)],
    }


def _swarm_worker(argv):
    """Child-process entry point (``--swarm-worker``): one retrieve
    client hammering the server; emits latency samples as JSON."""
    port, replica_ports, ops = argv[0], argv[1], int(argv[2])
    from repro.errors import MDMError
    from repro.net import MdmClient

    replicas = [
        ("127.0.0.1", int(p)) for p in replica_ports.split(",") if p
    ]
    client = MdmClient(
        ("127.0.0.1", int(port)), replicas=replicas,
        client_id="swarm-%d" % os.getpid(), default_timeout=5.0,
    )
    latencies, ok, shed = [], 0, 0
    try:
        client.execute("range of n is NOTE")
        for _ in range(ops):
            started = time.perf_counter()
            try:
                client.retrieve("retrieve (n.degree) where n.degree >= 0")
            except MDMError:
                shed += 1
                continue
            ok += 1
            latencies.append(time.perf_counter() - started)
    finally:
        client.close()
    json.dump({"lat": latencies, "ok": ok, "shed": shed}, sys.stdout)
    return 0


def _run_swarm(port, replica_ports, clients, ops_per_client):
    """Launch *clients* worker processes; returns merged results."""
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "src"
    )
    env["PYTHONPATH"] = os.path.abspath(src)
    command = [
        sys.executable, os.path.abspath(__file__), "--swarm-worker",
        str(port), ",".join(str(p) for p in replica_ports),
        str(ops_per_client),
    ]
    procs = [
        subprocess.Popen(command, stdout=subprocess.PIPE, env=env)
        for _ in range(clients)
    ]
    latencies, ok, shed = [], 0, 0
    for proc in procs:
        out, _ = proc.communicate(timeout=120)
        if proc.returncode != 0:
            raise RuntimeError("swarm worker exited %d" % proc.returncode)
        result = json.loads(out.decode("utf-8"))
        latencies.extend(result["lat"])
        ok += result["ok"]
        shed += result["shed"]
    return latencies, ok, shed


def net_report(clients=4, ops_per_client=30, row_count=60):
    """The client-swarm serving benchmark: per-retrieve latency and shed
    rate with every client in its own OS process, primary-only vs.
    primary plus two WAL-shipped replicas (retrieves fan out)."""
    from repro.mdm.manager import MusicDataManager
    from repro.net import MdmServer, ReplicaServer

    tempdir = tempfile.mkdtemp(prefix="bench_net_")
    workloads = {}
    metrics_snapshot = {}
    try:
        for label, replica_count in (
            ("swarm_primary_only", 0),
            ("swarm_two_replicas", 2),
        ):
            mdm = MusicDataManager(os.path.join(tempdir, "db_%s" % label))
            server = MdmServer(mdm)
            server.start()
            replicas = []
            try:
                for degree in range(row_count):
                    mdm.execute("append to NOTE (degree = %d)" % degree)
                for index in range(replica_count):
                    replica = ReplicaServer(
                        server.address, name="bench-r%d" % index
                    )
                    replica.start()
                    replicas.append(replica)
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline and not all(
                    r.status()["serving"] for r in replicas
                ):
                    time.sleep(0.02)
                latencies, ok, shed = _run_swarm(
                    server.address[1],
                    [r.address[1] for r in replicas],
                    clients, ops_per_client,
                )
                if not latencies:
                    raise RuntimeError(
                        "swarm %r produced no successful retrieves" % label
                    )
                stats = _stats_from_samples(latencies)
                stats["clients"] = clients
                stats["ops_per_client"] = ops_per_client
                stats["shed_rate"] = shed / float(ok + shed)
                workloads[label] = stats
                metrics_snapshot = mdm.database.metrics.snapshot()
            finally:
                for replica in replicas:
                    replica.stop()
                server.stop()
                mdm.close()
        return {
            "benchmark": "net",
            "dataset": {
                "clients": clients, "ops_per_client": ops_per_client,
                "row_count": row_count,
            },
            # Swarm latencies are a few ms and swing with machine load;
            # widen the absolute slack so the gate catches gross
            # serving regressions without flagging scheduler noise.
            "compare": {"min_delta_s": 0.003},
            "workloads": workloads,
            "metrics": metrics_snapshot,
        }
    finally:
        shutil.rmtree(tempdir, ignore_errors=True)


# -- report validation / entry point --------------------------------------------

_STAT_KEYS = {"rounds", "total_s", "mean_s", "min_s", "max_s", "p50_s"}


def validate_report(report):
    """Raise ValueError unless *report* has the BENCH_*.json shape."""
    for key in ("benchmark", "dataset", "workloads", "metrics"):
        if key not in report:
            raise ValueError("report missing %r" % key)
    if not report["workloads"]:
        raise ValueError("report has no workloads")
    for name, stats in report["workloads"].items():
        missing = _STAT_KEYS - set(stats)
        if missing:
            raise ValueError("workload %r missing %s" % (name, sorted(missing)))
        if stats["rounds"] < 1 or stats["total_s"] < 0:
            raise ValueError("workload %r has nonsense stats" % name)
    for name, gate in report.get("gates", {}).items():
        if "value" not in gate or not ({"min", "max"} & set(gate)):
            raise ValueError("gate %r needs a value and a min/max bound" % name)
    json.dumps(report)  # must be serializable
    return report


def check_gates(report):
    """Check a report's hard perf ``gates``.

    Unlike the baseline comparison (relative: this run vs a committed
    run), gates are absolute claims a report makes about itself -- the
    top-k operator is >=10x its materialize-then-sort ablation, the
    1M-row search p50 is <=5x the 120k one.  Returns human-readable
    failure lines (empty means every gate holds).
    """
    failures = []
    for name, gate in sorted(report.get("gates", {}).items()):
        value = gate["value"]
        if "min" in gate and value < gate["min"]:
            failures.append(
                "%s: %.2f below required minimum %.2f"
                % (name, value, gate["min"])
            )
        if "max" in gate and value > gate["max"]:
            failures.append(
                "%s: %.2f above allowed maximum %.2f"
                % (name, value, gate["max"])
            )
    return failures


def _enforce_gates(reports):
    """Print gate status for each report; returns True when any fail."""
    failed = False
    for report in reports:
        gates = report.get("gates")
        if not gates:
            continue
        failures = check_gates(report)
        if failures:
            failed = True
            print("GATE FAILURE in %s report:" % report["benchmark"])
            for line in failures:
                print("  " + line)
        else:
            print(
                "gates OK in %s report (%s)"
                % (
                    report["benchmark"],
                    ", ".join(
                        "%s=%.2f" % (name, gate["value"])
                        for name, gate in sorted(gates.items())
                    ),
                )
            )
    return failed


def compare_reports(current, baseline, threshold=0.25, min_delta_s=0.0005):
    """Compare per-workload p50 timings of *current* against *baseline*.

    Returns a list of human-readable regression lines (empty means the
    comparison passes).  A workload regresses when its current p50
    exceeds the baseline p50 by more than *threshold* (fractional) plus
    *min_delta_s* of absolute slack -- the slack keeps sub-millisecond
    workloads from flagging on scheduler noise.  Workloads present in
    only one report are ignored, so reports can gain scenarios without
    breaking older baselines.  A baseline may widen its own slack via a
    top-level ``"compare": {"min_delta_s": ...}`` entry (the net swarm
    does: wall-clock latencies over real sockets need more headroom
    than in-process microbenchmarks).
    """
    regressions = []
    base_workloads = baseline.get("workloads", {})
    for name, stats in sorted(current["workloads"].items()):
        base = base_workloads.get(name)
        if base is None:
            continue
        base_p50 = base["p50_s"]
        cur_p50 = stats["p50_s"]
        if cur_p50 > base_p50 * (1.0 + threshold) + min_delta_s:
            ratio = cur_p50 / base_p50 if base_p50 else float("inf")
            regressions.append(
                "%s: p50 %.6fs vs baseline %.6fs (%.2fx, budget %.0f%%)"
                % (name, cur_p50, base_p50, ratio, threshold * 100.0)
            )
    return regressions


def _run_compare(baseline_paths, current_by_kind):
    """Compare fresh reports against each baseline file; returns an exit
    status (0 pass, 1 any regression or unusable baseline)."""
    failed = False
    for path in baseline_paths:
        try:
            with open(path) as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as error:
            print("compare: cannot read %s: %s" % (path, error))
            failed = True
            continue
        current = current_by_kind.get(baseline.get("benchmark"))
        if current is None:
            print(
                "compare: %s has unknown benchmark kind %r"
                % (path, baseline.get("benchmark"))
            )
            failed = True
            continue
        hints = baseline.get("compare", {})
        regressions = compare_reports(
            current, baseline,
            min_delta_s=float(hints.get("min_delta_s", 0.0005)),
        )
        shared = len(
            set(current["workloads"]) & set(baseline.get("workloads", {}))
        )
        if regressions:
            failed = True
            print("REGRESSION vs %s:" % path)
            for line in regressions:
                print("  " + line)
        else:
            print("compare OK vs %s (%d shared workloads)" % (path, shared))
    return 1 if failed else 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="tiny rounds, validate report shapes, write nothing",
    )
    parser.add_argument(
        "--compare", action="append", default=None, metavar="BASELINE",
        help="compare against a baseline BENCH_*.json (repeatable); "
             "exit nonzero on >25%% p50 regression, write nothing",
    )
    parser.add_argument(
        "--rounds", type=int, default=30,
        help="timing rounds per workload (default 30)",
    )
    parser.add_argument(
        "--out-dir", default=os.path.join(os.path.dirname(__file__), ".."),
        help="directory for BENCH_*.json (default: repository root)",
    )
    parser.add_argument(
        "--scale-rows", type=int, default=1_000_000,
        help="row count for the catalog_scale_* text workloads "
             "(default 1000000; 0 skips the scale suite)",
    )
    parser.add_argument(
        "--swarm-worker", nargs=3, default=None,
        metavar=("PORT", "REPLICA_PORTS", "OPS"),
        help=argparse.SUPPRESS,  # internal: net_report child process
    )
    args = parser.parse_args(argv)

    if args.swarm_worker is not None:
        return _swarm_worker(args.swarm_worker)

    rounds = 2 if args.check else args.rounds
    builders = {
        "quel": lambda: quel_report(
            rounds, chords=8 if args.check else 40,
            notes_per_chord=5 if args.check else 10,
        ),
        "storage": lambda: storage_report(
            rounds, row_count=20 if args.check else 200
        ),
        "text": lambda: text_report(
            rounds, row_count=400 if args.check else 120_000,
            scale_rows=800 if args.check else args.scale_rows,
        ),
        "net": lambda: net_report(
            clients=2 if args.check else 4,
            ops_per_client=5 if args.check else 30,
            row_count=10 if args.check else 60,
        ),
    }
    wanted = set(builders)
    if args.compare and not args.check:
        # Only build the suites the named baselines actually gate --
        # `--compare BENCH_text.json` alone skips the net swarm etc.
        wanted = set()
        for path in args.compare:
            try:
                with open(path) as handle:
                    wanted.add(json.load(handle).get("benchmark"))
            except (OSError, ValueError):
                wanted = set(builders)  # _run_compare reports the problem
                break
        wanted &= set(builders)
    reports = {
        kind: validate_report(builders[kind]())
        for kind in ("quel", "storage", "text", "net") if kind in wanted
    }
    if args.check:
        print(
            "bench report check OK (%s workloads)"
            % ", ".join(
                "%d %s" % (len(reports[kind]["workloads"]), kind)
                for kind in ("quel", "storage", "text", "net")
            )
        )
        return 0
    gates_failed = _enforce_gates(reports.values())
    if args.compare:
        status = _run_compare(args.compare, reports)
        return 1 if gates_failed else status
    if gates_failed:
        return 1
    out_dir = os.path.abspath(args.out_dir)
    for kind in ("quel", "storage", "text", "net"):
        path = os.path.join(out_dir, "BENCH_%s.json" % kind)
        write_json(path, reports[kind])
        print("wrote %s:" % os.path.relpath(path, out_dir))
        for name, stats in sorted(reports[kind]["workloads"].items()):
            print("  %-24s mean %.6fs over %d rounds"
                  % (name, stats["mean_s"], stats["rounds"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
