#!/bin/sh
# Snapshot-isolation target: the whole MVCC battery in one command --
# version-chain unit tests, the reader/writer interleaving oracle
# (readers lock-free and never torn), the temporal property battery
# (every recorded snapshot re-read vs a single-threaded reference
# model), the commit-stamp/prune crash matrix, and the degraded-mode
# snapshot regression tests.
#
# Default: the fast matrices -- a few seconds, all of it also on in the
# main test run.  Pass --full to add the extended mvcc_slow matrix
# (more seeds, more threads, longer programs).
set -eu
cd "$(dirname "$0")/.."

MARKER="not mvcc_slow and not crash_slow and not stress_slow"
if [ "${1:-}" = "--full" ]; then
    MARKER="not crash_slow and not stress_slow"
    shift
fi
PYTHONPATH=src python -m pytest -q -m "$MARKER" \
    tests/storage/test_mvcc.py \
    tests/stress/test_mvcc_interleaving.py \
    tests/props/test_mvcc_props.py \
    tests/crash/test_mvcc_crash.py \
    tests/mdm/test_degraded_snapshot.py \
    "$@"
