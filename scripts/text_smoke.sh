#!/bin/sh
# Catalog-search target: the whole text-index battery in one command --
# normalization/similarity unit tests, the trigram-index property
# battery (randomized op sequences vs a brute-force reference: index
# candidates are a superset, verified results exactly equal), the
# per-syncpoint crash matrix (recovered index vs a rebuild-from-rows
# oracle), the QUEL matches/similar_to end-to-end tests, and the
# plan-cache invalidation checks for text-index create/drop.
#
# Default: the fast matrices -- a few seconds, all of it also on in the
# main test run.  Pass --full to add the extended text_slow matrix
# (more seeds, longer op programs, bigger corpora).
set -eu
cd "$(dirname "$0")/.."

MARKER="not text_slow and not crash_slow and not stress_slow"
if [ "${1:-}" = "--full" ]; then
    MARKER="not crash_slow and not stress_slow"
    shift
fi
PYTHONPATH=src python -m pytest -q -m "$MARKER" \
    tests/text \
    tests/props/test_text_index_props.py \
    tests/crash/test_text_index_crash.py \
    tests/quel/test_text_search.py \
    tests/quel/test_cache.py \
    "$@"
