#!/bin/sh
# Catalog-search target: the whole text-index battery in one command --
# normalization/similarity unit tests, the trigram-index property
# battery (randomized op sequences vs a brute-force reference: index
# candidates are a superset, verified results exactly equal), the
# per-syncpoint crash matrix (recovered index vs a rebuild-from-rows
# oracle), the QUEL matches/similar_to end-to-end tests, and the
# plan-cache invalidation checks for text-index create/drop.
#
# Default: the fast matrices -- a few seconds, all of it also on in the
# main test run (the 120k-row bench corpus; tier-1 stays fast).  Pass
# --full to add the extended text_slow matrix (more seeds, longer op
# programs, bigger corpora), or --scale to run the million-row suite:
# the text_scale top-k battery (streaming result vs a brute-force
# sort-all reference at 1M rows) plus the bench catalog_scale_*
# workloads and their hard gates (top-k speedup >= 10x, 1M/120k search
# ratio <= 5x).
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--scale" ]; then
    shift
    PYTHONPATH=src python -m pytest -q -m text_scale \
        tests/props/test_topk_props.py "$@"
    PYTHONPATH=src python scripts/bench_report.py --rounds 7 \
        --compare BENCH_text.json
    exit 0
fi

MARKER="not text_slow and not text_scale and not crash_slow and not stress_slow"
if [ "${1:-}" = "--full" ]; then
    MARKER="not text_scale and not crash_slow and not stress_slow"
    shift
fi
PYTHONPATH=src python -m pytest -q -m "$MARKER" \
    tests/text \
    tests/props/test_text_index_props.py \
    tests/crash/test_text_index_crash.py \
    tests/quel/test_text_search.py \
    tests/quel/test_limit.py \
    tests/props/test_topk_props.py \
    tests/quel/test_cache.py \
    "$@"
