#!/bin/sh
# Fast benchmark smoke target: assert ordering mutations stay O(1) in
# row writes (no per-sibling renumbering on front insert) and that the
# order-key encoding keeps its >=10x lead over dense renumbering.
#
# Runs in a few seconds; suitable for CI.  The full timing benches live
# in benchmarks/ and are run separately with pytest-benchmark.
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH=src python -m pytest benchmarks -q -k ordering -m ordering_smoke "$@"
