#!/bin/sh
# Fast benchmark smoke target: assert ordering mutations stay O(1) in
# row writes (no per-sibling renumbering on front insert), that the
# order-key encoding keeps its >=10x lead over dense renumbering, that
# no-sink tracing overhead stays under its 3% budget, and that the
# bench report harness still produces valid BENCH_*.json shapes.
#
# Runs in a few seconds; suitable for CI.  The full timing benches live
# in benchmarks/ and are run separately with pytest-benchmark.
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH=src python -m pytest benchmarks -q -k ordering -m ordering_smoke "$@"
PYTHONPATH=src python -m pytest benchmarks/test_bench_obs.py -q -m obs_smoke
PYTHONPATH=src python scripts/bench_report.py --check
