#!/bin/sh
# Fast benchmark smoke target: assert ordering mutations stay O(1) in
# row writes (no per-sibling renumbering on front insert), that the
# order-key encoding keeps its >=10x lead over dense renumbering, that
# no-sink tracing overhead stays under its 3% budget, that the
# bench report harness still produces valid BENCH_*.json shapes, and
# that a fresh run shows no >25% median regression against the
# committed BENCH_quel.json / BENCH_storage.json baselines (which
# cover the group-commit write path: bulk_ingest and concurrent_insert
# ride the same gate, as does the MVCC mixed_readers_writers mix; the
# BENCH_net.json baseline gates the client-swarm serving latency; the
# BENCH_text.json baseline gates trigram-indexed catalog search), then
# the fast snapshot-isolation battery (scripts/mvcc_smoke.sh), the
# network fault sweep (scripts/net_smoke.sh), and the text-index
# battery (scripts/text_smoke.sh).
#
# Runs in a few seconds; suitable for CI.  The full timing benches live
# in benchmarks/ and are run separately with pytest-benchmark.
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH=src python -m pytest benchmarks -q -k ordering -m ordering_smoke "$@"
PYTHONPATH=src python -m pytest benchmarks/test_bench_obs.py -q -m obs_smoke
PYTHONPATH=src python -m pytest benchmarks/test_bench_compare.py -q -m bench_compare
PYTHONPATH=src python scripts/bench_report.py --check
PYTHONPATH=src python scripts/bench_report.py --rounds 7 \
    --compare BENCH_quel.json --compare BENCH_storage.json \
    --compare BENCH_text.json --compare BENCH_net.json
sh scripts/mvcc_smoke.sh
sh scripts/net_smoke.sh
sh scripts/text_smoke.sh
